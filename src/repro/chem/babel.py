"""Open-Babel-equivalent format conversion.

SciDock's first activity runs ``babel -isdf lig.sdf -omol2 lig.mol2``;
:func:`convert_file` provides the same behaviour over our own parsers.
"""

from __future__ import annotations

from pathlib import Path

from repro.chem.molecule import Molecule
from repro.chem.formats.mol2 import parse_mol2, write_mol2
from repro.chem.formats.pdb import parse_pdb, write_pdb
from repro.chem.formats.pdbqt import parse_pdbqt, write_pdbqt
from repro.chem.formats.sdf import parse_sdf, write_sdf

_PARSERS = {
    "sdf": parse_sdf,
    "mol": parse_sdf,
    "mol2": parse_mol2,
    "pdb": parse_pdb,
    "pdbqt": parse_pdbqt,
}

_WRITERS = {
    "sdf": write_sdf,
    "mol2": write_mol2,
    "pdb": write_pdb,
    "pdbqt": write_pdbqt,
}

SUPPORTED_FORMATS = tuple(sorted(_PARSERS))


class UnsupportedFormatError(ValueError):
    """Raised for a format neither parser nor writer understands."""


def guess_format(path: str | Path) -> str:
    """Infer the format from a file extension (``lig.sdf`` -> ``sdf``)."""
    suffix = Path(path).suffix.lower().lstrip(".")
    if suffix not in _PARSERS:
        raise UnsupportedFormatError(
            f"cannot guess a supported format from {path!r} "
            f"(supported: {', '.join(SUPPORTED_FORMATS)})"
        )
    return suffix


def read_molecule(path: str | Path, fmt: str | None = None) -> Molecule:
    """Read a molecule from disk, auto-detecting the format by extension."""
    path = Path(path)
    fmt = (fmt or guess_format(path)).lower()
    parser = _PARSERS.get(fmt)
    if parser is None:
        raise UnsupportedFormatError(f"no parser for format {fmt!r}")
    return parser(path.read_text(), name=path.stem)


def write_molecule(mol: Molecule, path: str | Path, fmt: str | None = None) -> Path:
    """Write a molecule to disk in the requested (or inferred) format."""
    path = Path(path)
    fmt = (fmt or guess_format(path)).lower()
    writer = _WRITERS.get(fmt)
    if writer is None:
        raise UnsupportedFormatError(f"no writer for format {fmt!r}")
    path.write_text(writer(mol))
    return path


def convert_molecule(mol: Molecule, to_fmt: str) -> str:
    """Render a molecule as text in ``to_fmt``."""
    writer = _WRITERS.get(to_fmt.lower())
    if writer is None:
        raise UnsupportedFormatError(f"no writer for format {to_fmt!r}")
    return writer(mol)


def convert_file(
    src: str | Path,
    dst: str | Path,
    *,
    in_fmt: str | None = None,
    out_fmt: str | None = None,
) -> Molecule:
    """Convert ``src`` to ``dst`` (babel equivalent); returns the molecule."""
    mol = read_molecule(src, in_fmt)
    write_molecule(mol, dst, out_fmt)
    return mol
