"""Deterministic synthetic structure generation.

The paper's inputs are 238 cysteine-protease receptors and 42 ligands
fetched from RCSB-PDB. Offline we cannot download them, so this module
generates *synthetic stand-ins*: protein-like receptors with a concave
binding pocket and drug-like flexible ligands. Generation is a pure
function of the structure ID (seeded SHA-256 -> numpy Generator), so
"1AEC" always yields the same structure, which keeps every experiment and
test reproducible.

Why this preserves the paper's behaviour: SciDock never inspects real
biology — its activities care about atom counts, atom types, file formats,
pocket geometry and the runtime cost distribution those induce. The
generator matches those observables: receptor sizes span the small/large
split that drives the AD4/Vina routing, ligands have 1-8 rotatable bonds,
and a deterministic ~5% of receptors contain an Hg atom (the paper's
"looping state" troublemakers).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.chem.atom import Atom
from repro.chem.charges import assign_gasteiger_charges
from repro.chem.molecule import Molecule

# Amino-acid alphabet used for synthetic residues with a tiny sidechain
# template: list of (name, element, offset scale) beyond the backbone.
_RESIDUES = [
    ("ALA", [("CB", "C")]),
    ("GLY", []),
    ("SER", [("CB", "C"), ("OG", "O")]),
    ("CYS", [("CB", "C"), ("SG", "S")]),
    ("THR", [("CB", "C"), ("OG1", "O"), ("CG2", "C")]),
    ("VAL", [("CB", "C"), ("CG1", "C"), ("CG2", "C")]),
    ("LEU", [("CB", "C"), ("CG", "C"), ("CD1", "C"), ("CD2", "C")]),
    ("ASP", [("CB", "C"), ("CG", "C"), ("OD1", "O"), ("OD2", "O")]),
    ("ASN", [("CB", "C"), ("CG", "C"), ("OD1", "O"), ("ND2", "N")]),
    ("GLU", [("CB", "C"), ("CG", "C"), ("CD", "C"), ("OE1", "O"), ("OE2", "O")]),
    ("LYS", [("CB", "C"), ("CG", "C"), ("CD", "C"), ("CE", "C"), ("NZ", "N")]),
    ("HIS", [("CB", "C"), ("CG", "C"), ("ND1", "N"), ("NE2", "N")]),
    ("PHE", [("CB", "C"), ("CG", "C"), ("CD1", "C"), ("CD2", "C")]),
    ("TRP", [("CB", "C"), ("CG", "C"), ("CD1", "C"), ("NE1", "N")]),
    ("MET", [("CB", "C"), ("CG", "C"), ("SD", "S"), ("CE", "C")]),
    ("ARG", [("CB", "C"), ("CG", "C"), ("CD", "C"), ("NE", "N"), ("CZ", "C")]),
]

_BOND_LENGTH = {"C": 1.53, "N": 1.47, "O": 1.43, "S": 1.81}


def _rng_for(structure_id: str, salt: str = "") -> np.random.Generator:
    """Deterministic Generator derived from the structure ID."""
    digest = hashlib.sha256(f"{salt}:{structure_id}".encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(seed)


def receptor_size_class(pdb_id: str) -> str:
    """'small' (routed to AD4) or 'large' (routed to Vina), deterministic.

    Roughly half the clan falls in each class, matching the paper's two
    scenarios over the same 238-receptor set.
    """
    rng = _rng_for(pdb_id, salt="sizeclass")
    return "large" if rng.random() < 0.5 else "small"


def receptor_contains_mercury(pdb_id: str) -> bool:
    """Deterministic ~5% of receptors carry an Hg atom (paper §V.C)."""
    rng = _rng_for(pdb_id, salt="mercury")
    return bool(rng.random() < 0.05)


class ReceptorGenerator:
    """Builds protein-like receptors with a concave binding pocket.

    The backbone is a smoothed self-avoiding walk constrained to a
    spherical shell around the pocket center, so the pocket is a genuine
    cavity lined with polar (O/N/S) atoms — enough structure for grids,
    scoring and FEB sign statistics to behave like real proteases.
    """

    def __init__(self, n_residues_range: tuple[int, int] = (60, 220)) -> None:
        if n_residues_range[0] < 4:
            raise ValueError("need at least 4 residues for a pocket")
        self.n_residues_range = n_residues_range

    def generate(self, pdb_id: str) -> Molecule:
        rng = _rng_for(pdb_id, salt="receptor")
        size_class = receptor_size_class(pdb_id)
        lo, hi = self.n_residues_range
        mid = (lo + hi) // 2
        if size_class == "small":
            n_res = int(rng.integers(lo, mid))
        else:
            n_res = int(rng.integers(mid, hi + 1))
        # Crystal-frame offset: real PDB entries place the protein at an
        # arbitrary location, far from the (ligand's) SDF origin frame.
        # This is what makes AD4's reference-frame RMSD land near ~55 A in
        # the paper's Table 3.
        pocket_center = rng.uniform(25.0, 40.0, size=3) * rng.choice([-1.0, 1.0], 3)
        pocket_radius = float(rng.uniform(5.5, 8.5))
        shell_radius = pocket_radius + float(rng.uniform(4.0, 7.0))

        mol = Molecule(name=pdb_id)
        # Backbone CA trace: random walk on the shell, smoothed.
        directions = rng.normal(size=(n_res, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        # Smooth with a running average to get a chain-like path.
        for _ in range(3):
            directions[1:-1] = (
                directions[:-2] + directions[1:-1] + directions[2:]
            ) / 3.0
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = shell_radius + rng.normal(scale=1.2, size=n_res)
        radii = np.clip(radii, pocket_radius + 2.0, shell_radius + 6.0)
        ca_positions = directions * radii[:, None] + pocket_center

        serial = 1
        for r in range(n_res):
            res_name, sidechain = _RESIDUES[int(rng.integers(len(_RESIDUES)))]
            ca = ca_positions[r]
            inward = pocket_center - ca
            inward /= np.linalg.norm(inward) + 1e-9
            # Backbone N, CA, C, O
            frame = rng.normal(size=(3, 3)) * 0.4
            for name, el, offset in (
                ("N", "N", frame[0] - inward * 0.3),
                ("CA", "C", np.zeros(3)),
                ("C", "C", frame[1] + inward * 0.2),
                ("O", "O", frame[2] + inward * 0.5),
            ):
                mol.add_atom(
                    Atom(
                        serial=serial,
                        name=name,
                        element=el,
                        coords=ca + offset,
                        residue_name=res_name,
                        residue_seq=r + 1,
                        chain_id="A",
                    )
                )
                serial += 1
            # Sidechain atoms walk inward toward the pocket for lining
            # residues, outward otherwise.
            lining = bool(rng.random() < 0.3)
            step_dir = inward if lining else -inward
            pos = ca.copy()
            for name, el in sidechain:
                jitter = rng.normal(scale=0.35, size=3)
                pos = pos + step_dir * _BOND_LENGTH.get(el, 1.5) + jitter
                # Keep lining atoms outside the pocket cavity itself.
                d = np.linalg.norm(pos - pocket_center)
                if d < pocket_radius:
                    pos = (
                        pocket_center
                        + (pos - pocket_center) / max(d, 1e-9) * pocket_radius
                    )
                mol.add_atom(
                    Atom(
                        serial=serial,
                        name=name,
                        element=el,
                        coords=pos.copy(),
                        residue_name=res_name,
                        residue_seq=r + 1,
                        chain_id="A",
                    )
                )
                serial += 1
        if receptor_contains_mercury(pdb_id):
            # A bound mercury ion sits near (not inside) the pocket.
            offset = rng.normal(size=3)
            offset /= np.linalg.norm(offset)
            hg = Atom(
                serial=serial,
                name="HG",
                element="HG",
                coords=pocket_center + offset * (pocket_radius + 1.0),
                residue_name="HG",
                residue_seq=n_res + 1,
                chain_id="A",
            )
            hg.metadata["hetatm"] = True
            mol.add_atom(hg)
        mol.metadata.update(
            pdb_id=pdb_id,
            pocket_center=pocket_center.tolist(),
            pocket_radius=pocket_radius,
            size_class=size_class,
            n_residues=n_res,
        )
        return mol


class LigandGenerator:
    """Builds drug-like flexible small molecules.

    Heavy-atom counts span 8-32, elements weighted toward carbon with
    polar N/O/S sprinkled in, an optional aromatic ring, and a chain
    topology that yields 1-8 rotatable bonds — the flexibility range that
    drives the paper's AD4-vs-Vina difficulty split.
    """

    def __init__(self, heavy_atoms_range: tuple[int, int] = (8, 32)) -> None:
        if heavy_atoms_range[0] < 3:
            raise ValueError("ligand needs at least 3 heavy atoms")
        self.heavy_atoms_range = heavy_atoms_range

    def generate(self, ligand_id: str) -> Molecule:
        rng = _rng_for(ligand_id, salt="ligand")
        lo, hi = self.heavy_atoms_range
        n_heavy = int(rng.integers(lo, hi + 1))
        mol = Molecule(name=ligand_id)

        # Optional aromatic 6-ring core.
        with_ring = bool(rng.random() < 0.6) and n_heavy >= 9
        positions: list[np.ndarray] = []
        if with_ring:
            for k in range(6):
                theta = 2 * np.pi * k / 6
                pos = np.array([1.39 * np.cos(theta), 1.39 * np.sin(theta), 0.0])
                idx = mol.add_atom(
                    Atom(
                        serial=k + 1,
                        name=f"C{k + 1}",
                        element="C",
                        coords=pos,
                        residue_name="LIG",
                        aromatic=True,
                    )
                )
                positions.append(pos)
                if k > 0:
                    mol.add_bond(idx - 1, idx, order=1, aromatic=True)
            mol.add_bond(0, 5, order=1, aromatic=True)
        else:
            pos = np.zeros(3)
            mol.add_atom(
                Atom(serial=1, name="C1", element="C", coords=pos, residue_name="LIG")
            )
            positions.append(pos)

        # Grow remaining heavy atoms as a random tree off existing atoms.
        elements = ["C", "C", "C", "C", "N", "O", "O", "S"]
        while len(mol.atoms) < n_heavy:
            parent = int(rng.integers(len(mol.atoms)))
            # Aromatic ring carbons accept at most one substituent.
            if mol.atoms[parent].aromatic and mol.degree(parent) >= 3:
                continue
            if mol.degree(parent) >= 4:
                continue
            el = elements[int(rng.integers(len(elements)))]
            length = _BOND_LENGTH.get(el, 1.5)
            # Sample a direction pushing away from the local crowd.
            base = mol.atoms[parent].coords
            coords_so_far = mol.coords
            placed = False
            for _attempt in range(24):
                direction = rng.normal(size=3)
                direction /= np.linalg.norm(direction)
                pos = base + direction * length
                # Keep non-bonded contacts out of the LJ repulsive wall:
                # everything except the parent must stay >= 2.4 A away.
                d = np.linalg.norm(coords_so_far - pos, axis=1)
                d[parent] = np.inf
                if d.min() >= 2.4:
                    placed = True
                    break
            if not placed:
                continue
            order = 1
            if el in ("O",) and rng.random() < 0.3 and mol.atoms[parent].element == "C":
                order = 2
            idx = mol.add_atom(
                Atom(
                    serial=len(mol.atoms) + 1,
                    name=f"{el}{len(mol.atoms) + 1}",
                    element=el,
                    coords=pos,
                    residue_name="LIG",
                )
            )
            mol.add_bond(parent, idx, order=order)

        # Polar hydrogens on N/O donors (AD4 needs HD atoms for H-bonds).
        heavy_count = len(mol.atoms)
        for i in range(heavy_count):
            a = mol.atoms[i]
            if a.element in ("N", "O") and mol.degree(i) <= 2 and rng.random() < 0.7:
                coords_so_far = mol.coords
                for _attempt in range(16):
                    direction = rng.normal(size=3)
                    direction /= np.linalg.norm(direction)
                    pos = a.coords + direction * 1.0
                    d = np.linalg.norm(coords_so_far - pos, axis=1)
                    d[i] = np.inf
                    if d.min() >= 1.8:
                        h = Atom(
                            serial=len(mol.atoms) + 1,
                            name=f"H{len(mol.atoms) + 1}",
                            element="H",
                            coords=pos,
                            residue_name="LIG",
                        )
                        idx = mol.add_atom(h)
                        mol.add_bond(i, idx)
                        break

        assign_gasteiger_charges(mol)
        mol.metadata.update(ligand_id=ligand_id, n_heavy=heavy_count)
        return mol


_DEFAULT_RECEPTOR_GEN = ReceptorGenerator()
_DEFAULT_LIGAND_GEN = LigandGenerator()


def generate_receptor(pdb_id: str) -> Molecule:
    """Deterministic synthetic receptor for a PDB ID (module-level helper)."""
    return _DEFAULT_RECEPTOR_GEN.generate(pdb_id)


def generate_ligand(ligand_id: str) -> Molecule:
    """Deterministic synthetic ligand for a ligand ID (module-level helper)."""
    return _DEFAULT_LIGAND_GEN.generate(ligand_id)
