"""The :class:`Atom` record shared by every file format and engine."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.chem.elements import element_info


@dataclass
class Atom:
    """A single atom inside a :class:`~repro.chem.molecule.Molecule`.

    Coordinates are stored as a length-3 float64 numpy array (Angstrom).
    ``serial`` is the 1-based index within the parent molecule as written
    to PDB/PDBQT files. ``autodock_type`` is filled in by the preparation
    step (``prepare_ligand``/``prepare_receptor``); ``charge`` by the
    Gasteiger routine.
    """

    serial: int
    name: str
    element: str
    coords: np.ndarray
    residue_name: str = "UNK"
    residue_seq: int = 1
    chain_id: str = "A"
    charge: float = 0.0
    autodock_type: str | None = None
    occupancy: float = 1.00
    temp_factor: float = 0.00
    aromatic: bool = False
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        if self.coords.shape != (3,):
            raise ValueError(
                f"atom coordinates must be shape (3,), got {self.coords.shape}"
            )
        self.element = self.element.strip().upper()
        # Validate element symbol eagerly so bad input fails at parse time.
        element_info(self.element)

    @property
    def mass(self) -> float:
        return element_info(self.element).mass

    @property
    def vdw_radius(self) -> float:
        return element_info(self.element).vdw_radius

    @property
    def covalent_radius(self) -> float:
        return element_info(self.element).covalent_radius

    @property
    def is_metal(self) -> bool:
        return element_info(self.element).is_metal

    @property
    def is_hydrogen(self) -> bool:
        return self.element == "H"

    @property
    def is_heavy(self) -> bool:
        return self.element != "H"

    def distance_to(self, other: "Atom") -> float:
        """Euclidean distance to another atom in Angstrom."""
        return float(np.linalg.norm(self.coords - other.coords))

    def copy(self) -> "Atom":
        """Deep-enough copy: coordinates and metadata are duplicated."""
        return replace(
            self, coords=self.coords.copy(), metadata=dict(self.metadata)
        )
