"""Rotatable-bond detection and the ligand torsion tree.

``prepare_ligand4.py`` picks a root atom, detects rotatable bonds and
writes the ROOT/BRANCH hierarchy into the ligand PDBQT. The docking
engines then treat the ligand as a rigid root plus branches rotated about
their parent bonds. :class:`TorsionTree` provides exactly that pose
machinery, vectorized over atom blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.geometry import (
    quaternion_to_matrix_batch,
    rotation_about_axis_batch,
)
from repro.chem.molecule import Molecule


def _in_ring(mol: Molecule, i: int, j: int) -> bool:
    """True when edge (i, j) lies on a cycle (removal keeps i-j connected)."""
    adj = mol.adjacency
    seen = {i}
    stack = [i]
    while stack:
        v = stack.pop()
        for w in adj[v]:
            if v == i and w == j:
                continue  # skip the bond itself
            if (v, w) == (i, j) or (v, w) == (j, i):
                continue
            if w == j:
                return True
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return False


def find_rotatable_bonds(mol: Molecule) -> list[tuple[int, int]]:
    """Rotatable bonds per the AutoDockTools rules.

    A bond is rotatable when it is a single, non-aromatic, acyclic bond
    whose two ends each have at least one additional heavy-atom neighbor
    (terminal bonds such as C-H or C-CH3-with-only-H are skipped; amide
    C-N bonds are excluded).
    """
    rotatable: list[tuple[int, int]] = []
    for b in mol.bonds:
        if b.order != 1 or b.aromatic:
            continue
        ai, aj = mol.atoms[b.i], mol.atoms[b.j]
        if ai.is_hydrogen or aj.is_hydrogen:
            continue
        # Each endpoint needs a heavy neighbor besides the other endpoint.
        heavy_i = [
            k for k in mol.neighbors(b.i) if k != b.j and mol.atoms[k].is_heavy
        ]
        heavy_j = [
            k for k in mol.neighbors(b.j) if k != b.i and mol.atoms[k].is_heavy
        ]
        if not heavy_i or not heavy_j:
            continue
        if _is_amide(mol, b.i, b.j) or _is_amide(mol, b.j, b.i):
            continue
        if _in_ring(mol, b.i, b.j):
            continue
        rotatable.append((b.i, b.j))
    return rotatable


def _is_amide(mol: Molecule, c_idx: int, n_idx: int) -> bool:
    """C-N where the carbon also carries a double-bonded oxygen."""
    if mol.atoms[c_idx].element != "C" or mol.atoms[n_idx].element != "N":
        return False
    for b in mol.bonds:
        if b.order == 2 and c_idx in (b.i, b.j):
            other = b.other(c_idx)
            if mol.atoms[other].element == "O":
                return True
    return False


@dataclass
class Branch:
    """One rotatable bond and the atom set it moves.

    ``axis_from``/``axis_to`` are atom indices defining the rotation axis;
    ``moved`` is the array of atom indices on the distal side. Branches
    are stored in tree (pre-)order, so applying them sequentially composes
    parent-before-child rotations correctly.
    """

    axis_from: int
    axis_to: int
    moved: np.ndarray


class TorsionTree:
    """Rigid-root-plus-branches model of a flexible ligand.

    Construction picks the root as the atom that minimizes the size of the
    largest branch (AutoDockTools' "best root" heuristic), then records,
    for every rotatable bond, which atoms rotate with it.

    :meth:`pose` maps a conformation vector — translation (3), orientation
    quaternion (4), torsion angles (T) — onto fresh coordinates without
    mutating the molecule, which keeps the GA/MC loops allocation-light.
    """

    def __init__(self, mol: Molecule, rotatable: list[tuple[int, int]] | None = None):
        if len(mol.atoms) == 0:
            raise ValueError("cannot build a torsion tree over an empty molecule")
        self.mol = mol
        self.reference = mol.coords  # (N, 3) snapshot
        self.rotatable = (
            list(rotatable) if rotatable is not None else find_rotatable_bonds(mol)
        )
        self.root = self._pick_root()
        self.branches = self._build_branches()

    # -- construction --------------------------------------------------------
    def _pick_root(self) -> int:
        heavy = [i for i, a in enumerate(self.mol.atoms) if a.is_heavy]
        candidates = heavy or list(range(len(self.mol.atoms)))
        if not self.rotatable:
            return candidates[0]
        best, best_cost = candidates[0], float("inf")
        for cand in candidates:
            cost = max(
                (len(self._distal_set(i, j, cand)) for i, j in self.rotatable),
                default=0,
            )
            if cost < best_cost:
                best, best_cost = cand, cost
        return best

    def _distal_set(self, i: int, j: int, root: int) -> set[int]:
        """Atoms on the far side of bond (i, j) as seen from ``root``."""
        adj = self.mol.adjacency
        # BFS from root avoiding the (i, j) edge; unreachable atoms move.
        seen = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if {v, w} == {i, j}:
                    continue
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return set(range(len(self.mol.atoms))) - seen

    def _build_branches(self) -> list[Branch]:
        branches: list[Branch] = []
        for i, j in self.rotatable:
            moved = self._distal_set(i, j, self.root)
            # Orient the axis so axis_from is on the root side.
            if i in moved and j not in moved:
                i, j = j, i
            elif j in moved and i in moved:
                # Disconnected fragment oddity; skip.
                continue
            distal = np.array(sorted(moved - {i, j}), dtype=np.intp)
            if distal.size == 0:
                continue
            branches.append(Branch(axis_from=i, axis_to=j, moved=distal))
        # Pre-order: branches whose axis atoms move under another branch
        # must come after it. Sort by depth = number of branches moving
        # this branch's axis_to atom.
        def depth(br: Branch) -> int:
            return sum(
                1 for other in branches if br.axis_to in other.moved
            )

        branches.sort(key=depth)
        return branches

    # -- posing ---------------------------------------------------------------
    @property
    def n_torsions(self) -> int:
        return len(self.branches)

    @property
    def dof(self) -> int:
        """Total degrees of freedom: 3 translation + 3 rotation + torsions."""
        return 6 + self.n_torsions

    def pose(
        self,
        translation: np.ndarray,
        quaternion: np.ndarray,
        torsions: np.ndarray,
    ) -> np.ndarray:
        """Coordinates for the given conformation vector.

        Torsions are applied innermost-last in tree order on the reference
        geometry, then the whole ligand is rotated about its root atom by
        ``quaternion`` and translated so the root lands at
        ``reference[root] + translation``.

        A batch of one: the single implementation is :meth:`pose_batch`,
        which keeps per-pose and population-at-once evaluation
        bit-for-bit identical.
        """
        torsions = np.asarray(torsions, dtype=np.float64)
        if torsions.shape != (self.n_torsions,):
            raise ValueError(
                f"expected {self.n_torsions} torsion angles, got {torsions.shape}"
            )
        return self.pose_batch(
            np.asarray(translation, dtype=np.float64)[None],
            np.asarray(quaternion, dtype=np.float64)[None],
            torsions[None],
        )[0]

    def pose_batch(
        self,
        translations: np.ndarray,
        quaternions: np.ndarray,
        torsions: np.ndarray,
    ) -> np.ndarray:
        """Coordinates for ``P`` conformations at once: ``(P, N, 3)``.

        Branch rotations are applied in tree order (as in :meth:`pose`)
        but vectorized across the pose axis, so scoring a whole GA
        population costs a handful of numpy calls instead of ``P`` Python
        round-trips. Each pose's arithmetic is identical to the scalar
        path — per-pose ``(M, 3) @ (3, 3)`` matmuls — so results match
        pose-by-pose evaluation exactly.
        """
        translations = np.asarray(translations, dtype=np.float64)
        quaternions = np.asarray(quaternions, dtype=np.float64)
        torsions = np.asarray(torsions, dtype=np.float64)
        P = translations.shape[0]
        if translations.shape != (P, 3) or quaternions.shape != (P, 4):
            raise ValueError(
                "expected (P, 3) translations and (P, 4) quaternions, got "
                f"{translations.shape} and {quaternions.shape}"
            )
        if torsions.shape != (P, self.n_torsions):
            raise ValueError(
                f"expected (P, {self.n_torsions}) torsion angles, got "
                f"{torsions.shape}"
            )
        coords = np.repeat(self.reference[None, :, :], P, axis=0)
        for k, br in enumerate(self.branches):
            angles = torsions[:, k]
            origin = coords[:, br.axis_from]  # (P, 3)
            axis = coords[:, br.axis_to] - origin
            norm = np.sqrt((axis * axis).sum(axis=1))
            active = (np.abs(angles) >= 1e-12) & (norm >= 1e-9)
            if not active.any():
                continue
            idx = np.nonzero(active)[0]
            R = rotation_about_axis_batch(axis[idx], angles[idx])
            o = origin[idx][:, None, :]
            moved = coords[np.ix_(idx, br.moved)]
            coords[np.ix_(idx, br.moved)] = (moved - o) @ R.transpose(0, 2, 1) + o
        root_pos = coords[:, self.root][:, None, :]  # (P, 1, 3)
        R = quaternion_to_matrix_batch(quaternions)
        coords = (coords - root_pos) @ R.transpose(0, 2, 1) + root_pos
        return coords + translations[:, None, :]

    def identity_conformation(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The conformation that reproduces the reference coordinates."""
        return (
            np.zeros(3),
            np.array([1.0, 0.0, 0.0, 0.0]),
            np.zeros(self.n_torsions),
        )

    def to_pdbqt_records(self) -> list[tuple]:
        """ROOT/BRANCH record stream for :func:`write_pdbqt`.

        Atoms are emitted root-fragment first, then each branch's atoms
        after its BRANCH record, with ENDBRANCH closers — the layout AD4
        expects.
        """
        in_branch: dict[int, int] = {}
        for bi, br in enumerate(self.branches):
            for idx in br.moved.tolist():
                # innermost branch wins (later branches are deeper)
                in_branch[idx] = bi
        records: list[tuple] = [("ROOT",)]
        root_atoms = [
            i for i in range(len(self.mol.atoms)) if i not in in_branch
        ]
        for idx in root_atoms:
            records.append(("ATOM", idx))
        records.append(("ENDROOT",))
        for bi, br in enumerate(self.branches):
            records.append(("BRANCH", br.axis_from + 1, br.axis_to + 1))
            for idx in br.moved.tolist():
                if in_branch[idx] == bi:
                    records.append(("ATOM", idx))
            records.append(("ENDBRANCH", br.axis_from + 1, br.axis_to + 1))
        return records
