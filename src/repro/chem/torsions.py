"""Rotatable-bond detection and the ligand torsion tree.

``prepare_ligand4.py`` picks a root atom, detects rotatable bonds and
writes the ROOT/BRANCH hierarchy into the ligand PDBQT. The docking
engines then treat the ligand as a rigid root plus branches rotated about
their parent bonds. :class:`TorsionTree` provides exactly that pose
machinery, vectorized over atom blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.geometry import quaternion_to_matrix, rotation_about_axis
from repro.chem.molecule import Molecule


def _in_ring(mol: Molecule, i: int, j: int) -> bool:
    """True when edge (i, j) lies on a cycle (removal keeps i-j connected)."""
    adj = mol.adjacency
    seen = {i}
    stack = [i]
    while stack:
        v = stack.pop()
        for w in adj[v]:
            if v == i and w == j:
                continue  # skip the bond itself
            if (v, w) == (i, j) or (v, w) == (j, i):
                continue
            if w == j:
                return True
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return False


def find_rotatable_bonds(mol: Molecule) -> list[tuple[int, int]]:
    """Rotatable bonds per the AutoDockTools rules.

    A bond is rotatable when it is a single, non-aromatic, acyclic bond
    whose two ends each have at least one additional heavy-atom neighbor
    (terminal bonds such as C-H or C-CH3-with-only-H are skipped; amide
    C-N bonds are excluded).
    """
    rotatable: list[tuple[int, int]] = []
    for b in mol.bonds:
        if b.order != 1 or b.aromatic:
            continue
        ai, aj = mol.atoms[b.i], mol.atoms[b.j]
        if ai.is_hydrogen or aj.is_hydrogen:
            continue
        # Each endpoint needs a heavy neighbor besides the other endpoint.
        heavy_i = [
            k for k in mol.neighbors(b.i) if k != b.j and mol.atoms[k].is_heavy
        ]
        heavy_j = [
            k for k in mol.neighbors(b.j) if k != b.i and mol.atoms[k].is_heavy
        ]
        if not heavy_i or not heavy_j:
            continue
        if _is_amide(mol, b.i, b.j) or _is_amide(mol, b.j, b.i):
            continue
        if _in_ring(mol, b.i, b.j):
            continue
        rotatable.append((b.i, b.j))
    return rotatable


def _is_amide(mol: Molecule, c_idx: int, n_idx: int) -> bool:
    """C-N where the carbon also carries a double-bonded oxygen."""
    if mol.atoms[c_idx].element != "C" or mol.atoms[n_idx].element != "N":
        return False
    for b in mol.bonds:
        if b.order == 2 and c_idx in (b.i, b.j):
            other = b.other(c_idx)
            if mol.atoms[other].element == "O":
                return True
    return False


@dataclass
class Branch:
    """One rotatable bond and the atom set it moves.

    ``axis_from``/``axis_to`` are atom indices defining the rotation axis;
    ``moved`` is the array of atom indices on the distal side. Branches
    are stored in tree (pre-)order, so applying them sequentially composes
    parent-before-child rotations correctly.
    """

    axis_from: int
    axis_to: int
    moved: np.ndarray


class TorsionTree:
    """Rigid-root-plus-branches model of a flexible ligand.

    Construction picks the root as the atom that minimizes the size of the
    largest branch (AutoDockTools' "best root" heuristic), then records,
    for every rotatable bond, which atoms rotate with it.

    :meth:`pose` maps a conformation vector — translation (3), orientation
    quaternion (4), torsion angles (T) — onto fresh coordinates without
    mutating the molecule, which keeps the GA/MC loops allocation-light.
    """

    def __init__(self, mol: Molecule, rotatable: list[tuple[int, int]] | None = None):
        if len(mol.atoms) == 0:
            raise ValueError("cannot build a torsion tree over an empty molecule")
        self.mol = mol
        self.reference = mol.coords  # (N, 3) snapshot
        self.rotatable = (
            list(rotatable) if rotatable is not None else find_rotatable_bonds(mol)
        )
        self.root = self._pick_root()
        self.branches = self._build_branches()

    # -- construction --------------------------------------------------------
    def _pick_root(self) -> int:
        heavy = [i for i, a in enumerate(self.mol.atoms) if a.is_heavy]
        candidates = heavy or list(range(len(self.mol.atoms)))
        if not self.rotatable:
            return candidates[0]
        best, best_cost = candidates[0], float("inf")
        for cand in candidates:
            cost = max(
                (len(self._distal_set(i, j, cand)) for i, j in self.rotatable),
                default=0,
            )
            if cost < best_cost:
                best, best_cost = cand, cost
        return best

    def _distal_set(self, i: int, j: int, root: int) -> set[int]:
        """Atoms on the far side of bond (i, j) as seen from ``root``."""
        adj = self.mol.adjacency
        # BFS from root avoiding the (i, j) edge; unreachable atoms move.
        seen = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if {v, w} == {i, j}:
                    continue
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return set(range(len(self.mol.atoms))) - seen

    def _build_branches(self) -> list[Branch]:
        branches: list[Branch] = []
        for i, j in self.rotatable:
            moved = self._distal_set(i, j, self.root)
            # Orient the axis so axis_from is on the root side.
            if i in moved and j not in moved:
                i, j = j, i
            elif j in moved and i in moved:
                # Disconnected fragment oddity; skip.
                continue
            distal = np.array(sorted(moved - {i, j}), dtype=np.intp)
            if distal.size == 0:
                continue
            branches.append(Branch(axis_from=i, axis_to=j, moved=distal))
        # Pre-order: branches whose axis atoms move under another branch
        # must come after it. Sort by depth = number of branches moving
        # this branch's axis_to atom.
        def depth(br: Branch) -> int:
            return sum(
                1 for other in branches if br.axis_to in other.moved
            )

        branches.sort(key=depth)
        return branches

    # -- posing ---------------------------------------------------------------
    @property
    def n_torsions(self) -> int:
        return len(self.branches)

    @property
    def dof(self) -> int:
        """Total degrees of freedom: 3 translation + 3 rotation + torsions."""
        return 6 + self.n_torsions

    def pose(
        self,
        translation: np.ndarray,
        quaternion: np.ndarray,
        torsions: np.ndarray,
    ) -> np.ndarray:
        """Coordinates for the given conformation vector.

        Torsions are applied innermost-last in tree order on the reference
        geometry, then the whole ligand is rotated about its root atom by
        ``quaternion`` and translated so the root lands at
        ``reference[root] + translation``.
        """
        torsions = np.asarray(torsions, dtype=np.float64)
        if torsions.shape != (self.n_torsions,):
            raise ValueError(
                f"expected {self.n_torsions} torsion angles, got {torsions.shape}"
            )
        coords = self.reference.copy()
        for angle, br in zip(torsions, self.branches):
            if abs(angle) < 1e-12:
                continue
            origin = coords[br.axis_from]
            axis = coords[br.axis_to] - origin
            norm = np.linalg.norm(axis)
            if norm < 1e-9:
                continue
            R = rotation_about_axis(axis, float(angle))
            coords[br.moved] = (coords[br.moved] - origin) @ R.T + origin
        root_pos = coords[self.root]
        R = quaternion_to_matrix(np.asarray(quaternion, dtype=np.float64))
        coords = (coords - root_pos) @ R.T + root_pos
        return coords + np.asarray(translation, dtype=np.float64)

    def identity_conformation(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The conformation that reproduces the reference coordinates."""
        return (
            np.zeros(3),
            np.array([1.0, 0.0, 0.0, 0.0]),
            np.zeros(self.n_torsions),
        )

    def to_pdbqt_records(self) -> list[tuple]:
        """ROOT/BRANCH record stream for :func:`write_pdbqt`.

        Atoms are emitted root-fragment first, then each branch's atoms
        after its BRANCH record, with ENDBRANCH closers — the layout AD4
        expects.
        """
        in_branch: dict[int, int] = {}
        for bi, br in enumerate(self.branches):
            for idx in br.moved.tolist():
                # innermost branch wins (later branches are deeper)
                in_branch[idx] = bi
        records: list[tuple] = [("ROOT",)]
        root_atoms = [
            i for i in range(len(self.mol.atoms)) if i not in in_branch
        ]
        for idx in root_atoms:
            records.append(("ATOM", idx))
        records.append(("ENDROOT",))
        for bi, br in enumerate(self.branches):
            records.append(("BRANCH", br.axis_from + 1, br.axis_to + 1))
            for idx in br.moved.tolist():
                if in_branch[idx] == bi:
                    records.append(("ATOM", idx))
            records.append(("ENDBRANCH", br.axis_from + 1, br.axis_to + 1))
        return records
