"""Element data and AutoDock atom typing.

The tables below hold the subset of the periodic table that occurs in
protein receptors and drug-like ligands, plus the AutoDock 4 atom-type
vocabulary used by AutoGrid map generation and the AD4/Vina scoring
functions. Values follow the AD4.1 force-field parameter file
(AD4.1_bound.dat) closely enough that the scoring terms have realistic
magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ElementInfo:
    """Static per-element data."""

    symbol: str
    atomic_number: int
    mass: float  # unified atomic mass units
    vdw_radius: float  # Angstrom
    covalent_radius: float  # Angstrom
    electronegativity: float  # Pauling scale
    is_metal: bool = False


# Ordered by atomic number; this is the working set for protein/ligand
# chemistry plus the metals that appear in PDB structures (notably Hg,
# which the paper singles out as causing looping activations).
ELEMENTS: dict[str, ElementInfo] = {
    "H": ElementInfo("H", 1, 1.008, 1.20, 0.31, 2.20),
    "C": ElementInfo("C", 6, 12.011, 1.70, 0.76, 2.55),
    "N": ElementInfo("N", 7, 14.007, 1.55, 0.71, 3.04),
    "O": ElementInfo("O", 8, 15.999, 1.52, 0.66, 3.44),
    "F": ElementInfo("F", 9, 18.998, 1.47, 0.57, 3.98),
    "NA": ElementInfo("NA", 11, 22.990, 2.27, 1.66, 0.93, is_metal=True),
    "MG": ElementInfo("MG", 12, 24.305, 1.73, 1.41, 1.31, is_metal=True),
    "P": ElementInfo("P", 15, 30.974, 1.80, 1.07, 2.19),
    "S": ElementInfo("S", 16, 32.06, 1.80, 1.05, 2.58),
    "CL": ElementInfo("CL", 17, 35.45, 1.75, 1.02, 3.16),
    "K": ElementInfo("K", 19, 39.098, 2.75, 2.03, 0.82, is_metal=True),
    "CA": ElementInfo("CA", 20, 40.078, 2.31, 1.76, 1.00, is_metal=True),
    "MN": ElementInfo("MN", 25, 54.938, 2.05, 1.39, 1.55, is_metal=True),
    "FE": ElementInfo("FE", 26, 55.845, 2.04, 1.32, 1.83, is_metal=True),
    "CO": ElementInfo("CO", 27, 58.933, 2.00, 1.26, 1.88, is_metal=True),
    "NI": ElementInfo("NI", 28, 58.693, 1.97, 1.24, 1.91, is_metal=True),
    "CU": ElementInfo("CU", 29, 63.546, 1.96, 1.32, 1.90, is_metal=True),
    "ZN": ElementInfo("ZN", 30, 65.38, 2.01, 1.22, 1.65, is_metal=True),
    "BR": ElementInfo("BR", 35, 79.904, 1.85, 1.20, 2.96),
    "I": ElementInfo("I", 53, 126.904, 1.98, 1.39, 2.66),
    "HG": ElementInfo("HG", 80, 200.59, 2.05, 1.32, 2.00, is_metal=True),
}

VDW_RADII: dict[str, float] = {sym: e.vdw_radius for sym, e in ELEMENTS.items()}
COVALENT_RADII: dict[str, float] = {
    sym: e.covalent_radius for sym, e in ELEMENTS.items()
}


@dataclass(frozen=True)
class AutoDockType:
    """AutoDock 4 atom-type parameters (subset of AD4.1_bound.dat).

    ``rii`` is the sum of vdW radii for a homo-pair (Angstrom), ``epsii``
    the well depth (kcal/mol), ``solpar`` the atomic solvation parameter
    and ``vol`` the atomic solvation volume used in the AD4 desolvation
    term. ``hbond`` is 0 for none, 1/2 for donor hydrogens, 3..5 for
    acceptors, mirroring AD4's D/A classification.
    """

    name: str
    element: str
    rii: float
    epsii: float
    solpar: float
    vol: float
    hbond: int = 0

    @property
    def is_donor(self) -> bool:
        return self.hbond in (1, 2)

    @property
    def is_acceptor(self) -> bool:
        return self.hbond in (3, 4, 5)

    @property
    def is_hydrophobic(self) -> bool:
        return self.name in ("C", "A", "Cl", "Br", "I", "F")


AUTODOCK_TYPES: dict[str, AutoDockType] = {
    t.name: t
    for t in [
        AutoDockType("H", "H", 2.00, 0.020, 0.00051, 0.0000),
        AutoDockType("HD", "H", 2.00, 0.020, 0.00051, 0.0000, hbond=2),
        AutoDockType("HS", "H", 2.00, 0.020, 0.00051, 0.0000, hbond=1),
        AutoDockType("C", "C", 4.00, 0.150, -0.00143, 33.5103),
        AutoDockType("A", "C", 4.00, 0.150, -0.00052, 33.5103),
        AutoDockType("N", "N", 3.50, 0.160, -0.00162, 22.4493),
        AutoDockType("NA", "N", 3.50, 0.160, -0.00162, 22.4493, hbond=4),
        AutoDockType("NS", "N", 3.50, 0.160, -0.00162, 22.4493, hbond=3),
        AutoDockType("OA", "O", 3.20, 0.200, -0.00251, 17.1573, hbond=5),
        AutoDockType("OS", "O", 3.20, 0.200, -0.00251, 17.1573, hbond=3),
        AutoDockType("F", "F", 3.09, 0.080, -0.00110, 15.4480),
        AutoDockType("Mg", "MG", 1.30, 0.875, -0.00110, 1.5600),
        AutoDockType("P", "P", 4.20, 0.200, -0.00110, 38.7924),
        AutoDockType("SA", "S", 4.00, 0.200, -0.00214, 33.5103, hbond=5),
        AutoDockType("S", "S", 4.00, 0.200, -0.00214, 33.5103),
        AutoDockType("Cl", "CL", 4.09, 0.276, -0.00110, 35.8235),
        AutoDockType("Ca", "CA", 1.98, 0.550, -0.00110, 2.7700),
        AutoDockType("Mn", "MN", 1.30, 0.875, -0.00110, 2.1400),
        AutoDockType("Fe", "FE", 1.30, 0.010, -0.00110, 1.8400),
        AutoDockType("Zn", "ZN", 1.48, 0.550, -0.00110, 1.7000),
        AutoDockType("Br", "BR", 4.33, 0.389, -0.00110, 42.5661),
        AutoDockType("I", "I", 4.72, 0.550, -0.00110, 55.0585),
        AutoDockType("Hg", "HG", 2.20, 0.450, -0.00110, 3.5000),
    ]
}

# Elements for which no AutoDock parameterization exists in our table;
# preparation raises on them like AD4 rejects unrecognized atoms.
UNPARAMETERIZED_METALS = frozenset({"K", "NA", "CO", "NI", "CU"})


def element_info(symbol: str) -> ElementInfo:
    """Look up element data, case-insensitively.

    Raises ``KeyError`` with a helpful message for unknown symbols.
    """
    key = symbol.strip().upper()
    try:
        return ELEMENTS[key]
    except KeyError:
        raise KeyError(f"unknown element symbol {symbol!r}") from None


def autodock_type_for(
    element: str,
    *,
    aromatic: bool = False,
    h_bond_donor_neighbor: bool = False,
    h_bond_acceptor: bool = False,
) -> str:
    """Map an element (+ simple environment flags) to an AutoDock type name.

    This is the typing rule that ``prepare_ligand``/``prepare_receptor``
    apply: carbons become ``A`` when aromatic; hydrogens bonded to N/O/S
    become polar ``HD``; nitrogens and oxygens with lone pairs available
    become acceptor types ``NA``/``OA``; sulfur defaults to the acceptor
    form ``SA`` as in AD4.
    """
    el = element.strip().upper()
    if el == "C":
        return "A" if aromatic else "C"
    if el == "H":
        return "HD" if h_bond_donor_neighbor else "H"
    if el == "N":
        return "NA" if h_bond_acceptor else "N"
    if el == "O":
        return "OA"
    if el == "S":
        return "SA"
    for name, t in AUTODOCK_TYPES.items():
        if t.element == el:
            return name
    raise KeyError(f"no AutoDock atom type for element {element!r}")
