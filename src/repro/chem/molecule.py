"""Molecule container: atoms, bonds, and topology queries.

A :class:`Molecule` represents either a receptor (protein) or a ligand
(small molecule). Bond perception is distance-based when a format (PDB)
does not carry explicit bonds; SDF/MOL2 supply explicit bond blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.chem.atom import Atom
from repro.chem.elements import COVALENT_RADII

# Tolerance added to the sum of covalent radii during distance-based bond
# perception; the conventional value used by Open Babel is ~0.45 A.
BOND_TOLERANCE = 0.45


@dataclass(frozen=True)
class Bond:
    """An undirected bond between two atom indices (0-based)."""

    i: int
    j: int
    order: int = 1
    aromatic: bool = False

    def __post_init__(self) -> None:
        if self.i == self.j:
            raise ValueError("bond endpoints must differ")
        if self.i > self.j:
            # Canonical ordering so Bond(2, 1) == Bond(1, 2).
            lo, hi = self.j, self.i
            object.__setattr__(self, "i", lo)
            object.__setattr__(self, "j", hi)

    def other(self, idx: int) -> int:
        if idx == self.i:
            return self.j
        if idx == self.j:
            return self.i
        raise ValueError(f"atom {idx} not part of bond ({self.i}, {self.j})")


def _canonical_bond(i: int, j: int, order: int = 1, aromatic: bool = False) -> Bond:
    if i > j:
        i, j = j, i
    return Bond(i, j, order, aromatic)


class Molecule:
    """An ordered collection of atoms with an optional bond graph.

    The class is intentionally lightweight: heavy numeric work (scoring,
    grid generation) pulls out the coordinate matrix once via
    :attr:`coords` and operates on numpy arrays, per the vectorization
    guidance for HPC Python.
    """

    def __init__(
        self,
        name: str = "",
        atoms: Iterable[Atom] | None = None,
        bonds: Iterable[Bond] | None = None,
    ) -> None:
        self.name = name
        self.atoms: list[Atom] = list(atoms or [])
        self.bonds: list[Bond] = []
        self._adjacency: dict[int, set[int]] | None = None
        for b in bonds or []:
            self.add_bond(b.i, b.j, b.order, b.aromatic)
        self.metadata: dict = {}

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __getitem__(self, idx: int) -> Atom:
        return self.atoms[idx]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Molecule({self.name!r}, {len(self.atoms)} atoms, {len(self.bonds)} bonds)"

    # -- construction --------------------------------------------------------
    def add_atom(self, atom: Atom) -> int:
        """Append an atom; returns its 0-based index."""
        self.atoms.append(atom)
        self._adjacency = None
        return len(self.atoms) - 1

    def add_bond(
        self, i: int, j: int, order: int = 1, aromatic: bool = False
    ) -> Bond:
        n = len(self.atoms)
        if not (0 <= i < n and 0 <= j < n):
            raise IndexError(f"bond ({i}, {j}) out of range for {n} atoms")
        bond = _canonical_bond(i, j, order, aromatic)
        self.bonds.append(bond)
        self._adjacency = None
        return bond

    # -- geometry ------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """(N, 3) float64 coordinate matrix (a copy)."""
        if not self.atoms:
            return np.zeros((0, 3))
        return np.array([a.coords for a in self.atoms], dtype=np.float64)

    def set_coords(self, coords: np.ndarray) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (len(self.atoms), 3):
            raise ValueError(
                f"expected coords of shape ({len(self.atoms)}, 3), got {coords.shape}"
            )
        for atom, xyz in zip(self.atoms, coords):
            atom.coords = xyz.copy()

    def centroid(self) -> np.ndarray:
        if not self.atoms:
            raise ValueError("empty molecule has no centroid")
        return self.coords.mean(axis=0)

    def translate(self, delta: np.ndarray) -> None:
        delta = np.asarray(delta, dtype=np.float64)
        for atom in self.atoms:
            atom.coords = atom.coords + delta

    def bounding_box(self, padding: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (min, max) corners, optionally padded."""
        c = self.coords
        if c.size == 0:
            raise ValueError("empty molecule has no bounding box")
        return c.min(axis=0) - padding, c.max(axis=0) + padding

    def radius_of_gyration(self) -> float:
        c = self.coords
        center = c.mean(axis=0)
        return float(np.sqrt(((c - center) ** 2).sum(axis=1).mean()))

    # -- composition ---------------------------------------------------------
    @property
    def elements(self) -> list[str]:
        return [a.element for a in self.atoms]

    @property
    def formula(self) -> str:
        """Hill-system molecular formula (C first, H second, then others)."""
        counts: dict[str, int] = {}
        for a in self.atoms:
            counts[a.element.capitalize()] = counts.get(a.element.capitalize(), 0) + 1
        parts: list[str] = []
        for el in ("C", "H"):
            if el in counts:
                n = counts.pop(el)
                parts.append(el if n == 1 else f"{el}{n}")
        for el in sorted(counts):
            n = counts[el]
            parts.append(el if n == 1 else f"{el}{n}")
        return "".join(parts)

    @property
    def molecular_weight(self) -> float:
        return float(sum(a.mass for a in self.atoms))

    def heavy_atoms(self) -> list[int]:
        return [i for i, a in enumerate(self.atoms) if a.is_heavy]

    def contains_element(self, symbol: str) -> bool:
        symbol = symbol.strip().upper()
        return any(a.element == symbol for a in self.atoms)

    def residues(self) -> dict[tuple[str, int], list[int]]:
        """Group atom indices by (chain, residue_seq)."""
        out: dict[tuple[str, int], list[int]] = {}
        for i, a in enumerate(self.atoms):
            out.setdefault((a.chain_id, a.residue_seq), []).append(i)
        return out

    # -- topology ------------------------------------------------------------
    @property
    def adjacency(self) -> dict[int, set[int]]:
        if self._adjacency is None:
            adj: dict[int, set[int]] = {i: set() for i in range(len(self.atoms))}
            for b in self.bonds:
                adj[b.i].add(b.j)
                adj[b.j].add(b.i)
            self._adjacency = adj
        return self._adjacency

    def neighbors(self, idx: int) -> set[int]:
        return self.adjacency[idx]

    def degree(self, idx: int) -> int:
        return len(self.adjacency[idx])

    def has_bond(self, i: int, j: int) -> bool:
        return j in self.adjacency.get(i, set())

    def perceive_bonds(self, tolerance: float = BOND_TOLERANCE) -> int:
        """Distance-based bond perception (Open Babel style).

        Two atoms are bonded when their distance is below the sum of
        covalent radii plus ``tolerance``. Existing bonds are kept; the
        number of *new* bonds is returned. The pairwise distance test is
        vectorized; for receptors with thousands of atoms a per-pair
        Python loop would dominate the preparation activities.
        """
        n = len(self.atoms)
        if n < 2:
            return 0
        coords = self.coords
        radii = np.array(
            [COVALENT_RADII[a.element] for a in self.atoms], dtype=np.float64
        )
        # Pairwise squared distances via broadcasting.
        diff = coords[:, None, :] - coords[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        cutoff = (radii[:, None] + radii[None, :] + tolerance) ** 2
        mask = (d2 < cutoff) & (d2 > 0.16)  # >0.4 A: reject overlapping atoms
        ii, jj = np.nonzero(np.triu(mask, k=1))
        added = 0
        existing = {(b.i, b.j) for b in self.bonds}
        for i, j in zip(ii.tolist(), jj.tolist()):
            if (i, j) not in existing:
                self.bonds.append(_canonical_bond(i, j))
                added += 1
        if added:
            self._adjacency = None
        return added

    def connected_components(self) -> list[list[int]]:
        """Connected components of the bond graph (list of atom indices)."""
        seen: set[int] = set()
        comps: list[list[int]] = []
        adj = self.adjacency
        for start in range(len(self.atoms)):
            if start in seen:
                continue
            stack, comp = [start], []
            seen.add(start)
            while stack:
                v = stack.pop()
                comp.append(v)
                for w in adj[v]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            comps.append(sorted(comp))
        return comps

    def copy(self) -> "Molecule":
        m = Molecule(self.name, (a.copy() for a in self.atoms), self.bonds)
        m.metadata = dict(self.metadata)
        return m

    # -- convenience ---------------------------------------------------------
    def renumber(self) -> None:
        """Reassign 1-based serials in storage order."""
        for i, a in enumerate(self.atoms, start=1):
            a.serial = i


@dataclass
class ResidueTemplate:
    """Geometry-free description of one residue used by the generator."""

    name: str
    atom_names: list[str]
    elements: list[str]
    bonds: list[tuple[int, int]] = field(default_factory=list)
