"""Sybyl MOL2 format reader/writer.

Activity 1 of SciDock (Babel) emits Sybyl MOL2; activity 2
(``prepare_ligand``) consumes it. Only the MOLECULE/ATOM/BOND record
types are required by that path.
"""

from __future__ import annotations

import numpy as np

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule


class Mol2ParseError(ValueError):
    """Raised on malformed MOL2 input."""


#: element -> default SYBYL atom type
_SYBYL_TYPES = {
    "C": "C.3",
    "N": "N.3",
    "O": "O.3",
    "S": "S.3",
    "P": "P.3",
    "H": "H",
    "F": "F",
    "CL": "Cl",
    "BR": "Br",
    "I": "I",
    "FE": "Fe",
    "ZN": "Zn",
    "MG": "Mg",
    "CA": "Ca.2",
    "HG": "Hg",
    "NA": "Na",
    "K": "K",
    "MN": "Mn",
    "CU": "Cu",
    "NI": "Ni",
    "CO": "Co.oh",
}


def _element_from_sybyl(sybyl: str) -> str:
    base = sybyl.split(".")[0]
    return base.upper()


def parse_mol2(text: str, name: str = "") -> Molecule:
    """Parse the first molecule of a MOL2 file."""
    lines = text.splitlines()
    section = None
    mol_header: list[str] = []
    atom_lines: list[str] = []
    bond_lines: list[str] = []
    for raw in lines:
        line = raw.rstrip()
        if line.startswith("@<TRIPOS>"):
            section = line[9:].strip().upper()
            if section == "MOLECULE" and atom_lines:
                break  # second molecule starts; stop at the first
            continue
        if section == "MOLECULE":
            mol_header.append(line)
        elif section == "ATOM" and line.strip():
            atom_lines.append(line)
        elif section == "BOND" and line.strip():
            bond_lines.append(line)
    if not atom_lines:
        raise Mol2ParseError("no @<TRIPOS>ATOM section found")
    mol_name = (mol_header[0].strip() if mol_header else "") or name
    mol = Molecule(name=mol_name)
    id_to_index: dict[int, int] = {}
    for ln in atom_lines:
        fields = ln.split()
        if len(fields) < 6:
            raise Mol2ParseError(f"bad atom record: {ln!r}")
        try:
            atom_id = int(fields[0])
            x, y, z = (float(fields[2]), float(fields[3]), float(fields[4]))
        except ValueError:
            raise Mol2ParseError(f"bad atom record: {ln!r}") from None
        sybyl = fields[5]
        element = _element_from_sybyl(sybyl)
        charge = 0.0
        if len(fields) >= 9:
            try:
                charge = float(fields[8])
            except ValueError:
                charge = 0.0
        res_name = fields[7][:3] if len(fields) >= 8 else "LIG"
        atom = Atom(
            serial=atom_id,
            name=fields[1],
            element=element,
            coords=np.array([x, y, z]),
            residue_name=res_name or "LIG",
            charge=charge,
            aromatic=sybyl.endswith(".ar"),
        )
        atom.metadata["sybyl_type"] = sybyl
        id_to_index[atom_id] = mol.add_atom(atom)
    for ln in bond_lines:
        fields = ln.split()
        if len(fields) < 4:
            raise Mol2ParseError(f"bad bond record: {ln!r}")
        try:
            i, j = int(fields[1]), int(fields[2])
        except ValueError:
            raise Mol2ParseError(f"bad bond record: {ln!r}") from None
        bond_type = fields[3]
        aromatic = bond_type == "ar"
        order = {"1": 1, "2": 2, "3": 3, "ar": 1, "am": 1, "du": 1}.get(bond_type, 1)
        if i not in id_to_index or j not in id_to_index:
            raise Mol2ParseError(f"bond references unknown atom id in: {ln!r}")
        mol.add_bond(id_to_index[i], id_to_index[j], order=order, aromatic=aromatic)
    return mol


def sybyl_type_for(atom: Atom, mol: Molecule, index: int) -> str:
    """Best-effort SYBYL type assignment from element + aromaticity."""
    cached = atom.metadata.get("sybyl_type")
    if cached:
        return cached
    el = atom.element
    if el == "C" and atom.aromatic:
        return "C.ar"
    if el == "N" and atom.aromatic:
        return "N.ar"
    # sp2 oxygens: double-bonded O
    if el == "O":
        for b in mol.bonds:
            if index in (b.i, b.j) and b.order == 2:
                return "O.2"
    return _SYBYL_TYPES.get(el, el.capitalize())


def write_mol2(mol: Molecule) -> str:
    """Serialize a molecule as Sybyl MOL2 text."""
    lines = [
        "@<TRIPOS>MOLECULE",
        mol.name or "UNNAMED",
        f"{len(mol.atoms):>5} {len(mol.bonds):>5}     1     0     0",
        "SMALL",
        "USER_CHARGES" if any(a.charge for a in mol.atoms) else "NO_CHARGES",
        "",
        "@<TRIPOS>ATOM",
    ]
    for k, a in enumerate(mol.atoms):
        sybyl = sybyl_type_for(a, mol, k)
        lines.append(
            f"{k + 1:>7} {a.name:<8} {a.coords[0]:>9.4f} {a.coords[1]:>9.4f}"
            f" {a.coords[2]:>9.4f} {sybyl:<7} {a.residue_seq:>3} "
            f"{a.residue_name:<7} {a.charge:>9.4f}"
        )
    lines.append("@<TRIPOS>BOND")
    for k, b in enumerate(mol.bonds):
        btype = "ar" if b.aromatic else str(b.order)
        lines.append(f"{k + 1:>6} {b.i + 1:>5} {b.j + 1:>5} {btype:>4}")
    return "\n".join(lines) + "\n"
