"""PDB (Protein Data Bank) format reader/writer.

Implements the column-oriented ATOM/HETATM/CONECT/TER/END records that the
SciDock receptor path needs. Columns follow the PDB v3.3 specification.
"""

from __future__ import annotations

import numpy as np

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule


class PDBParseError(ValueError):
    """Raised on malformed PDB input."""


def _element_from_line(line: str, name: str) -> str:
    """Element symbol: columns 77-78 when present, else from the atom name."""
    if len(line) >= 78:
        el = line[76:78].strip()
        if el:
            return el.upper()
    # Fall back to the atom-name heuristic: strip digits, take the leading
    # alphabetic characters; two-letter symbols are left-justified in
    # column 13 only for elements like FE/ZN/HG.
    stripped = name.strip()
    letters = "".join(ch for ch in stripped if ch.isalpha())
    if not letters:
        raise PDBParseError(f"cannot infer element from atom name {name!r}")
    two = letters[:2].upper()
    from repro.chem.elements import ELEMENTS

    if two in ELEMENTS and two not in ("CA", "CL"):  # CA: usually C-alpha
        return two
    if two == "CL" and stripped.upper().startswith("CL"):
        return "CL"
    return letters[0].upper()


def parse_pdb(text: str, name: str = "") -> Molecule:
    """Parse PDB text into a :class:`Molecule`.

    ATOM and HETATM records become atoms; CONECT records become bonds.
    Alternate locations other than '' or 'A' are skipped, matching what
    preparation tools do by default.
    """
    mol = Molecule(name=name)
    serial_to_index: dict[int, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        record = line[:6].strip()
        if record in ("ATOM", "HETATM"):
            if len(line) < 54:
                raise PDBParseError(f"line {lineno}: truncated {record} record")
            altloc = line[16] if len(line) > 16 else " "
            if altloc not in (" ", "A"):
                continue
            try:
                serial = int(line[6:11])
                x = float(line[30:38])
                y = float(line[38:46])
                z = float(line[46:54])
            except ValueError as exc:
                raise PDBParseError(f"line {lineno}: {exc}") from None
            atom_name = line[12:16]
            res_name = line[17:20].strip() or "UNK"
            chain = line[21].strip() or "A"
            try:
                res_seq = int(line[22:26])
            except ValueError:
                res_seq = 1
            occupancy = 1.0
            temp = 0.0
            if len(line) >= 60:
                try:
                    occupancy = float(line[54:60])
                except ValueError:
                    pass
            if len(line) >= 66:
                try:
                    temp = float(line[60:66])
                except ValueError:
                    pass
            atom = Atom(
                serial=serial,
                name=atom_name.strip(),
                element=_element_from_line(line, atom_name),
                coords=np.array([x, y, z]),
                residue_name=res_name,
                residue_seq=res_seq,
                chain_id=chain,
                occupancy=occupancy,
                temp_factor=temp,
            )
            atom.metadata["hetatm"] = record == "HETATM"
            serial_to_index[serial] = mol.add_atom(atom)
        elif record == "CONECT":
            fields = line[6:].split()
            if not fields:
                continue
            try:
                src = int(fields[0])
                dests = [int(f) for f in fields[1:5]]
            except ValueError:
                raise PDBParseError(f"line {lineno}: bad CONECT record") from None
            if src not in serial_to_index:
                continue
            for d in dests:
                if d in serial_to_index:
                    i, j = serial_to_index[src], serial_to_index[d]
                    if i != j and not mol.has_bond(i, j):
                        mol.add_bond(i, j)
        elif record == "HEADER" and not mol.name:
            mol.name = line[62:66].strip() or line[10:50].strip()
    if not mol.atoms:
        raise PDBParseError("no ATOM/HETATM records found")
    return mol


def write_pdb(mol: Molecule, *, remarks: list[str] | None = None) -> str:
    """Serialize a molecule to PDB text (with CONECT records for bonds)."""
    lines: list[str] = []
    if mol.name:
        lines.append(f"HEADER    {'PROTEIN':<40}{'':>11}{mol.name[:4].upper():>4}")
    for remark in remarks or []:
        lines.append(f"REMARK    {remark}")
    for i, a in enumerate(mol.atoms, start=1):
        record = "HETATM" if a.metadata.get("hetatm") else "ATOM  "
        # Atom-name column alignment: 1-letter elements start in col 14.
        name = a.name[:4]
        if len(a.element) == 1 and len(name) < 4:
            name = f" {name}"
        lines.append(
            f"{record}{i:>5} {name:<4}{' '}{a.residue_name[:3]:>3} "
            f"{a.chain_id[:1]}{a.residue_seq:>4}    "
            f"{a.coords[0]:8.3f}{a.coords[1]:8.3f}{a.coords[2]:8.3f}"
            f"{a.occupancy:6.2f}{a.temp_factor:6.2f}          "
            f"{a.element[:2]:>2}"
        )
    # CONECT records (once per bonded pair, both directions like RCSB).
    if mol.bonds:
        adj: dict[int, list[int]] = {}
        for b in mol.bonds:
            adj.setdefault(b.i + 1, []).append(b.j + 1)
            adj.setdefault(b.j + 1, []).append(b.i + 1)
        for src in sorted(adj):
            partners = sorted(adj[src])
            for k in range(0, len(partners), 4):
                chunk = partners[k : k + 4]
                lines.append(
                    "CONECT" + f"{src:>5}" + "".join(f"{p:>5}" for p in chunk)
                )
    lines.append("END")
    return "\n".join(lines) + "\n"
