"""SDF / MDL molfile (V2000) reader and writer.

SciDock's first activity converts ligands from SDF to Sybyl MOL2 with
Babel; this module implements the SDF side. Multi-record SD files
(``$$$$``-separated) are supported.
"""

from __future__ import annotations

import numpy as np

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule


class SDFParseError(ValueError):
    """Raised on malformed SDF input."""


def _parse_counts_line(line: str) -> tuple[int, int]:
    try:
        n_atoms = int(line[0:3])
        n_bonds = int(line[3:6])
    except (ValueError, IndexError):
        raise SDFParseError(f"bad counts line: {line!r}") from None
    return n_atoms, n_bonds


def _parse_one(block: list[str], default_name: str) -> Molecule:
    if len(block) < 4:
        raise SDFParseError("molfile shorter than the 4 header lines")
    name = block[0].strip() or default_name
    counts = block[3]
    n_atoms, n_bonds = _parse_counts_line(counts)
    if len(block) < 4 + n_atoms + n_bonds:
        raise SDFParseError(
            f"molfile declares {n_atoms} atoms / {n_bonds} bonds but is truncated"
        )
    mol = Molecule(name=name)
    for k in range(n_atoms):
        line = block[4 + k]
        try:
            x = float(line[0:10])
            y = float(line[10:20])
            z = float(line[20:30])
            element = line[31:34].strip()
        except (ValueError, IndexError):
            raise SDFParseError(f"bad atom line {k + 1}: {line!r}") from None
        if not element:
            raise SDFParseError(f"atom line {k + 1} missing element symbol")
        mol.add_atom(
            Atom(
                serial=k + 1,
                name=f"{element}{k + 1}",
                element=element,
                coords=np.array([x, y, z]),
                residue_name="LIG",
            )
        )
    for k in range(n_bonds):
        line = block[4 + n_atoms + k]
        try:
            i = int(line[0:3])
            j = int(line[3:6])
            order = int(line[6:9])
        except (ValueError, IndexError):
            raise SDFParseError(f"bad bond line {k + 1}: {line!r}") from None
        if not (1 <= i <= n_atoms and 1 <= j <= n_atoms):
            raise SDFParseError(f"bond ({i}, {j}) out of range")
        aromatic = order == 4
        mol.add_bond(i - 1, j - 1, order=min(order, 3), aromatic=aromatic)
        if aromatic:
            mol.atoms[i - 1].aromatic = True
            mol.atoms[j - 1].aromatic = True
    # Data items: "> <KEY>" followed by a value line.
    idx = 4 + n_atoms + n_bonds
    while idx < len(block):
        line = block[idx]
        if line.startswith(">"):
            key = line.split("<")[-1].rstrip(">").strip() if "<" in line else ""
            if key and idx + 1 < len(block):
                mol.metadata[key] = block[idx + 1].strip()
                idx += 1
        idx += 1
    return mol


def parse_sdf(text: str, name: str = "") -> Molecule:
    """Parse the *first* record of an SD file."""
    mols = parse_sdf_multi(text, name)
    return mols[0]


def parse_sdf_multi(text: str, name: str = "") -> list[Molecule]:
    """Parse every ``$$$$``-separated record of an SD file."""
    blocks: list[list[str]] = []
    current: list[str] = []
    for line in text.splitlines():
        if line.strip() == "$$$$":
            if current:
                blocks.append(current)
                current = []
        else:
            current.append(line)
    if any(l.strip() for l in current):
        blocks.append(current)
    if not blocks:
        raise SDFParseError("empty SD file")
    return [
        _parse_one(b, default_name=name or f"MOL{k + 1}")
        for k, b in enumerate(blocks)
    ]


def write_sdf(mol: Molecule, *, program: str = "repro") -> str:
    """Serialize a single molecule as an MDL V2000 record."""
    lines = [
        mol.name or "UNNAMED",
        f"  {program:<8}3D",
        "",
        f"{len(mol.atoms):>3}{len(mol.bonds):>3}  0  0  0  0  0  0  0  0999 V2000",
    ]
    for a in mol.atoms:
        el = a.element.capitalize()
        lines.append(
            f"{a.coords[0]:>10.4f}{a.coords[1]:>10.4f}{a.coords[2]:>10.4f}"
            f" {el:<3} 0  0  0  0  0  0  0  0  0  0  0  0"
        )
    for b in mol.bonds:
        order = 4 if b.aromatic else b.order
        lines.append(f"{b.i + 1:>3}{b.j + 1:>3}{order:>3}  0  0  0  0")
    lines.append("M  END")
    for key, value in mol.metadata.items():
        if isinstance(value, (str, int, float)):
            lines.append(f">  <{key}>")
            lines.append(str(value))
            lines.append("")
    lines.append("$$$$")
    return "\n".join(lines) + "\n"
