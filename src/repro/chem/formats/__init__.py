"""File-format parsers and writers (PDB, SDF, Sybyl MOL2, PDBQT)."""

from repro.chem.formats.pdb import parse_pdb, write_pdb
from repro.chem.formats.sdf import parse_sdf, write_sdf
from repro.chem.formats.mol2 import parse_mol2, write_mol2
from repro.chem.formats.pdbqt import parse_pdbqt, write_pdbqt

__all__ = [
    "parse_pdb",
    "write_pdb",
    "parse_sdf",
    "write_sdf",
    "parse_mol2",
    "write_mol2",
    "parse_pdbqt",
    "write_pdbqt",
]
