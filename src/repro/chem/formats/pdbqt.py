"""PDBQT format (PDB + partial charge Q + AutoDock atom type T).

This is the lingua franca between MGLTools preparation, AutoGrid and the
AD4/Vina engines. Ligand PDBQT files carry a torsion tree encoded as
ROOT/BRANCH/ENDBRANCH/TORSDOF records; receptor PDBQT files are flat.
"""

from __future__ import annotations

import numpy as np

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule


class PDBQTParseError(ValueError):
    """Raised on malformed PDBQT input."""


def parse_pdbqt(text: str, name: str = "") -> Molecule:
    """Parse PDBQT text.

    Torsion-tree records are preserved in ``mol.metadata['torsion_tree']``
    as a list of raw record tuples so that a ligand round-trips losslessly,
    and ``mol.metadata['torsdof']`` carries the declared torsional degrees
    of freedom.
    """
    mol = Molecule(name=name)
    tree_records: list[tuple] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        record = line[:6].strip()
        if record in ("ATOM", "HETATM"):
            if len(line) < 78:
                raise PDBQTParseError(
                    f"line {lineno}: PDBQT atom record too short"
                )
            try:
                serial = int(line[6:11])
                x = float(line[30:38])
                y = float(line[38:46])
                z = float(line[46:54])
                charge = float(line[66:76])
            except ValueError as exc:
                raise PDBQTParseError(f"line {lineno}: {exc}") from None
            adtype = line[77:79].strip()
            if not adtype:
                raise PDBQTParseError(f"line {lineno}: missing AutoDock type")
            from repro.chem.elements import AUTODOCK_TYPES

            if adtype not in AUTODOCK_TYPES:
                raise PDBQTParseError(
                    f"line {lineno}: unknown AutoDock type {adtype!r}"
                )
            element = AUTODOCK_TYPES[adtype].element
            atom = Atom(
                serial=serial,
                name=line[12:16].strip(),
                element=element,
                coords=np.array([x, y, z]),
                residue_name=line[17:20].strip() or "UNK",
                residue_seq=int(line[22:26]) if line[22:26].strip() else 1,
                chain_id=line[21].strip() or "A",
                charge=charge,
                autodock_type=adtype,
            )
            idx = mol.add_atom(atom)
            tree_records.append(("ATOM", idx))
        elif record == "ROOT":
            tree_records.append(("ROOT",))
        elif record == "ENDROOT":
            tree_records.append(("ENDROOT",))
        elif record == "BRANCH":
            fields = line.split()
            if len(fields) != 3:
                raise PDBQTParseError(f"line {lineno}: bad BRANCH record")
            tree_records.append(("BRANCH", int(fields[1]), int(fields[2])))
        elif record == "ENDBRA" or line.startswith("ENDBRANCH"):
            fields = line.split()
            tree_records.append(("ENDBRANCH", int(fields[1]), int(fields[2])))
        elif record == "TORSDO" or line.startswith("TORSDOF"):
            fields = line.split()
            mol.metadata["torsdof"] = int(fields[1])
        elif record == "REMARK":
            mol.metadata.setdefault("remarks", []).append(line[6:].strip())
    if not mol.atoms:
        raise PDBQTParseError("no ATOM/HETATM records found")
    if any(r[0] != "ATOM" for r in tree_records):
        mol.metadata["torsion_tree"] = tree_records
    return mol


def _atom_line(a: Atom, serial: int) -> str:
    name = a.name[:4]
    if len(a.element) == 1 and len(name) < 4:
        name = f" {name}"
    adtype = a.autodock_type or "C"
    return (
        f"ATOM  {serial:>5} {name:<4} {a.residue_name[:3]:>3} "
        f"{a.chain_id[:1]}{a.residue_seq:>4}    "
        f"{a.coords[0]:8.3f}{a.coords[1]:8.3f}{a.coords[2]:8.3f}"
        f"{a.occupancy:6.2f}{a.temp_factor:6.2f}    "
        f"{a.charge:>+6.3f} {adtype:<2}"
    )


def write_pdbqt(mol: Molecule, *, rigid: bool = False) -> str:
    """Serialize to PDBQT.

    When the molecule carries a ``torsion_tree`` (ligand) and ``rigid`` is
    False, the ROOT/BRANCH structure is re-emitted with atoms renumbered in
    tree order; otherwise a flat (receptor-style) file is written.
    """
    for a in mol.atoms:
        if a.autodock_type is None:
            raise ValueError(
                f"atom {a.name} has no AutoDock type; run prepare first"
            )
    lines: list[str] = []
    tree = mol.metadata.get("torsion_tree")
    if tree and not rigid:
        serial_of: dict[int, int] = {}
        next_serial = 1
        for rec in tree:
            if rec[0] == "ATOM":
                idx = rec[1]
                serial_of[idx] = next_serial
                lines.append(_atom_line(mol.atoms[idx], next_serial))
                next_serial += 1
            elif rec[0] == "ROOT":
                lines.append("ROOT")
            elif rec[0] == "ENDROOT":
                lines.append("ENDROOT")
            elif rec[0] == "BRANCH":
                lines.append(f"BRANCH {rec[1]:>3} {rec[2]:>3}")
            elif rec[0] == "ENDBRANCH":
                lines.append(f"ENDBRANCH {rec[1]:>3} {rec[2]:>3}")
        lines.append(f"TORSDOF {mol.metadata.get('torsdof', 0)}")
    else:
        for remark in mol.metadata.get("remarks", []):
            lines.append(f"REMARK {remark}")
        for k, a in enumerate(mol.atoms, start=1):
            lines.append(_atom_line(a, k))
        if "torsdof" in mol.metadata and not rigid:
            lines.append(f"TORSDOF {mol.metadata['torsdof']}")
    return "\n".join(lines) + "\n"
