"""Molecular toolkit substrate.

Implements, from scratch, the chemistry layer the SciDock workflow depends
on: atoms and molecules, file-format parsers/writers (PDB, SDF, Sybyl MOL2,
PDBQT), Open-Babel-style format conversion, Gasteiger partial charges,
rotatable-bond/torsion-tree analysis, rigid-body geometry and RMSD, and a
deterministic synthetic-structure generator standing in for RCSB-PDB
downloads (which are unavailable offline).
"""

from repro.chem.atom import Atom
from repro.chem.molecule import Bond, Molecule
from repro.chem.elements import (
    AUTODOCK_TYPES,
    COVALENT_RADII,
    ELEMENTS,
    VDW_RADII,
    autodock_type_for,
    element_info,
)
from repro.chem.geometry import (
    centroid,
    kabsch_align,
    random_rotation_matrix,
    rmsd,
    rotation_about_axis,
    symmetric_rmsd,
)
from repro.chem.babel import convert_file, convert_molecule, guess_format
from repro.chem.charges import assign_gasteiger_charges
from repro.chem.torsions import TorsionTree, find_rotatable_bonds
from repro.chem.generate import (
    LigandGenerator,
    ReceptorGenerator,
    generate_ligand,
    generate_receptor,
)

__all__ = [
    "Atom",
    "Bond",
    "Molecule",
    "ELEMENTS",
    "VDW_RADII",
    "COVALENT_RADII",
    "AUTODOCK_TYPES",
    "element_info",
    "autodock_type_for",
    "centroid",
    "rmsd",
    "symmetric_rmsd",
    "kabsch_align",
    "rotation_about_axis",
    "random_rotation_matrix",
    "convert_file",
    "convert_molecule",
    "guess_format",
    "assign_gasteiger_charges",
    "find_rotatable_bonds",
    "TorsionTree",
    "LigandGenerator",
    "ReceptorGenerator",
    "generate_ligand",
    "generate_receptor",
]
