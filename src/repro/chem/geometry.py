"""Rigid-body geometry: rotations, alignment, RMSD.

All routines operate on ``(N, 3)`` float64 arrays and are fully
vectorized; they sit on the hot path of the docking search (every GA
individual / MC step re-poses the ligand).
"""

from __future__ import annotations

import numpy as np


def centroid(coords: np.ndarray) -> np.ndarray:
    """Mean position of a coordinate set."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3 or coords.shape[0] == 0:
        raise ValueError(f"expected non-empty (N, 3) array, got {coords.shape}")
    return coords.mean(axis=0)


def rotation_about_axis(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation matrix for a rotation of ``angle`` radians about ``axis``.

    Rodrigues' formula; ``axis`` need not be normalized.
    """
    axis = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    c, s = np.cos(angle), np.sin(angle)
    C = 1.0 - c
    return np.array(
        [
            [x * x * C + c, x * y * C - z * s, x * z * C + y * s],
            [y * x * C + z * s, y * y * C + c, y * z * C - x * s],
            [z * x * C - y * s, z * y * C + x * s, z * z * C + c],
        ]
    )


def rotation_about_axis_batch(axes: np.ndarray, angles: np.ndarray) -> np.ndarray:
    """Rodrigues rotation matrices for ``(K, 3)`` axes / ``(K,)`` angles.

    Per-row arithmetic matches :func:`rotation_about_axis` exactly, so a
    batched pose evaluation reproduces the scalar one bit-for-bit.
    """
    axes = np.asarray(axes, dtype=np.float64)
    angles = np.asarray(angles, dtype=np.float64)
    norms = np.sqrt((axes * axes).sum(axis=1))
    if np.any(norms < 1e-12):
        raise ValueError("rotation axis must be non-zero")
    x, y, z = (axes / norms[:, None]).T
    c, s = np.cos(angles), np.sin(angles)
    C = 1.0 - c
    R = np.empty((axes.shape[0], 3, 3))
    R[:, 0, 0] = x * x * C + c
    R[:, 0, 1] = x * y * C - z * s
    R[:, 0, 2] = x * z * C + y * s
    R[:, 1, 0] = y * x * C + z * s
    R[:, 1, 1] = y * y * C + c
    R[:, 1, 2] = y * z * C - x * s
    R[:, 2, 0] = z * x * C - y * s
    R[:, 2, 1] = z * y * C + x * s
    R[:, 2, 2] = z * z * C + c
    return R


def quaternion_to_matrix(q: np.ndarray) -> np.ndarray:
    """Unit quaternion (w, x, y, z) to a 3x3 rotation matrix."""
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (4,):
        raise ValueError("quaternion must have shape (4,)")
    n = np.linalg.norm(q)
    if n < 1e-12:
        raise ValueError("zero quaternion has no orientation")
    w, x, y, z = q / n
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def quaternion_to_matrix_batch(q: np.ndarray) -> np.ndarray:
    """Unit quaternions ``(K, 4)`` to rotation matrices ``(K, 3, 3)``.

    Same arithmetic as :func:`quaternion_to_matrix`, vectorized over the
    leading axis.
    """
    q = np.asarray(q, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 4:
        raise ValueError("quaternion batch must have shape (K, 4)")
    n = np.sqrt((q * q).sum(axis=1))
    if np.any(n < 1e-12):
        raise ValueError("zero quaternion has no orientation")
    w, x, y, z = (q / n[:, None]).T
    R = np.empty((q.shape[0], 3, 3))
    R[:, 0, 0] = 1 - 2 * (y * y + z * z)
    R[:, 0, 1] = 2 * (x * y - w * z)
    R[:, 0, 2] = 2 * (x * z + w * y)
    R[:, 1, 0] = 2 * (x * y + w * z)
    R[:, 1, 1] = 1 - 2 * (x * x + z * z)
    R[:, 1, 2] = 2 * (y * z - w * x)
    R[:, 2, 0] = 2 * (x * z - w * y)
    R[:, 2, 1] = 2 * (y * z + w * x)
    R[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return R


def random_rotation_matrix(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation (via a random unit quaternion)."""
    q = rng.normal(size=4)
    return quaternion_to_matrix(q)


def random_unit_quaternion(rng: np.random.Generator) -> np.ndarray:
    q = rng.normal(size=4)
    return q / np.linalg.norm(q)


def apply_rotation(
    coords: np.ndarray, rotation: np.ndarray, origin: np.ndarray | None = None
) -> np.ndarray:
    """Rotate ``coords`` about ``origin`` (default: their centroid)."""
    coords = np.asarray(coords, dtype=np.float64)
    if origin is None:
        origin = centroid(coords)
    return (coords - origin) @ rotation.T + origin


def rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Plain (identity-mapping) root-mean-square deviation in Angstrom.

    This is what AutoDock reports in its RMSD tables: atoms are compared
    in input order, with no optimal superposition.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.shape[0] == 0:
        raise ValueError("cannot compute RMSD of empty coordinate sets")
    return float(np.sqrt(((a - b) ** 2).sum(axis=1).mean()))


def symmetric_rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Nearest-atom-mapping RMSD, tolerant to atom-order permutations.

    For each atom in ``a`` the closest atom in ``b`` is used (and vice
    versa, taking the max of the two directions so it stays symmetric).
    Vina uses a comparable symmetry-corrected measure.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != 3 or b.shape[1] != 3:
        raise ValueError("expected (N, 3) coordinate arrays")
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("cannot compute RMSD of empty coordinate sets")
    diff = a[:, None, :] - b[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    ab = float(np.sqrt(d2.min(axis=1).mean()))
    ba = float(np.sqrt(d2.min(axis=0).mean()))
    return max(ab, ba)


def kabsch_align(mobile: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, float]:
    """Optimal superposition of ``mobile`` onto ``target`` (Kabsch).

    Returns the transformed mobile coordinates and the post-alignment
    RMSD. Used by the clustering step and by analysis utilities.
    """
    mobile = np.asarray(mobile, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if mobile.shape != target.shape:
        raise ValueError(f"shape mismatch {mobile.shape} vs {target.shape}")
    mc, tc = centroid(mobile), centroid(target)
    P = mobile - mc
    Q = target - tc
    H = P.T @ Q
    U, _, Vt = np.linalg.svd(H)
    d = np.sign(np.linalg.det(Vt.T @ U.T))
    D = np.diag([1.0, 1.0, d])
    R = Vt.T @ D @ U.T
    aligned = P @ R.T + tc
    return aligned, rmsd(aligned, target)


def dihedral_angle(
    p0: np.ndarray, p1: np.ndarray, p2: np.ndarray, p3: np.ndarray
) -> float:
    """Signed dihedral angle p0-p1-p2-p3 in radians."""
    b0 = np.asarray(p1, dtype=np.float64) - np.asarray(p0, dtype=np.float64)
    b1 = np.asarray(p2, dtype=np.float64) - np.asarray(p1, dtype=np.float64)
    b2 = np.asarray(p3, dtype=np.float64) - np.asarray(p2, dtype=np.float64)
    n1 = np.cross(b0, b1)
    n2 = np.cross(b1, b2)
    b1n = b1 / np.linalg.norm(b1)
    m1 = np.cross(n1, b1n)
    x = n1 @ n2
    y = m1 @ n2
    return float(np.arctan2(y, x))
