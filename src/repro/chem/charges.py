"""Gasteiger-Marsili partial-charge assignment (PEOE).

``prepare_ligand4.py``/``prepare_receptor4.py`` add Gasteiger charges
before writing PDBQT; this module implements the classic iterative
partial equalization of orbital electronegativity. Parameters (a, b, c)
follow Gasteiger & Marsili, Tetrahedron 36 (1980), with generic fallbacks
for elements outside the original set.
"""

from __future__ import annotations

import numpy as np

from repro.chem.molecule import Molecule

# (a, b, c) electronegativity polynomial coefficients chi(Q) = a + b*Q + c*Q^2
# keyed by (element, rough hybridization bucket).
_PEOE_PARAMS: dict[str, tuple[float, float, float]] = {
    "H": (7.17, 6.24, -0.56),
    "C.3": (7.98, 9.18, 1.88),
    "C.2": (8.79, 9.32, 1.51),
    "C.ar": (8.79, 9.32, 1.51),
    "N.3": (11.54, 10.82, 1.36),
    "N.2": (12.87, 11.15, 0.85),
    "N.ar": (12.87, 11.15, 0.85),
    "O.3": (14.18, 12.92, 1.39),
    "O.2": (17.07, 13.79, 0.47),
    "S.3": (10.14, 9.13, 1.38),
    "F": (14.66, 13.85, 2.31),
    "CL": (11.00, 9.69, 1.35),
    "BR": (10.08, 8.47, 1.16),
    "I": (9.90, 7.96, 0.96),
    "P": (8.90, 8.24, 0.96),
}

# Cations that PEOE does not handle; they keep a fixed formal charge.
_FIXED_METAL_CHARGES = {
    "ZN": 2.0,
    "MG": 2.0,
    "CA": 2.0,
    "FE": 2.0,
    "MN": 2.0,
    "HG": 2.0,
    "NA": 1.0,
    "K": 1.0,
    "CU": 2.0,
    "NI": 2.0,
    "CO": 2.0,
}

_DAMPING = 0.5  # Gasteiger's (1/2)^n damping factor per iteration


def _param_key(mol: Molecule, idx: int) -> str:
    atom = mol.atoms[idx]
    el = atom.element
    if el in ("H", "F", "CL", "BR", "I", "P"):
        return el
    if el in ("C", "N"):
        if atom.aromatic:
            return f"{el}.ar"
        has_multiple = any(
            b.order >= 2 and idx in (b.i, b.j) for b in mol.bonds
        )
        return f"{el}.2" if has_multiple else f"{el}.3"
    if el == "O":
        has_double = any(b.order == 2 and idx in (b.i, b.j) for b in mol.bonds)
        return "O.2" if has_double else "O.3"
    if el == "S":
        return "S.3"
    return el


def assign_gasteiger_charges(
    mol: Molecule, iterations: int = 6
) -> np.ndarray:
    """Assign PEOE charges in-place; returns the charge vector.

    Runs ``iterations`` damped charge-transfer sweeps (6 is the classic
    choice — convergence is geometric). Metals take fixed formal charges
    and are excluded from the equalization.
    """
    n = len(mol.atoms)
    if n == 0:
        return np.zeros(0)
    charges = np.zeros(n, dtype=np.float64)
    keys = [_param_key(mol, i) for i in range(n)]
    a = np.empty(n)
    b = np.empty(n)
    c = np.empty(n)
    active = np.ones(n, dtype=bool)
    for i, key in enumerate(keys):
        el = mol.atoms[i].element
        if el in _FIXED_METAL_CHARGES:
            charges[i] = _FIXED_METAL_CHARGES[el]
            active[i] = False
            a[i], b[i], c[i] = 0.0, 0.0, 0.0
            continue
        # Generic fallback: interpolate from Pauling electronegativity.
        from repro.chem.elements import element_info

        params = _PEOE_PARAMS.get(key)
        if params is None:
            en = element_info(el).electronegativity
            params = (en * 3.0, en * 2.7, 1.0)
        a[i], b[i], c[i] = params

    if not mol.bonds:
        mol_charges_to_atoms(mol, charges)
        return charges

    edges = np.array([[bond.i, bond.j] for bond in mol.bonds], dtype=np.intp)
    # chi+ for hydrogen uses the cation electronegativity 20.02 (Gasteiger).
    chi_plus = a + b + c
    for i, atom in enumerate(mol.atoms):
        if atom.element == "H":
            chi_plus[i] = 20.02

    damp = 1.0
    for _ in range(iterations):
        damp *= _DAMPING
        chi = a + b * charges + c * charges**2
        ci, cj = edges[:, 0], edges[:, 1]
        both_active = active[ci] & active[cj]
        chi_i, chi_j = chi[ci], chi[cj]
        # Transfer from the less to the more electronegative end, scaled
        # by the donor's cation electronegativity.
        denom = np.where(chi_i < chi_j, chi_plus[ci], chi_plus[cj])
        denom = np.where(np.abs(denom) < 1e-9, 1.0, denom)
        dq = (chi_j - chi_i) / denom * damp
        dq = np.where(both_active, dq, 0.0)
        np.add.at(charges, ci, dq)
        np.subtract.at(charges, cj, dq)
    mol_charges_to_atoms(mol, charges)
    return charges


def mol_charges_to_atoms(mol: Molecule, charges: np.ndarray) -> None:
    """Copy a charge vector onto the molecule's atoms."""
    if len(charges) != len(mol.atoms):
        raise ValueError("charge vector length mismatch")
    for atom, q in zip(mol.atoms, charges):
        atom.charge = float(q)


def total_charge(mol: Molecule) -> float:
    """Sum of atomic partial charges."""
    return float(sum(a.charge for a in mol.atoms))
