"""EC2 instance catalog (the paper's Table 1).

The experiments use m3.xlarge (4 virtual cores) and m3.2xlarge (8 virtual
cores), both on Intel Xeon E5-2670 hardware, in the us-east-1 region.
Hourly prices are the 2014-era on-demand Linux rates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstanceType:
    """A VM flavor in the provider catalog."""

    name: str
    cores: int
    memory_gb: float
    processor: str
    hourly_price_usd: float
    #: Relative per-core speed (1.0 = the paper's baseline E5-2670 core).
    core_speed: float = 1.0
    #: Mean boot latency in seconds (EC2 m3 instances took ~60-120 s).
    boot_seconds: float = 90.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("instance needs at least one core")
        if self.hourly_price_usd < 0:
            raise ValueError("price cannot be negative")


M3_XLARGE = InstanceType(
    name="m3.xlarge",
    cores=4,
    memory_gb=15.0,
    processor="Intel Xeon E5-2670",
    hourly_price_usd=0.450,
    core_speed=1.0,
)

M3_2XLARGE = InstanceType(
    name="m3.2xlarge",
    cores=8,
    memory_gb=30.0,
    processor="Intel Xeon E5-2670",
    hourly_price_usd=0.900,
    # Same processor family; slightly better effective throughput thanks
    # to more memory bandwidth headroom per the paper's "more powerful
    # VMs receive long-term activities" observation.
    core_speed=1.05,
)

INSTANCE_CATALOG: dict[str, InstanceType] = {
    t.name: t for t in (M3_XLARGE, M3_2XLARGE)
}


def table1_rows() -> list[dict]:
    """The rows of the paper's Table 1 (instance type, cores, processor)."""
    return [
        {
            "instance_type": t.name,
            "cores": t.cores,
            "physical_processor": t.processor,
        }
        for t in (M3_XLARGE, M3_2XLARGE)
    ]
