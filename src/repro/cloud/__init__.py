"""Simulated cloud substrate (Amazon EC2 / S3 stand-in).

The paper runs SciCumulus on EC2 m3.xlarge/m3.2xlarge instances with an
s3fs shared file system. Offline we simulate that environment: a
provider with the same instance catalog, boot latency and hourly billing,
an object store with a latency/bandwidth cost model, a virtual cluster
with elastic scale-up/down, a discrete-event clock for the performance
experiments, and failure-injection models reproducing the paper's ~10 %
activity failure rate and the Hg "looping state" pathology.
"""

from repro.cloud.simclock import SimClock
from repro.cloud.instance import (
    INSTANCE_CATALOG,
    InstanceType,
    M3_2XLARGE,
    M3_XLARGE,
)
from repro.cloud.provider import (
    CloudProvider,
    ProviderError,
    VirtualMachine,
    VMState,
)
from repro.cloud.storage import S3ObjectStore, SharedFileSystem, StorageError
from repro.cloud.cluster import VirtualCluster
from repro.cloud.failures import ActivityFailureModel, LoopingStateModel

__all__ = [
    "SimClock",
    "InstanceType",
    "M3_XLARGE",
    "M3_2XLARGE",
    "INSTANCE_CATALOG",
    "CloudProvider",
    "VirtualMachine",
    "VMState",
    "ProviderError",
    "S3ObjectStore",
    "SharedFileSystem",
    "StorageError",
    "VirtualCluster",
    "ActivityFailureModel",
    "LoopingStateModel",
]
