"""Discrete-event simulation clock.

A minimal event-queue clock: callbacks are scheduled at absolute virtual
times and executed in order when the clock runs. Ties break by
scheduling order, so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class SimClock:
    """Virtual time source + event queue for the simulated cloud."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} < now ({self._now})")
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def advance_to(self, when: float) -> None:
        """Jump the clock forward without running events (bookkeeping)."""
        if when < self._now:
            raise ValueError(f"cannot move time backwards to {when}")
        self._now = when

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        callback()
        return True

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally stopping at ``until``).

        Returns the final virtual time.
        """
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None and until > self._now:
            self._now = until
        return self._now
