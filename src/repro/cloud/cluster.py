"""Virtual cluster: the pool of VM cores the scheduler dispatches onto.

Mirrors the paper's setup: a mix of m3.xlarge and m3.2xlarge instances
totalling a target core count (2 .. 128), with elastic ``scale_to``
for SciCumulus' adaptive execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import INSTANCE_CATALOG, InstanceType, M3_2XLARGE, M3_XLARGE
from repro.cloud.provider import CloudProvider, ProviderError, VirtualMachine, VMState


@dataclass(frozen=True)
class CoreHandle:
    """One schedulable core: (vm, index) with its relative speed."""

    vm_id: str
    core_index: int
    speed: float
    instance_type: str


class VirtualCluster:
    """Elastic pool of cores built from catalog instances.

    ``plan_mix`` chooses how a core target is met: the paper combines
    m3.xlarge (4c) and m3.2xlarge (8c); we fill with the big instances
    first and top up with the small ones, matching "up to 32 VMs /
    128 virtual cores".
    """

    def __init__(self, provider: CloudProvider, tags: dict | None = None) -> None:
        self.provider = provider
        self.tags = dict(tags or {})
        self._vms: list[VirtualMachine] = []

    @staticmethod
    def plan_mix(target_cores: int) -> list[InstanceType]:
        """Instance mix whose cores sum to >= target (greedy big-first)."""
        if target_cores < 1:
            raise ValueError("target_cores must be >= 1")
        plan: list[InstanceType] = []
        remaining = target_cores
        while remaining >= M3_2XLARGE.cores:
            plan.append(M3_2XLARGE)
            remaining -= M3_2XLARGE.cores
        while remaining > 0:
            plan.append(M3_XLARGE)
            remaining -= M3_XLARGE.cores
        return plan

    # -- elasticity -------------------------------------------------------
    def scale_to(self, target_cores: int) -> None:
        """Acquire/release VMs so active cores meet the target.

        Scale-down terminates the newest VMs first (they have the least
        billed-hour sunk cost under hourly rounding).
        """
        current = self.total_cores
        if target_cores == current:
            return
        if target_cores > current:
            deficit = target_cores - current
            for itype in self.plan_mix(deficit):
                self._vms.extend(
                    self.provider.provision(itype, 1, tags=self.tags)
                )
        else:
            for vm in sorted(
                list(self.active_vms), key=lambda v: v.launch_time, reverse=True
            ):
                if self.total_cores - vm.cores < target_cores:
                    break
                self.provider.terminate(vm.vm_id)

    def terminate_all(self) -> None:
        for vm in self.active_vms:
            self.provider.terminate(vm.vm_id)

    # -- inspection --------------------------------------------------------
    @property
    def active_vms(self) -> list[VirtualMachine]:
        return [vm for vm in self._vms if vm.state != VMState.TERMINATED]

    @property
    def total_cores(self) -> int:
        return sum(vm.cores for vm in self.active_vms)

    def cores(self) -> list[CoreHandle]:
        """Flat list of schedulable cores across active VMs."""
        handles: list[CoreHandle] = []
        for vm in self.active_vms:
            for k in range(vm.cores):
                handles.append(
                    CoreHandle(
                        vm_id=vm.vm_id,
                        core_index=k,
                        speed=vm.instance_type.core_speed,
                        instance_type=vm.instance_type.name,
                    )
                )
        return handles

    def cost(self) -> float:
        """Bill across this cluster's VMs (terminated ones included)."""
        now = self.provider.clock.now
        return sum(vm.cost(now) for vm in self._vms)
