"""Failure injection: the paper's two observed pathologies.

* ~10 % of activity executions fail and must be re-submitted
  (SciCumulus' re-execution mechanism handles them).
* Activities on receptors containing Hg enter a *looping state*: they
  never finish and never emit an error — only a watchdog (or the routine
  SciCumulus added after the discovery) stops them.

Both models are deterministic functions of (activation key, seed) so
simulated runs are reproducible.
"""

from __future__ import annotations

import hashlib


def _unit_hash(*parts: object) -> float:
    """Stable hash of the parts mapped to [0, 1)."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class ActivityFailureModel:
    """Bernoulli failure per (activation, attempt) with a fixed rate."""

    def __init__(self, rate: float = 0.10, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.seed = seed

    def fails(self, activation_key: str, attempt: int = 0) -> bool:
        """Whether this attempt of this activation fails.

        Different attempts re-roll, so re-execution eventually succeeds —
        the paper's recovery path.
        """
        return _unit_hash("fail", self.seed, activation_key, attempt) < self.rate


class LoopingStateModel:
    """Detects activations that would hang (Hg receptors, bad ligands).

    ``would_loop`` is consulted *before* dispatch once the paper's
    Hg-recognition routine is enabled; with the routine disabled the
    engine only notices via the watchdog timeout.
    """

    def __init__(self, *, hg_loops: bool = True, extra_looping_keys: set[str] | None = None):
        self.hg_loops = hg_loops
        self.extra_looping_keys = set(extra_looping_keys or ())

    def would_loop(self, activation_key: str, *, receptor_has_hg: bool = False) -> bool:
        if self.hg_loops and receptor_has_hg:
            return True
        return activation_key in self.extra_looping_keys
