"""S3-style object store and the s3fs-like shared file system.

SciCumulus stages activity inputs/outputs through a FUSE file system
backed by S3. The simulation models the performance-relevant behaviour:
per-operation latency plus bandwidth-limited transfer time, and full
read-after-write consistency (sufficient for the workflow's sequential
producer-consumer file passing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.simclock import SimClock


class StorageError(KeyError):
    """Raised for missing keys / invalid paths."""


@dataclass
class TransferStats:
    """Aggregate I/O accounting (used by the performance model)."""

    puts: int = 0
    gets: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    total_latency_seconds: float = 0.0


class S3ObjectStore:
    """Flat key -> bytes store with a latency/bandwidth cost model.

    ``op_latency`` models the per-request round trip (~50 ms to S3 from
    EC2 in-region); ``bandwidth_bps`` the sustained transfer rate.
    Operations return the simulated seconds they cost; callers in the
    DES engine add that to activity service time.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        op_latency: float = 0.05,
        bandwidth_bps: float = 100e6 / 8,
    ) -> None:
        if op_latency < 0 or bandwidth_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth positive")
        self.clock = clock or SimClock()
        self.op_latency = op_latency
        self.bandwidth_bps = bandwidth_bps
        self._objects: dict[str, bytes] = {}
        self.stats = TransferStats()

    def _cost(self, nbytes: int) -> float:
        seconds = self.op_latency + nbytes / self.bandwidth_bps
        self.stats.total_latency_seconds += seconds
        return seconds

    def put(self, key: str, data: bytes | str) -> float:
        """Store an object; returns the simulated transfer seconds."""
        if not key:
            raise StorageError("empty key")
        payload = data.encode() if isinstance(data, str) else bytes(data)
        self._objects[key] = payload
        self.stats.puts += 1
        self.stats.bytes_in += len(payload)
        return self._cost(len(payload))

    def get(self, key: str) -> tuple[bytes, float]:
        """Fetch an object; returns (data, simulated seconds)."""
        try:
            payload = self._objects[key]
        except KeyError:
            raise StorageError(f"no such object {key!r}") from None
        self.stats.gets += 1
        self.stats.bytes_out += len(payload)
        return payload, self._cost(len(payload))

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise StorageError(f"no such object {key!r}")
        del self._objects[key]

    def exists(self, key: str) -> bool:
        return key in self._objects

    def list(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def size(self, key: str) -> int:
        try:
            return len(self._objects[key])
        except KeyError:
            raise StorageError(f"no such object {key!r}") from None

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())


class SharedFileSystem:
    """s3fs stand-in: POSIX-ish paths over the object store.

    The workflow engine reads/writes activity files through this facade
    so the experiment's 600 GB-per-run data volume flows through one
    accounted channel.
    """

    def __init__(self, store: S3ObjectStore | None = None, root: str = "/root/exp") -> None:
        self.store = store or S3ObjectStore()
        self.root = root.rstrip("/")

    def _key(self, path: str) -> str:
        if not path:
            raise StorageError("empty path")
        if not path.startswith("/"):
            path = f"{self.root}/{path}"
        return path

    def write_text(self, path: str, text: str) -> float:
        return self.store.put(self._key(path), text)

    def read_text(self, path: str) -> str:
        data, _ = self.store.get(self._key(path))
        return data.decode()

    def write_bytes(self, path: str, data: bytes) -> float:
        return self.store.put(self._key(path), data)

    def read_bytes(self, path: str) -> bytes:
        data, _ = self.store.get(self._key(path))
        return data

    def exists(self, path: str) -> bool:
        return self.store.exists(self._key(path))

    def listdir(self, path: str) -> list[str]:
        prefix = self._key(path).rstrip("/") + "/"
        return self.store.list(prefix)

    def remove(self, path: str) -> None:
        self.store.delete(self._key(path))

    def file_size(self, path: str) -> int:
        return self.store.size(self._key(path))
