"""Simulated EC2-style provider: provision, terminate, describe, bill.

VMs transition PENDING -> RUNNING after the instance type's boot latency
(on the shared :class:`~repro.cloud.simclock.SimClock`), and accumulate
cost by the hour (partial hours round up, as EC2 billed in 2014).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum

from repro.cloud.instance import INSTANCE_CATALOG, InstanceType
from repro.cloud.simclock import SimClock


class ProviderError(RuntimeError):
    """Raised for invalid provider API usage."""


class VMState(Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass
class VirtualMachine:
    """One provisioned instance."""

    vm_id: str
    instance_type: InstanceType
    launch_time: float
    state: VMState = VMState.PENDING
    ready_time: float | None = None
    terminate_time: float | None = None
    tags: dict = field(default_factory=dict)

    @property
    def cores(self) -> int:
        return self.instance_type.cores

    def billed_hours(self, now: float) -> int:
        """Whole billed hours (partial hours round up)."""
        end = self.terminate_time if self.terminate_time is not None else now
        elapsed = max(0.0, end - self.launch_time)
        return max(1, math.ceil(elapsed / 3600.0)) if elapsed > 0 else 0

    def cost(self, now: float) -> float:
        return self.billed_hours(now) * self.instance_type.hourly_price_usd


class CloudProvider:
    """The EC2 stand-in.

    Parameters
    ----------
    clock:
        Shared simulation clock. Boot latency and billing use it.
    region:
        Cosmetic; the paper uses us-east-1 (N. Virginia).
    max_instances:
        Account limit; provisioning beyond it raises, mirroring EC2
        instance-limit errors.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        region: str = "us-east-1",
        max_instances: int = 512,
    ) -> None:
        self.clock = clock or SimClock()
        self.region = region
        self.max_instances = max_instances
        self._vms: dict[str, VirtualMachine] = {}
        self._ids = itertools.count(1)

    # -- API -------------------------------------------------------------
    def provision(
        self,
        instance_type: str | InstanceType,
        count: int = 1,
        tags: dict | None = None,
    ) -> list[VirtualMachine]:
        """Launch ``count`` instances; they become RUNNING after boot."""
        if count < 1:
            raise ProviderError("count must be >= 1")
        if isinstance(instance_type, str):
            try:
                instance_type = INSTANCE_CATALOG[instance_type]
            except KeyError:
                raise ProviderError(
                    f"unknown instance type {instance_type!r}; catalog has "
                    f"{sorted(INSTANCE_CATALOG)}"
                ) from None
        running = sum(
            1 for vm in self._vms.values() if vm.state != VMState.TERMINATED
        )
        if running + count > self.max_instances:
            raise ProviderError(
                f"instance limit exceeded ({running} running, "
                f"{count} requested, limit {self.max_instances})"
            )
        out = []
        for _ in range(count):
            vm = VirtualMachine(
                vm_id=f"i-{next(self._ids):08x}",
                instance_type=instance_type,
                launch_time=self.clock.now,
                tags=dict(tags or {}),
            )
            self._vms[vm.vm_id] = vm

            def make_ready(v: VirtualMachine = vm) -> None:
                if v.state == VMState.PENDING:
                    v.state = VMState.RUNNING
                    v.ready_time = self.clock.now

            self.clock.schedule(instance_type.boot_seconds, make_ready)
            out.append(vm)
        return out

    def terminate(self, vm_id: str) -> VirtualMachine:
        vm = self._get(vm_id)
        if vm.state == VMState.TERMINATED:
            raise ProviderError(f"{vm_id} already terminated")
        vm.state = VMState.TERMINATED
        vm.terminate_time = self.clock.now
        return vm

    def describe(self, vm_id: str) -> VirtualMachine:
        return self._get(vm_id)

    def instances(self, state: VMState | None = None) -> list[VirtualMachine]:
        vms = list(self._vms.values())
        if state is not None:
            vms = [vm for vm in vms if vm.state == state]
        return vms

    def running_cores(self) -> int:
        return sum(
            vm.cores for vm in self._vms.values() if vm.state == VMState.RUNNING
        )

    def total_cost(self) -> float:
        """Accumulated bill for every instance ever launched."""
        return sum(vm.cost(self.clock.now) for vm in self._vms.values())

    def _get(self, vm_id: str) -> VirtualMachine:
        try:
            return self._vms[vm_id]
        except KeyError:
            raise ProviderError(f"no such instance {vm_id!r}") from None
