"""Short molecular-dynamics refinement trajectories.

Velocity-Verlet integration of the ligand in the rigid receptor field,
with a Langevin thermostat. Intended use is pose refinement: a few
hundred femtoseconds of gently thermostatted motion followed by
re-minimization shakes poses out of shallow artifacts.

Units: kcal/mol, Angstrom, atomic mass units; the time unit follows as
~48.9 fs, so ``dt=0.02`` is roughly 1 fs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.molecule import Molecule
from repro.docking.scoring_vina import VinaScorer
from repro.dynamics.forcefield_intra import IntraFF

#: Boltzmann constant in kcal/mol/K.
KB = 0.0019872041


@dataclass
class MDConfig:
    steps: int = 200
    dt: float = 0.02  # ~1 fs in internal units
    temperature: float = 300.0  # Kelvin
    friction: float = 0.5  # Langevin collision frequency (1/time unit)
    field_weight: float = 5.0
    fd_step: float = 2e-3
    sample_every: int = 20

    def __post_init__(self) -> None:
        if self.steps < 1 or self.dt <= 0:
            raise ValueError("steps must be >= 1 and dt positive")
        if self.temperature < 0 or self.friction < 0:
            raise ValueError("temperature and friction must be non-negative")


@dataclass
class MDResult:
    coords: np.ndarray
    potential_energies: list[float] = field(default_factory=list)
    temperatures: list[float] = field(default_factory=list)
    frames: list[np.ndarray] = field(default_factory=list)

    @property
    def final_potential(self) -> float:
        return self.potential_energies[-1]


def _forces(
    coords: np.ndarray,
    ff: IntraFF,
    scorer: VinaScorer | None,
    field_weight: float,
    fd_step: float,
) -> tuple[float, np.ndarray]:
    energy, grad = ff.energy_gradient(coords)
    if scorer is not None:
        e_field = scorer.intermolecular(coords) + scorer.outside_penalty(coords)
        energy += field_weight * e_field
        g_field = np.zeros_like(coords)
        for i in range(coords.shape[0]):
            for axis in range(3):
                plus = coords.copy()
                minus = coords.copy()
                plus[i, axis] += fd_step
                minus[i, axis] -= fd_step
                g_field[i, axis] = (
                    (scorer.intermolecular(plus) + scorer.outside_penalty(plus))
                    - (scorer.intermolecular(minus) + scorer.outside_penalty(minus))
                ) / (2 * fd_step)
        grad = grad + field_weight * g_field
    return energy, -grad


def run_md(
    ligand: Molecule,
    start_coords: np.ndarray,
    scorer: VinaScorer | None = None,
    config: MDConfig | None = None,
    rng: np.random.Generator | None = None,
) -> MDResult:
    """Integrate a short Langevin trajectory from ``start_coords``."""
    cfg = config or MDConfig()
    rng = rng or np.random.default_rng(0)
    coords = np.asarray(start_coords, dtype=np.float64).copy()
    n = len(ligand.atoms)
    if coords.shape != (n, 3):
        raise ValueError(f"expected coords shape ({n}, 3), got {coords.shape}")
    ff = IntraFF.from_molecule(ligand)
    masses = ff.masses[:, None]

    # Maxwell-Boltzmann initial velocities.
    sigma_v = np.sqrt(KB * cfg.temperature / ff.masses)[:, None]
    velocities = rng.normal(size=coords.shape) * sigma_v

    energy, forces = _forces(coords, ff, scorer, cfg.field_weight, cfg.fd_step)
    result = MDResult(coords=coords)
    c1 = np.exp(-cfg.friction * cfg.dt)
    c2 = np.sqrt(1.0 - c1 * c1)

    for step in range(cfg.steps):
        # Velocity Verlet with Langevin (BAOAB-like splitting).
        velocities += 0.5 * cfg.dt * forces / masses
        coords += 0.5 * cfg.dt * velocities
        # Ornstein-Uhlenbeck kick.
        velocities = c1 * velocities + c2 * sigma_v * rng.normal(size=coords.shape)
        coords += 0.5 * cfg.dt * velocities
        energy, forces = _forces(coords, ff, scorer, cfg.field_weight, cfg.fd_step)
        velocities += 0.5 * cfg.dt * forces / masses

        if (step + 1) % cfg.sample_every == 0 or step == cfg.steps - 1:
            kinetic = float(0.5 * (ff.masses * (velocities**2).sum(axis=1)).sum())
            dof = max(1, 3 * n - 6)
            temp = 2.0 * kinetic / (dof * KB)
            result.potential_energies.append(float(energy))
            result.temperatures.append(temp)
            result.frames.append(coords.copy())

    result.coords = coords
    return result
