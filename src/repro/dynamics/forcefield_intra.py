"""Bonded intramolecular force field for minimization and MD.

Energy model over a ligand's Cartesian coordinates::

    E = sum_bonds  k_b (r - r0)^2
      + sum_angles k_a (theta - theta0)^2
      + sum_{nonbonded pairs} LJ(r)        (1-4 and beyond, softened)

Reference bond lengths/angles come from the input geometry (the
generator/crystal pose defines the topology's equilibrium), so the field
restrains covalent structure while letting torsions relax — exactly what
pose refinement needs. Gradients are analytic and fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule

#: Bond stretching constant, kcal/mol/A^2 (generic single-bond scale).
K_BOND = 300.0
#: Angle bending constant, kcal/mol/rad^2.
K_ANGLE = 60.0
#: Softened LJ parameters for nonbonded self-avoidance.
LJ_EPS = 0.1
LJ_SIGMA = 3.2


@dataclass
class IntraFF:
    """Precomputed topology tables bound to one ligand."""

    bonds: np.ndarray  # (B, 2) indices
    bond_r0: np.ndarray  # (B,)
    angles: np.ndarray  # (A, 3) indices i-j-k with j the apex
    angle_t0: np.ndarray  # (A,)
    nb_pairs: np.ndarray  # (P, 2) indices >= 3 bonds apart
    masses: np.ndarray  # (N,)

    @classmethod
    def from_molecule(cls, mol: Molecule) -> "IntraFF":
        if len(mol.atoms) < 2:
            raise ValueError("force field needs at least two atoms")
        coords = mol.coords
        bonds = np.array([[b.i, b.j] for b in mol.bonds], dtype=np.intp)
        if bonds.size == 0:
            raise ValueError("molecule has no bonds; perceive bonds first")
        bond_r0 = np.linalg.norm(coords[bonds[:, 0]] - coords[bonds[:, 1]], axis=1)
        # Angles: every pair of distinct neighbors around an apex atom.
        angle_list: list[tuple[int, int, int]] = []
        for j in range(len(mol.atoms)):
            neigh = sorted(mol.neighbors(j))
            for a in range(len(neigh)):
                for b in range(a + 1, len(neigh)):
                    angle_list.append((neigh[a], j, neigh[b]))
        angles = np.array(angle_list, dtype=np.intp).reshape(-1, 3)
        angle_t0 = (
            cls._angles(coords, angles) if len(angle_list) else np.zeros(0)
        )
        # Nonbonded: >= 3 bonds apart (reuse the scorer's BFS rule).
        from repro.docking.scoring_ad4 import AD4Scorer

        nb = AD4Scorer._nonbonded_pairs(mol)
        masses = np.array([a.mass for a in mol.atoms])
        return cls(
            bonds=bonds,
            bond_r0=bond_r0,
            angles=angles,
            angle_t0=angle_t0,
            nb_pairs=nb,
            masses=masses,
        )

    # -- geometry helpers ---------------------------------------------------
    @staticmethod
    def _angles(coords: np.ndarray, angles: np.ndarray) -> np.ndarray:
        v1 = coords[angles[:, 0]] - coords[angles[:, 1]]
        v2 = coords[angles[:, 2]] - coords[angles[:, 1]]
        n1 = np.linalg.norm(v1, axis=1)
        n2 = np.linalg.norm(v2, axis=1)
        cos = np.einsum("ij,ij->i", v1, v2) / np.maximum(n1 * n2, 1e-12)
        return np.arccos(np.clip(cos, -1.0, 1.0))

    # -- energy + gradient -----------------------------------------------------
    def energy(self, coords: np.ndarray) -> float:
        return self.energy_gradient(coords)[0]

    def energy_gradient(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        """Total bonded energy and its analytic Cartesian gradient."""
        coords = np.asarray(coords, dtype=np.float64)
        grad = np.zeros_like(coords)
        energy = 0.0

        # Bonds.
        bi, bj = self.bonds[:, 0], self.bonds[:, 1]
        d = coords[bi] - coords[bj]
        r = np.maximum(np.linalg.norm(d, axis=1), 1e-9)
        dr = r - self.bond_r0
        energy += float(K_BOND * (dr**2).sum())
        f = (2.0 * K_BOND * dr / r)[:, None] * d
        np.add.at(grad, bi, f)
        np.subtract.at(grad, bj, f)

        # Angles (finite-difference-free analytic form).
        if len(self.angles):
            ai, aj, ak = self.angles[:, 0], self.angles[:, 1], self.angles[:, 2]
            v1 = coords[ai] - coords[aj]
            v2 = coords[ak] - coords[aj]
            n1 = np.maximum(np.linalg.norm(v1, axis=1), 1e-9)
            n2 = np.maximum(np.linalg.norm(v2, axis=1), 1e-9)
            cos = np.clip(np.einsum("ij,ij->i", v1, v2) / (n1 * n2), -1.0, 1.0)
            theta = np.arccos(cos)
            dt = theta - self.angle_t0
            energy += float(K_ANGLE * (dt**2).sum())
            # d(theta)/d(cos) = -1/sin(theta)
            sin = np.maximum(np.sqrt(1.0 - cos**2), 1e-6)
            coeff = 2.0 * K_ANGLE * dt * (-1.0 / sin)
            dcos_d1 = (v2 / (n1 * n2)[:, None]) - (cos / n1**2)[:, None] * v1
            dcos_d2 = (v1 / (n1 * n2)[:, None]) - (cos / n2**2)[:, None] * v2
            g1 = coeff[:, None] * dcos_d1
            g2 = coeff[:, None] * dcos_d2
            np.add.at(grad, ai, g1)
            np.add.at(grad, ak, g2)
            np.subtract.at(grad, aj, g1 + g2)

        # Nonbonded soft LJ.
        if len(self.nb_pairs):
            pi, pj = self.nb_pairs[:, 0], self.nb_pairs[:, 1]
            d = coords[pi] - coords[pj]
            r = np.maximum(np.linalg.norm(d, axis=1), 0.5)
            sr6 = (LJ_SIGMA / r) ** 6
            energy += float((4.0 * LJ_EPS * (sr6**2 - sr6)).sum())
            dEdr = 4.0 * LJ_EPS * (-12.0 * sr6**2 + 6.0 * sr6) / r
            f = (dEdr / r)[:, None] * d
            np.add.at(grad, pi, f)
            np.subtract.at(grad, pj, f)

        return energy, grad
