"""Cartesian energy minimization of a docked pose.

Minimizes bonded(ligand) + intermolecular(receptor field) over all
ligand coordinates with L-BFGS-B. The receptor field is the Vina scorer
(optionally grid-cached), whose gradient is finite-differenced per atom
in a vectorized batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from repro.chem.molecule import Molecule
from repro.docking.scoring_vina import VinaScorer
from repro.dynamics.forcefield_intra import IntraFF


@dataclass
class MinimizationResult:
    coords: np.ndarray
    initial_energy: float
    final_energy: float
    iterations: int
    converged: bool

    @property
    def energy_drop(self) -> float:
        return self.initial_energy - self.final_energy


def minimize_pose(
    ligand: Molecule,
    start_coords: np.ndarray,
    scorer: VinaScorer,
    *,
    max_iterations: int = 60,
    field_weight: float = 5.0,
    fd_step: float = 1e-3,
) -> MinimizationResult:
    """Relax a pose in the receptor field.

    ``field_weight`` balances the kcal/mol-scale receptor interaction
    against the stiffer bonded terms so minimization improves contacts
    without tearing bonds.
    """
    start = np.asarray(start_coords, dtype=np.float64)
    n = len(ligand.atoms)
    if start.shape != (n, 3):
        raise ValueError(f"expected coords shape ({n}, 3), got {start.shape}")
    ff = IntraFF.from_molecule(ligand)

    def field_energy(coords: np.ndarray) -> float:
        return scorer.intermolecular(coords) + scorer.outside_penalty(coords)

    def field_gradient(coords: np.ndarray) -> np.ndarray:
        """Per-atom central differences (6N scorer calls; ligands are small)."""
        grad = np.zeros_like(coords)
        for i in range(coords.shape[0]):
            for axis in range(3):
                plus = coords.copy()
                minus = coords.copy()
                plus[i, axis] += fd_step
                minus[i, axis] -= fd_step
                grad[i, axis] = (field_energy(plus) - field_energy(minus)) / (
                    2 * fd_step
                )
        return grad

    def objective(x: np.ndarray) -> tuple[float, np.ndarray]:
        coords = x.reshape(n, 3)
        e_intra, g_intra = ff.energy_gradient(coords)
        e_field = field_energy(coords)
        g_field = field_gradient(coords)
        total = e_intra + field_weight * e_field
        return total, (g_intra + field_weight * g_field).ravel()

    e0 = objective(start.ravel())[0]
    res = scipy_minimize(
        objective,
        start.ravel(),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "ftol": 1e-8},
    )
    final = res.x.reshape(n, 3)
    return MinimizationResult(
        coords=final,
        initial_energy=float(e0),
        final_energy=float(res.fun),
        iterations=int(res.nit),
        converged=bool(res.success),
    )
