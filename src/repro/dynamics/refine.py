"""The redocking / refinement protocol of the paper's §V.D.

Given a hit from the screening campaign (a receptor-ligand pair whose
SciDock FEB looked promising), :func:`redock` re-docks it with a larger
search budget (and optionally alternative ligand input conformations),
and :func:`refine_pose` relaxes the resulting pose by minimization plus
a short MD anneal before re-scoring. The re-scored affinity either
*reinforces* the hit or exposes it as a docking artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.generate import generate_ligand, generate_receptor
from repro.chem.geometry import rmsd
from repro.docking.box import GridBox
from repro.docking.conformation import DockingResult
from repro.docking.mc import ILSConfig
from repro.docking.prepare import prepare_ligand, prepare_receptor
from repro.docking.scoring_vina import VinaScorer, build_vina_maps
from repro.docking.vina import Vina, VinaParameters
from repro.dynamics.md import MDConfig, run_md
from repro.dynamics.minimize import minimize_pose

#: Deeper-than-screening Vina budget used for redocking.
REDOCK_VINA = VinaParameters(
    exhaustiveness=4,
    ils=ILSConfig(restarts=3, steps_per_restart=5, bfgs_iterations=12),
)


@dataclass
class RefinementResult:
    """Outcome of refine_pose / redock on one pair."""

    receptor_id: str
    ligand_id: str
    screening_feb: float | None
    redock_feb: float
    refined_feb: float
    pose_shift_rmsd: float
    reinforced: bool

    def summary(self) -> str:
        verdict = "REINFORCED" if self.reinforced else "ARTIFACT?"
        return (
            f"{self.receptor_id}-{self.ligand_id}: screening "
            f"{self.screening_feb if self.screening_feb is not None else 'n/a'} -> "
            f"redock {self.redock_feb:+.2f} -> refined {self.refined_feb:+.2f} "
            f"kcal/mol (pose moved {self.pose_shift_rmsd:.2f} A) [{verdict}]"
        )


def redock(
    receptor_id: str,
    ligand_id: str,
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    params: VinaParameters | None = None,
    alternative_conformation: bool = False,
) -> tuple[DockingResult, VinaScorer, object]:
    """Re-dock one pair with a deeper budget; returns (result, scorer, prep).

    ``alternative_conformation`` regenerates the ligand under a rotated
    input frame — the paper's "(i) testing other receptor or ligand
    conformations".
    """
    receptor = generate_receptor(receptor_id)
    ligand = generate_ligand(ligand_id)
    if alternative_conformation:
        # Rotate the input geometry; the torsion tree and search then
        # start from a genuinely different conformer basin.
        from repro.chem.geometry import random_rotation_matrix

        rot = random_rotation_matrix(np.random.default_rng(99))
        ligand.set_coords(ligand.coords @ rot.T)
    rp = prepare_receptor(receptor)
    lp = prepare_ligand(ligand)
    box = GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=0.6,
    )
    maps = build_vina_maps(rp.molecule, box)
    engine = Vina(rp, box, params or REDOCK_VINA, maps=maps)
    results = [engine.dock(lp, seed=s) for s in seeds]
    best = min(results, key=lambda r: r.best_energy)
    scorer = VinaScorer(rp.molecule, lp.molecule, box, maps=maps)
    return best, scorer, lp


def refine_pose(
    receptor_id: str,
    ligand_id: str,
    *,
    screening_feb: float | None = None,
    md_steps: int = 100,
    seeds: tuple[int, ...] = (0, 1, 2),
    reinforce_tolerance: float = 1.5,
) -> RefinementResult:
    """Redock + minimize + MD anneal + re-minimize + re-score one hit.

    ``reinforced`` is True when the refined affinity stays within
    ``reinforce_tolerance`` kcal/mol of the redocked one (i.e. the pose
    survives relaxation instead of collapsing).
    """
    result, scorer, lp = redock(receptor_id, ligand_id, seeds=seeds)
    pose = result.best_pose
    ligand = lp.molecule

    # 1. Minimize straight from the docked pose.
    m1 = minimize_pose(ligand, pose.coords, scorer, max_iterations=40)
    # 2. Short thermostatted MD to escape shallow artifacts.
    md = run_md(
        ligand,
        m1.coords,
        scorer,
        MDConfig(steps=md_steps, sample_every=max(1, md_steps // 4)),
        rng=np.random.default_rng(7),
    )
    # 3. Re-minimize and re-score with the docking scorer.
    m2 = minimize_pose(ligand, md.coords, scorer, max_iterations=40)
    refined_feb = scorer.total(m2.coords)
    shift = rmsd(m2.coords, pose.coords)
    return RefinementResult(
        receptor_id=receptor_id,
        ligand_id=ligand_id,
        screening_feb=screening_feb,
        redock_feb=result.best_energy,
        refined_feb=refined_feb,
        pose_shift_rmsd=shift,
        reinforced=refined_feb <= result.best_energy + reinforce_tolerance,
    )
