"""Pose refinement substrate: minimization, MD, and redocking.

The paper's biological analysis ends with: "these receptor-ligand
associations should be refined and reinforced using alternative
approaches, such as: (i) testing other receptor or ligand conformations;
(ii) redocking, molecular dynamics or QSAR analyses" (§V.D). This
package implements (i) and (ii):

* :mod:`repro.dynamics.forcefield_intra` — a bonded force field (harmonic
  bonds/angles + LJ nonbonded) over the ligand;
* :mod:`repro.dynamics.minimize` — Cartesian energy minimization of a
  docked pose inside the receptor field;
* :mod:`repro.dynamics.md` — velocity-Verlet dynamics with a Langevin
  thermostat for short refinement trajectories;
* :mod:`repro.dynamics.refine` — the redocking protocol: re-dock top
  hits with a larger budget and/or alternative ligand conformations,
  then minimize and re-score.
"""

from repro.dynamics.forcefield_intra import IntraFF
from repro.dynamics.minimize import MinimizationResult, minimize_pose
from repro.dynamics.md import MDConfig, MDResult, run_md
from repro.dynamics.refine import RefinementResult, redock, refine_pose

__all__ = [
    "IntraFF",
    "minimize_pose",
    "MinimizationResult",
    "MDConfig",
    "MDResult",
    "run_md",
    "redock",
    "refine_pose",
    "RefinementResult",
]
