"""Orthographic SVG / ASCII rendering of docked complexes.

No matplotlib: geometry is projected with numpy and written as SVG
primitives, so the artifact regenerates anywhere the library runs.
"""

from __future__ import annotations

import numpy as np

from repro.chem.molecule import Molecule
from repro.docking.box import GridBox

#: CPK-ish fill colors per element.
_ELEMENT_COLORS = {
    "C": "#909090",
    "N": "#3050f8",
    "O": "#ff0d0d",
    "S": "#ffff30",
    "H": "#e8e8e8",
    "P": "#ff8000",
    "F": "#90e050",
    "CL": "#1ff01f",
    "BR": "#a62929",
    "I": "#940094",
    "FE": "#e06633",
    "ZN": "#7d80b0",
    "MG": "#8aff00",
    "CA": "#3dff00",
    "HG": "#b8b8d0",
}


def project_orthographic(
    coords: np.ndarray, view_axis: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Project 3D coordinates onto the plane orthogonal to ``view_axis``.

    Returns (xy, depth): the 2-D positions and the depth along the view
    axis (larger = closer to the viewer).
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("expected (N, 3) coordinates")
    if view_axis not in (0, 1, 2):
        raise ValueError("view_axis must be 0, 1 or 2")
    keep = [a for a in range(3) if a != view_axis]
    return coords[:, keep], coords[:, view_axis]


def render_complex_svg(
    receptor: Molecule,
    ligand: Molecule,
    box: GridBox | None = None,
    *,
    width: int = 640,
    view_axis: int = 2,
    title: str = "",
) -> str:
    """Render receptor (muted) + ligand (highlighted) + box as SVG text."""
    if len(receptor.atoms) == 0 or len(ligand.atoms) == 0:
        raise ValueError("receptor and ligand must be non-empty")
    rec_xy, rec_z = project_orthographic(receptor.coords, view_axis)
    lig_xy, lig_z = project_orthographic(ligand.coords, view_axis)
    all_xy = np.vstack([rec_xy, lig_xy])
    lo = all_xy.min(axis=0) - 3.0
    hi = all_xy.max(axis=0) + 3.0
    span = hi - lo
    scale = (width - 20) / span.max()
    height = int(span[1] * scale) + 20

    def to_px(xy: np.ndarray) -> np.ndarray:
        p = (xy - lo) * scale + 10
        p[:, 1] = height - p[:, 1]  # flip y for SVG
        return p

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#10131a"/>',
    ]
    if title:
        parts.append(
            f'<text x="12" y="20" fill="#e6e6e6" font-family="monospace" '
            f'font-size="14">{title}</text>'
        )
    # Grid box (the paper's "white box").
    if box is not None:
        keep = [a for a in range(3) if a != view_axis]
        b_lo = to_px(box.minimum[keep][None, :])[0]
        b_hi = to_px(box.maximum[keep][None, :])[0]
        x, y = min(b_lo[0], b_hi[0]), min(b_lo[1], b_hi[1])
        w, h = abs(b_hi[0] - b_lo[0]), abs(b_hi[1] - b_lo[1])
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            'fill="none" stroke="#ffffff" stroke-width="1.5" '
            'stroke-dasharray="6 3"/>'
        )
    # Receptor: painter's algorithm, muted palette, depth-scaled radii.
    rec_px = to_px(rec_xy)
    order = np.argsort(rec_z)
    z_lo, z_hi = rec_z.min(), max(rec_z.max(), rec_z.min() + 1e-9)
    for i in order.tolist():
        depth = (rec_z[i] - z_lo) / (z_hi - z_lo)
        r = 1.2 + 1.3 * depth
        color = _ELEMENT_COLORS.get(receptor.atoms[i].element, "#b0b0b0")
        parts.append(
            f'<circle cx="{rec_px[i, 0]:.1f}" cy="{rec_px[i, 1]:.1f}" '
            f'r="{r:.2f}" fill="{color}" fill-opacity="{0.25 + 0.3 * depth:.2f}"/>'
        )
    # Ligand bonds then atoms, full-saturation on top.
    lig_px = to_px(lig_xy)
    for b in ligand.bonds:
        parts.append(
            f'<line x1="{lig_px[b.i, 0]:.1f}" y1="{lig_px[b.i, 1]:.1f}" '
            f'x2="{lig_px[b.j, 0]:.1f}" y2="{lig_px[b.j, 1]:.1f}" '
            'stroke="#ffd24d" stroke-width="2"/>'
        )
    for i, a in enumerate(ligand.atoms):
        color = _ELEMENT_COLORS.get(a.element, "#ffd24d")
        parts.append(
            f'<circle cx="{lig_px[i, 0]:.1f}" cy="{lig_px[i, 1]:.1f}" r="4" '
            f'fill="{color}" stroke="#ffd24d" stroke-width="1.2"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def ascii_complex(
    receptor: Molecule,
    ligand: Molecule,
    *,
    width: int = 72,
    height: int = 28,
    view_axis: int = 2,
) -> str:
    """Terminal depiction: receptor as '.'/':' by depth, ligand as '#'."""
    if width < 10 or height < 5:
        raise ValueError("canvas too small")
    rec_xy, rec_z = project_orthographic(receptor.coords, view_axis)
    lig_xy, _ = project_orthographic(ligand.coords, view_axis)
    all_xy = np.vstack([rec_xy, lig_xy])
    lo = all_xy.min(axis=0)
    span = np.maximum(all_xy.max(axis=0) - lo, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def plot(xy: np.ndarray, chars) -> None:
        cols = np.clip(((xy[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((xy[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int), 0, height - 1)
        for k, (r, c) in enumerate(zip(rows.tolist(), cols.tolist())):
            canvas[height - 1 - r][c] = chars(k)

    z_mid = float(np.median(rec_z))
    plot(rec_xy, lambda k: ":" if rec_z[k] > z_mid else ".")
    plot(lig_xy, lambda k: "#")
    return "\n".join("".join(row) for row in canvas) + "\n"
