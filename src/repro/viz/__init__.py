"""Complex visualization (the paper's Figure 12), dependency-free.

Renders a receptor-ligand complex the way the paper's screenshot does —
receptor atoms, the docked ligand highlighted, the grid box drawn around
the binding site — as an SVG file and as a quick ASCII depth view for
terminals.
"""

from repro.viz.render import (
    ascii_complex,
    render_complex_svg,
    project_orthographic,
)

__all__ = ["render_complex_svg", "ascii_complex", "project_orthographic"]
