"""repro: SciDock / SciCumulus reproduction.

A from-scratch Python implementation of the system described in
"Exploring Large Scale Receptor-Ligand Pairs in Molecular Docking
Workflows in HPC Clouds" (IPPS 2014): the SciDock virtual-screening
workflow, a SciCumulus-like cloud workflow engine with PROV-Wf
provenance, reimplemented AutoDock 4 / AutoDock Vina docking engines,
and a simulated EC2/S3 substrate for the scalability experiments.

Package map (see docs/ARCHITECTURE.md):

* :mod:`repro.chem` — molecular toolkit and synthetic structures
* :mod:`repro.docking` — AutoGrid, AD4, Vina, preparation, flexibility
* :mod:`repro.cloud` — simulated provider, storage, clock, failures
* :mod:`repro.workflow` — the SWfMS: algebra, engines, scheduling, faults
* :mod:`repro.provenance` — PROV-Wf store and the paper's queries
* :mod:`repro.perf` — cost model, calibration, scalability experiments
* :mod:`repro.core` — SciDock itself (activities, datasets, analysis)
* :mod:`repro.dynamics`, :mod:`repro.qsar`, :mod:`repro.viz` — the
  paper's refinement/future-work extensions
"""

__version__ = "1.0.0"
