"""The eight SciDock activities (paper Fig. 1), as real activations.

Each function has the workflow-engine signature ``(tuple, context) ->
[tuple]`` and mirrors one command of the original pipeline:

1. ``babel``            — SDF -> Sybyl MOL2 ligand conversion.
2. ``prepare_ligand``   — MGLTools ``prepare_ligand4.py`` -> ligand PDBQT.
3. ``prepare_receptor`` — MGLTools ``prepare_receptor4.py`` -> receptor
   PDBQT (the activity that enters a looping state on Hg receptors).
4. ``prepare_gpf``      — Grid Parameter File generation.
5. ``autogrid``         — AutoGrid map generation.
6. ``docking_filter``   — the in-house script routing small receptors to
   AD4 and large ones to Vina.
7. ``prepare_docking``  — DPF (7a, AD4) or Vina config (7b).
8. ``docking``          — AD4 or Vina execution, DLG/log emission.

Per-receptor artifacts (prepared receptor, AutoGrid maps, Vina grids)
are memoized in the run context: the real SciDock reuses them across the
42 ligands of each receptor too.

Inputs come from the deterministic structure generator, standing in for
RCSB-PDB (offline substitution; see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import Counter
from typing import Callable

import numpy as np

from repro.chem.babel import convert_molecule
from repro.chem.formats.sdf import write_sdf
from repro.chem.generate import (
    generate_ligand,
    generate_receptor,
    receptor_contains_mercury,
    receptor_size_class,
)
from repro.chem.geometry import rmsd
from repro.docking.autodock import AutoDock4
from repro.docking.autogrid import (
    AutoGrid,
    grid_maps_from_arrays,
    grid_maps_to_arrays,
    write_fld_file,
)
from repro.docking.box import GridBox
from repro.docking.etables import EtableConfig, shared_etables
from repro.docking.forcefield import FF_VERSION
from repro.docking.dlg import write_dlg, write_vina_log
from repro.docking.prepare import (
    prepare_dpf,
    prepare_gpf as make_gpf,
    prepare_ligand as do_prepare_ligand,
    prepare_receptor as do_prepare_receptor,
    prepare_vina_config,
)
from repro.docking.scoring_vina import (
    STANDARD_CLASSES,
    VINA_FF_VERSION,
    build_vina_maps,
    vina_maps_from_arrays,
    vina_maps_to_arrays,
)
from repro.docking.vina import Vina
from repro.workflow.artifacts import DiskMapCache, attach_cached, run_state

#: Map atom types SciDock requests from AutoGrid: the union every
#: generated ligand can need, so maps are computed once per receptor.
STANDARD_MAP_TYPES: tuple[str, ...] = ("C", "A", "N", "NA", "OA", "SA", "S", "HD", "H")


class KeyedCache:
    """Thread-safe build-once-per-key memo (receptor artifacts)."""

    def __init__(self) -> None:
        self._data: dict = {}
        self._locks: dict = {}
        self._guard = threading.Lock()

    def get_or_build(self, key, builder: Callable[[], object]):
        with self._guard:
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            if key not in self._data:
                self._data[key] = builder()
            return self._data[key]


def _new_caches() -> dict:
    return {
        "ligand": KeyedCache(),
        "ligand_prep": KeyedCache(),
        "receptor_prep": KeyedCache(),
        "receptor_meta": KeyedCache(),
        "maps": KeyedCache(),
        "vina_maps": KeyedCache(),
    }


def _caches(context: dict) -> dict:
    """Resolve this activation's artifact caches.

    Engine-backend workers receive a fresh context dict per activation,
    so ``context.setdefault`` cannot carry artifacts across activations.
    The per-run ``cache_token`` instead keys worker-side state held in
    :mod:`repro.workflow.artifacts` — which the engine explicitly drops
    at run end, so long-lived worker pools never accumulate dead runs'
    receptors and maps (tokens are unique per run, so runs with
    different grid spacing or preparation settings stay isolated).
    """
    token = context.get("cache_token")
    if token is not None:
        state = run_state(token)
        caches = state.get("caches")
        if caches is None:
            # dict.setdefault is atomic under the GIL; losers adopt the
            # winner's cache dict.
            caches = state.setdefault("caches", _new_caches())
        return caches
    return context.setdefault("caches", _new_caches())


# -- map-build accounting ----------------------------------------------------

#: Per-process map-build counters: ``f"{kind}:{receptor}" -> builds``.
#: The cross-process source of truth for a shared run is the artifact
#: plane's event log (``ExecutionReport.artifact_stats``); these counters
#: cover the threads backend and single-process benchmarks.
MAP_BUILDS: Counter = Counter()
#: Per-process cache-hit counters by source: ``shm`` / ``disk`` / ``memo``.
MAP_CACHE_HITS: Counter = Counter()
_MAP_STATS_GUARD = threading.Lock()


def reset_map_counters() -> None:
    with _MAP_STATS_GUARD:
        MAP_BUILDS.clear()
        MAP_CACHE_HITS.clear()


def _note_map_event(kind: str, rec_id: str, source: str) -> None:
    with _MAP_STATS_GUARD:
        if source == "built":
            MAP_BUILDS[f"{kind}:{rec_id}"] += 1
        else:
            MAP_CACHE_HITS[source] += 1


def _map_store(context: dict):
    """The cross-process/persistent map store for this run, if any.

    An attached :class:`~repro.workflow.artifacts.ArtifactPlane` when the
    engine shipped a plane handle (its disk tier rides inside), else a
    bare :class:`DiskMapCache` when only ``--map-cache`` was given, else
    ``None`` (per-process memoization only).
    """
    handle = context.get("artifact_plane")
    if handle is not None:
        return attach_cached(handle)
    cache_dir = context.get("map_cache_dir")
    if cache_dir:
        return DiskMapCache(cache_dir)
    return None


def _bundle_key(pdbqt: str, box: GridBox, terms: tuple[str, ...], version: str) -> str:
    """Content address of a map bundle.

    Hashes the prepared receptor text (coordinates, types, charges), the
    exact grid geometry, the map-type/probe-class roster, and the
    force-field fingerprint — any input that changes the numbers in the
    maps changes the key.
    """
    h = hashlib.sha256()
    h.update(pdbqt.encode())
    h.update(json.dumps(box.to_dict(), sort_keys=True).encode())
    h.update("|".join(terms).encode())
    h.update(version.encode())
    return h.hexdigest()[:32]


def _fs_write(context: dict, path: str, text: str) -> tuple[str, int, str]:
    """Write through the shared FS when present; returns a file record."""
    fs = context.get("fs")
    if fs is not None:
        fs.write_text(path, text)
    fname = path.rsplit("/", 1)[-1]
    fdir = path[: len(path) - len(fname)]
    return (fname, len(text.encode()), fdir or "./")


def _expdir(context: dict) -> str:
    return context.get("expdir", "/root/exp_SciDock").rstrip("/")


# --------------------------------------------------------------------------
# Activity 1: Babel (ligand SDF -> MOL2)
# --------------------------------------------------------------------------
def babel(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    lig_id = tup["ligand_id"]
    ligand = caches["ligand"].get_or_build(lig_id, lambda: generate_ligand(lig_id))
    sdf_text = write_sdf(ligand)
    mol2_text = convert_molecule(ligand, "mol2")
    base = f"{_expdir(context)}/babel/{lig_id}"
    files = [
        _fs_write(context, f"{base}/{lig_id}.sdf", sdf_text),
        _fs_write(context, f"{base}/{lig_id}.mol2", mol2_text),
    ]
    out = dict(tup)
    out["ligand_mol2"] = f"{base}/{lig_id}.mol2"
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 2: prepare_ligand4.py (MOL2 -> ligand PDBQT)
# --------------------------------------------------------------------------
def prepare_ligand(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    lig_id = tup["ligand_id"]
    ligand = caches["ligand"].get_or_build(lig_id, lambda: generate_ligand(lig_id))
    prep = caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(ligand)
    )
    base = f"{_expdir(context)}/prepare_ligand/{lig_id}"
    files = [_fs_write(context, f"{base}/{lig_id}.pdbqt", prep.pdbqt)]
    out = dict(tup)
    out["ligand_pdbqt"] = f"{base}/{lig_id}.pdbqt"
    out["torsdof"] = prep.torsdof
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 3: prepare_receptor4.py (PDB -> receptor PDBQT)
# --------------------------------------------------------------------------
def prepare_receptor(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id = tup["receptor_id"]
    prep = _receptor_prep(rec_id, caches)
    base = f"{_expdir(context)}/prepare_receptor/{rec_id}"
    files = [_fs_write(context, f"{base}/{rec_id}.pdbqt", prep.pdbqt)]
    out = dict(tup)
    out["receptor_pdbqt"] = f"{base}/{rec_id}.pdbqt"
    out["receptor_size_class"] = receptor_size_class(rec_id)
    out["_files"] = files
    return [out]


def receptor_would_loop(tup: dict) -> bool:
    """The looping predicate of activity 3: Hg-bearing receptors hang."""
    return receptor_contains_mercury(tup["receptor_id"])


# --------------------------------------------------------------------------
# Activity 4: prepare_gpf4.py (GPF generation)
# --------------------------------------------------------------------------
def prepare_gpf_activity(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    rec_prep = _receptor_prep(rec_id, caches)
    lig_prep = _ligand_prep(lig_id, caches)
    box = _box_for(rec_id, context, caches)
    gpf = make_gpf(rec_prep, lig_prep, box)
    base = f"{_expdir(context)}/prepare_gpf/{rec_id}"
    files = [_fs_write(context, f"{base}/{lig_id}_{rec_id}.gpf", gpf)]
    out = dict(tup)
    out["gpf"] = f"{base}/{lig_id}_{rec_id}.gpf"
    out["_files"] = files
    return [out]


def _receptor_prep(rec_id: str, caches: dict):
    return caches["receptor_prep"].get_or_build(
        rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
    )


def _ligand_prep(lig_id: str, caches: dict):
    return caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(generate_ligand(lig_id))
    )


def _pocket_for(rec_id: str, caches: dict) -> tuple[np.ndarray, float]:
    """Memoized ``(pocket_center, pocket_radius)`` of one receptor.

    Regenerating the whole receptor structure just to read two metadata
    fields dominated `_box_for`/`docking` per-activation cost; the pocket
    tuple is tiny and immutable, so it lives in the run caches.
    """

    def load() -> tuple[np.ndarray, float]:
        meta = generate_receptor(rec_id).metadata
        return np.array(meta["pocket_center"]), float(meta["pocket_radius"])

    return caches["receptor_meta"].get_or_build(rec_id, load)


def _box_for(rec_id: str, context: dict, caches: dict) -> GridBox:
    center, radius = _pocket_for(rec_id, caches)
    spacing = context.get("grid_spacing", 0.6)
    return GridBox.around_pocket(center, radius, spacing=spacing)


def _etables_for(context: dict):
    """The run's shared :class:`EtableSet`, or ``None`` in analytic mode.

    Reads the ``kernel``/``etable_*`` context keys the CLI sets; the
    process-wide registry means workers rebuilding scorers per activation
    share one table set per config.
    """
    if context.get("kernel") != "tables":
        return None
    return shared_etables(
        EtableConfig(
            dr=float(context.get("etable_dr", EtableConfig().dr)),
            r_max=float(context.get("etable_rmax", EtableConfig().r_max)),
        )
    )


def _map_version(context: dict, base: str) -> str:
    """Cache-key version string: the FF fingerprint, kernel-extended.

    Analytic mode keeps the bare fingerprint (existing caches still hit);
    tables mode appends resolution + cutoff so flipping either misses.
    """
    et = _etables_for(context)
    return base if et is None else et.config.fingerprint(base)


def _grid_maps_for(rec_id: str, context: dict, caches: dict):
    """Per-receptor AutoGrid maps via memo -> plane/shm -> disk -> build."""

    def assemble():
        rec_prep = _receptor_prep(rec_id, caches)
        box = _box_for(rec_id, context, caches)
        et = _etables_for(context)
        store = _map_store(context)
        if store is None:
            _note_map_event("ad4", rec_id, "built")
            return AutoGrid(etables=et).run(
                rec_prep.molecule, box, STANDARD_MAP_TYPES
            )

        def build_bundle():
            maps = AutoGrid(etables=et).run(
                rec_prep.molecule, box, STANDARD_MAP_TYPES
            )
            return grid_maps_to_arrays(maps)

        key = _bundle_key(
            rec_prep.pdbqt,
            box,
            ("ad4",) + STANDARD_MAP_TYPES,
            _map_version(context, FF_VERSION),
        )
        meta, arrays, source = store.get_or_build(
            "ad4maps", key, build_bundle, label=rec_id
        )
        _note_map_event("ad4", rec_id, source)
        return grid_maps_from_arrays(meta, arrays)

    return caches["maps"].get_or_build(rec_id, assemble)


def _vina_maps_for(rec_id: str, context: dict, caches: dict):
    """Per-receptor Vina grids via memo -> plane/shm -> disk -> build."""

    def assemble():
        rec_prep = _receptor_prep(rec_id, caches)
        box = _box_for(rec_id, context, caches)
        et = _etables_for(context)
        store = _map_store(context)
        if store is None:
            _note_map_event("vina", rec_id, "built")
            return build_vina_maps(rec_prep.molecule, box, etables=et)

        def build_bundle():
            vmaps = build_vina_maps(rec_prep.molecule, box, etables=et)
            return vina_maps_to_arrays(vmaps)

        classes = tuple(
            f"{c.radius}:{int(c.hydrophobic)}{int(c.donor)}{int(c.acceptor)}"
            for c in STANDARD_CLASSES
        )
        key = _bundle_key(
            rec_prep.pdbqt,
            box,
            ("vina",) + classes,
            _map_version(context, VINA_FF_VERSION),
        )
        meta, arrays, source = store.get_or_build(
            "vinamaps", key, build_bundle, label=rec_id
        )
        _note_map_event("vina", rec_id, source)
        return vina_maps_from_arrays(meta, arrays)

    return caches["vina_maps"].get_or_build(rec_id, assemble)


# --------------------------------------------------------------------------
# Activity 5: AutoGrid (coordinate map generation)
# --------------------------------------------------------------------------
def autogrid_activity(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id = tup["receptor_id"]
    maps = _grid_maps_for(rec_id, context, caches)
    # Cache-restored bundles drop the build log; note the provenance.
    glg = maps.log or f"autogrid4: maps for {rec_id} restored from artifact cache"
    base = f"{_expdir(context)}/autogrid/{rec_id}"
    files = [
        _fs_write(context, f"{base}/{rec_id}.maps.fld", write_fld_file(maps)),
        _fs_write(context, f"{base}/{rec_id}.glg", glg),
    ]
    out = dict(tup)
    out["maps_fld"] = f"{base}/{rec_id}.maps.fld"
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 6: docking filter (in-house receptor-size router)
# --------------------------------------------------------------------------
def docking_filter(tup: dict, context: dict) -> list[dict]:
    """Route each pair to AD4 (small receptors) or Vina (large ones).

    ``context['scenario']`` overrides the adaptive routing to reproduce
    the paper's Scenario I (all AD4) / Scenario II (all Vina) runs.
    """
    scenario = context.get("scenario", "adaptive")
    out = dict(tup)
    if scenario == "ad4":
        out["engine"] = "autodock4"
    elif scenario == "vina":
        out["engine"] = "vina"
    elif scenario == "adaptive":
        size = tup.get("receptor_size_class") or receptor_size_class(
            tup["receptor_id"]
        )
        out["engine"] = "vina" if size == "large" else "autodock4"
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return [out]


# --------------------------------------------------------------------------
# Activity 7: docking parameter preparation (7a DPF / 7b Vina config)
# --------------------------------------------------------------------------
def prepare_docking(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    rec_prep = _receptor_prep(rec_id, caches)
    lig_prep = _ligand_prep(lig_id, caches)
    seed = int(context.get("seed", 0))
    out = dict(tup)
    if tup["engine"] == "autodock4":
        text = prepare_dpf(rec_prep, lig_prep, seed=seed)
        base = f"{_expdir(context)}/prepare_dpf/{rec_id}"
        path = f"{base}/{lig_id}_{rec_id}.dpf"
        out["docking_params"] = path
    else:
        box = _box_for(rec_id, context, caches)
        text = prepare_vina_config(rec_prep, lig_prep, box, seed=seed)
        base = f"{_expdir(context)}/prepare_conf/{rec_id}"
        path = f"{base}/{lig_id}_{rec_id}.conf"
        out["docking_params"] = path
    out["_files"] = [_fs_write(context, path, text)]
    return [out]


# --------------------------------------------------------------------------
# Activity 8: molecular docking (8a AD4 / 8b Vina)
# --------------------------------------------------------------------------
def docking(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    engine_name = tup["engine"]
    rec_prep = _receptor_prep(rec_id, caches)
    lig_prep = _ligand_prep(lig_id, caches)
    # Stable per-pair seed offset (Python's hash() is salted per process).
    pair_digest = hashlib.sha256(f"{rec_id}|{lig_id}".encode()).digest()
    seed = int(context.get("seed", 0)) + int.from_bytes(pair_digest[:3], "little")
    pocket_center, pocket_radius = _pocket_for(rec_id, caches)

    et = _etables_for(context)
    if engine_name == "autodock4":
        maps = _grid_maps_for(rec_id, context, caches)
        engine = AutoDock4(maps, context.get("ad4_params"), etables=et)
        result = engine.dock(lig_prep, seed=seed)
        log_text = write_dlg(result)
        log_name = f"{lig_id}_{rec_id}.dlg"
    elif engine_name == "vina":
        box = _box_for(rec_id, context, caches)
        vmaps = _vina_maps_for(rec_id, context, caches)
        engine = Vina(
            rec_prep, box, context.get("vina_params"), maps=vmaps, etables=et
        )
        result = engine.dock(lig_prep, seed=seed)
        log_text = write_vina_log(result)
        log_name = f"{lig_id}_{rec_id}.log"
    else:
        raise ValueError(f"unknown docking engine {engine_name!r}")

    best = result.best_pose
    # Vina's reported RMSD is the mode-table spread (distance from the
    # best mode); AD4 reports RMSD from the input reference frame.
    if engine_name == "vina" and len(result.poses) > 1:
        mode_rmsd = float(
            np.mean([rmsd(p.coords, best.coords) for p in result.poses[1:]])
        )
    else:
        mode_rmsd = 0.0 if engine_name == "vina" else best.rmsd_from_input
    pose_center = best.coords.mean(axis=0)
    in_pocket = bool(
        np.linalg.norm(pose_center - pocket_center) <= pocket_radius + 2.0
    )

    base = f"{_expdir(context)}/{engine_name}/{rec_id}"
    summary = {
        "receptor": rec_id,
        "ligand": lig_id,
        "engine": engine_name,
        "kernel": "tables" if et is not None else "analytic",
        "feb": round(result.best_energy, 3),
        "rmsd": round(
            best.rmsd_from_input if engine_name == "autodock4" else mode_rmsd, 3
        ),
        "reference_rmsd": round(best.rmsd_from_input, 3),
        "modes": len(result.poses),
        "evaluations": result.evaluations,
        "in_pocket": in_pocket,
        "converged": in_pocket and result.best_energy < 0.0,
    }
    out = dict(tup)
    out.update(
        feb=summary["feb"],
        dock_rmsd=summary["rmsd"],
        in_pocket=in_pocket,
        converged=summary["converged"],
    )
    out["_files"] = [_fs_write(context, f"{base}/{log_name}", log_text)]
    out["_extract_payload"] = json.dumps(summary)
    return [out]
