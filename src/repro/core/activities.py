"""The eight SciDock activities (paper Fig. 1), as real activations.

Each function has the workflow-engine signature ``(tuple, context) ->
[tuple]`` and mirrors one command of the original pipeline:

1. ``babel``            — SDF -> Sybyl MOL2 ligand conversion.
2. ``prepare_ligand``   — MGLTools ``prepare_ligand4.py`` -> ligand PDBQT.
3. ``prepare_receptor`` — MGLTools ``prepare_receptor4.py`` -> receptor
   PDBQT (the activity that enters a looping state on Hg receptors).
4. ``prepare_gpf``      — Grid Parameter File generation.
5. ``autogrid``         — AutoGrid map generation.
6. ``docking_filter``   — the in-house script routing small receptors to
   AD4 and large ones to Vina.
7. ``prepare_docking``  — DPF (7a, AD4) or Vina config (7b).
8. ``docking``          — AD4 or Vina execution, DLG/log emission.

Per-receptor artifacts (prepared receptor, AutoGrid maps, Vina grids)
are memoized in the run context: the real SciDock reuses them across the
42 ligands of each receptor too.

Inputs come from the deterministic structure generator, standing in for
RCSB-PDB (offline substitution; see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Callable

import numpy as np

from repro.chem.babel import convert_molecule
from repro.chem.formats.sdf import write_sdf
from repro.chem.generate import (
    generate_ligand,
    generate_receptor,
    receptor_contains_mercury,
    receptor_size_class,
)
from repro.chem.geometry import rmsd
from repro.docking.autodock import AutoDock4
from repro.docking.autogrid import AutoGrid, write_fld_file
from repro.docking.box import GridBox
from repro.docking.dlg import write_dlg, write_vina_log
from repro.docking.prepare import (
    prepare_dpf,
    prepare_gpf as make_gpf,
    prepare_ligand as do_prepare_ligand,
    prepare_receptor as do_prepare_receptor,
    prepare_vina_config,
)
from repro.docking.scoring_vina import build_vina_maps
from repro.docking.vina import Vina

#: Map atom types SciDock requests from AutoGrid: the union every
#: generated ligand can need, so maps are computed once per receptor.
STANDARD_MAP_TYPES: tuple[str, ...] = ("C", "A", "N", "NA", "OA", "SA", "S", "HD", "H")


class KeyedCache:
    """Thread-safe build-once-per-key memo (receptor artifacts)."""

    def __init__(self) -> None:
        self._data: dict = {}
        self._locks: dict = {}
        self._guard = threading.Lock()

    def get_or_build(self, key, builder: Callable[[], object]):
        with self._guard:
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            if key not in self._data:
                self._data[key] = builder()
            return self._data[key]


def _new_caches() -> dict:
    return {
        "ligand": KeyedCache(),
        "ligand_prep": KeyedCache(),
        "receptor_prep": KeyedCache(),
        "maps": KeyedCache(),
        "vina_maps": KeyedCache(),
    }


#: Per-process artifact caches, keyed by the engine run's cache token.
#: Process-backend workers receive a fresh context dict per activation,
#: so ``context.setdefault`` cannot carry artifacts across activations —
#: this registry does, once per (worker process, engine run). Tokens are
#: unique per run, so runs with different grid spacing or preparation
#: settings never see each other's receptors or maps.
_PROCESS_CACHES: dict = {}
_PROCESS_CACHES_GUARD = threading.Lock()


def _caches(context: dict) -> dict:
    token = context.get("cache_token")
    if token is not None:
        with _PROCESS_CACHES_GUARD:
            caches = _PROCESS_CACHES.get(token)
            if caches is None:
                caches = _PROCESS_CACHES[token] = _new_caches()
        return caches
    return context.setdefault("caches", _new_caches())


def _fs_write(context: dict, path: str, text: str) -> tuple[str, int, str]:
    """Write through the shared FS when present; returns a file record."""
    fs = context.get("fs")
    if fs is not None:
        fs.write_text(path, text)
    fname = path.rsplit("/", 1)[-1]
    fdir = path[: len(path) - len(fname)]
    return (fname, len(text.encode()), fdir or "./")


def _expdir(context: dict) -> str:
    return context.get("expdir", "/root/exp_SciDock").rstrip("/")


# --------------------------------------------------------------------------
# Activity 1: Babel (ligand SDF -> MOL2)
# --------------------------------------------------------------------------
def babel(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    lig_id = tup["ligand_id"]
    ligand = caches["ligand"].get_or_build(lig_id, lambda: generate_ligand(lig_id))
    sdf_text = write_sdf(ligand)
    mol2_text = convert_molecule(ligand, "mol2")
    base = f"{_expdir(context)}/babel/{lig_id}"
    files = [
        _fs_write(context, f"{base}/{lig_id}.sdf", sdf_text),
        _fs_write(context, f"{base}/{lig_id}.mol2", mol2_text),
    ]
    out = dict(tup)
    out["ligand_mol2"] = f"{base}/{lig_id}.mol2"
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 2: prepare_ligand4.py (MOL2 -> ligand PDBQT)
# --------------------------------------------------------------------------
def prepare_ligand(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    lig_id = tup["ligand_id"]
    ligand = caches["ligand"].get_or_build(lig_id, lambda: generate_ligand(lig_id))
    prep = caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(ligand)
    )
    base = f"{_expdir(context)}/prepare_ligand/{lig_id}"
    files = [_fs_write(context, f"{base}/{lig_id}.pdbqt", prep.pdbqt)]
    out = dict(tup)
    out["ligand_pdbqt"] = f"{base}/{lig_id}.pdbqt"
    out["torsdof"] = prep.torsdof
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 3: prepare_receptor4.py (PDB -> receptor PDBQT)
# --------------------------------------------------------------------------
def prepare_receptor(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id = tup["receptor_id"]
    prep = caches["receptor_prep"].get_or_build(
        rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
    )
    base = f"{_expdir(context)}/prepare_receptor/{rec_id}"
    files = [_fs_write(context, f"{base}/{rec_id}.pdbqt", prep.pdbqt)]
    out = dict(tup)
    out["receptor_pdbqt"] = f"{base}/{rec_id}.pdbqt"
    out["receptor_size_class"] = receptor_size_class(rec_id)
    out["_files"] = files
    return [out]


def receptor_would_loop(tup: dict) -> bool:
    """The looping predicate of activity 3: Hg-bearing receptors hang."""
    return receptor_contains_mercury(tup["receptor_id"])


# --------------------------------------------------------------------------
# Activity 4: prepare_gpf4.py (GPF generation)
# --------------------------------------------------------------------------
def prepare_gpf_activity(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    rec_prep = caches["receptor_prep"].get_or_build(
        rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
    )
    lig_prep = caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(generate_ligand(lig_id))
    )
    box = _box_for(rec_id, context)
    gpf = make_gpf(rec_prep, lig_prep, box)
    base = f"{_expdir(context)}/prepare_gpf/{rec_id}"
    files = [_fs_write(context, f"{base}/{lig_id}_{rec_id}.gpf", gpf)]
    out = dict(tup)
    out["gpf"] = f"{base}/{lig_id}_{rec_id}.gpf"
    out["_files"] = files
    return [out]


def _box_for(rec_id: str, context: dict) -> GridBox:
    receptor = generate_receptor(rec_id)
    spacing = context.get("grid_spacing", 0.6)
    return GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=spacing,
    )


# --------------------------------------------------------------------------
# Activity 5: AutoGrid (coordinate map generation)
# --------------------------------------------------------------------------
def autogrid_activity(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id = tup["receptor_id"]

    def build():
        rec_prep = caches["receptor_prep"].get_or_build(
            rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
        )
        box = _box_for(rec_id, context)
        return AutoGrid().run(rec_prep.molecule, box, STANDARD_MAP_TYPES)

    maps = caches["maps"].get_or_build(rec_id, build)
    base = f"{_expdir(context)}/autogrid/{rec_id}"
    files = [
        _fs_write(context, f"{base}/{rec_id}.maps.fld", write_fld_file(maps)),
        _fs_write(context, f"{base}/{rec_id}.glg", maps.log),
    ]
    out = dict(tup)
    out["maps_fld"] = f"{base}/{rec_id}.maps.fld"
    out["_files"] = files
    return [out]


# --------------------------------------------------------------------------
# Activity 6: docking filter (in-house receptor-size router)
# --------------------------------------------------------------------------
def docking_filter(tup: dict, context: dict) -> list[dict]:
    """Route each pair to AD4 (small receptors) or Vina (large ones).

    ``context['scenario']`` overrides the adaptive routing to reproduce
    the paper's Scenario I (all AD4) / Scenario II (all Vina) runs.
    """
    scenario = context.get("scenario", "adaptive")
    out = dict(tup)
    if scenario == "ad4":
        out["engine"] = "autodock4"
    elif scenario == "vina":
        out["engine"] = "vina"
    elif scenario == "adaptive":
        size = tup.get("receptor_size_class") or receptor_size_class(
            tup["receptor_id"]
        )
        out["engine"] = "vina" if size == "large" else "autodock4"
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return [out]


# --------------------------------------------------------------------------
# Activity 7: docking parameter preparation (7a DPF / 7b Vina config)
# --------------------------------------------------------------------------
def prepare_docking(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    rec_prep = caches["receptor_prep"].get_or_build(
        rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
    )
    lig_prep = caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(generate_ligand(lig_id))
    )
    seed = int(context.get("seed", 0))
    out = dict(tup)
    if tup["engine"] == "autodock4":
        text = prepare_dpf(rec_prep, lig_prep, seed=seed)
        base = f"{_expdir(context)}/prepare_dpf/{rec_id}"
        path = f"{base}/{lig_id}_{rec_id}.dpf"
        out["docking_params"] = path
    else:
        box = _box_for(rec_id, context)
        text = prepare_vina_config(rec_prep, lig_prep, box, seed=seed)
        base = f"{_expdir(context)}/prepare_conf/{rec_id}"
        path = f"{base}/{lig_id}_{rec_id}.conf"
        out["docking_params"] = path
    out["_files"] = [_fs_write(context, path, text)]
    return [out]


# --------------------------------------------------------------------------
# Activity 8: molecular docking (8a AD4 / 8b Vina)
# --------------------------------------------------------------------------
def docking(tup: dict, context: dict) -> list[dict]:
    caches = _caches(context)
    rec_id, lig_id = tup["receptor_id"], tup["ligand_id"]
    engine_name = tup["engine"]
    rec_prep = caches["receptor_prep"].get_or_build(
        rec_id, lambda: do_prepare_receptor(generate_receptor(rec_id))
    )
    lig_prep = caches["ligand_prep"].get_or_build(
        lig_id, lambda: do_prepare_ligand(generate_ligand(lig_id))
    )
    # Stable per-pair seed offset (Python's hash() is salted per process).
    pair_digest = hashlib.sha256(f"{rec_id}|{lig_id}".encode()).digest()
    seed = int(context.get("seed", 0)) + int.from_bytes(pair_digest[:3], "little")
    receptor_meta = generate_receptor(rec_id).metadata
    pocket_center = np.array(receptor_meta["pocket_center"])
    pocket_radius = float(receptor_meta["pocket_radius"])

    if engine_name == "autodock4":
        maps = caches["maps"].get_or_build(
            rec_id,
            lambda: AutoGrid().run(
                rec_prep.molecule, _box_for(rec_id, context), STANDARD_MAP_TYPES
            ),
        )
        engine = AutoDock4(maps, context.get("ad4_params"))
        result = engine.dock(lig_prep, seed=seed)
        log_text = write_dlg(result)
        log_name = f"{lig_id}_{rec_id}.dlg"
    elif engine_name == "vina":
        box = _box_for(rec_id, context)
        vmaps = caches["vina_maps"].get_or_build(
            rec_id, lambda: build_vina_maps(rec_prep.molecule, box)
        )
        engine = Vina(rec_prep, box, context.get("vina_params"), maps=vmaps)
        result = engine.dock(lig_prep, seed=seed)
        log_text = write_vina_log(result)
        log_name = f"{lig_id}_{rec_id}.log"
    else:
        raise ValueError(f"unknown docking engine {engine_name!r}")

    best = result.best_pose
    # Vina's reported RMSD is the mode-table spread (distance from the
    # best mode); AD4 reports RMSD from the input reference frame.
    if engine_name == "vina" and len(result.poses) > 1:
        mode_rmsd = float(
            np.mean([rmsd(p.coords, best.coords) for p in result.poses[1:]])
        )
    else:
        mode_rmsd = 0.0 if engine_name == "vina" else best.rmsd_from_input
    pose_center = best.coords.mean(axis=0)
    in_pocket = bool(
        np.linalg.norm(pose_center - pocket_center) <= pocket_radius + 2.0
    )

    base = f"{_expdir(context)}/{engine_name}/{rec_id}"
    summary = {
        "receptor": rec_id,
        "ligand": lig_id,
        "engine": engine_name,
        "feb": round(result.best_energy, 3),
        "rmsd": round(
            best.rmsd_from_input if engine_name == "autodock4" else mode_rmsd, 3
        ),
        "reference_rmsd": round(best.rmsd_from_input, 3),
        "modes": len(result.poses),
        "evaluations": result.evaluations,
        "in_pocket": in_pocket,
        "converged": in_pocket and result.best_energy < 0.0,
    }
    out = dict(tup)
    out.update(
        feb=summary["feb"],
        dock_rmsd=summary["rmsd"],
        in_pocket=in_pocket,
        converged=summary["converged"],
    )
    out["_files"] = [_fs_write(context, f"{base}/{log_name}", log_text)]
    out["_extract_payload"] = json.dumps(summary)
    return [out]
