"""SciDock workflow assembly and execution entry points.

``build_scidock_workflow`` wires the eight real activities into a
:class:`~repro.workflow.activity.Workflow` for the LocalEngine;
``build_scidock_sim_workflow`` produces the cost-model twin the
SimulatedEngine sweeps over 2..128 cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import activities as acts
from repro.docking.autodock import AD4Parameters
from repro.docking.ga import GAConfig
from repro.docking.mc import ILSConfig
from repro.docking.vina import VinaParameters
from repro.provenance.store import ProvenanceStore
from repro.cloud.failures import ActivityFailureModel
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.engine import BACKENDS, ExecutionReport, LocalEngine
from repro.workflow.fault import FaultInjector, RetryPolicy, Watchdog
from repro.workflow.extractor import JsonExtractor
from repro.workflow.scheduler import GreedyCostScheduler
from repro.workflow.relation import Relation
from repro.workflow.template import ActivityTemplate

#: Reduced-budget engine settings: enough search to reproduce the
#: paper's Table 3 *shape* while keeping a 952-pair run tractable on a
#: laptop (the original budgets are days of CPU).
FAST_AD4 = AD4Parameters(
    ga_runs=2,
    ga=GAConfig(population_size=24, generations=8, local_search_steps=15),
    final_refine_steps=60,
)
FAST_VINA = VinaParameters(
    exhaustiveness=2,
    ils=ILSConfig(restarts=2, steps_per_restart=3, bfgs_iterations=8),
)

_DOCK_EXTRACTOR = JsonExtractor(
    keys=(
        "feb",
        "rmsd",
        "reference_rmsd",
        "engine",
        "kernel",
        "modes",
        "evaluations",
        "in_pocket",
        "converged",
    )
)


@dataclass
class SciDockConfig:
    """Everything a SciDock run needs."""

    scenario: str = "adaptive"  # "adaptive" | "ad4" | "vina"
    seed: int = 0
    grid_spacing: float = 0.6
    workers: int = 4
    backend: str = "threads"  # "threads" | "processes" | "distributed"
    expdir: str = "/root/exp_SciDock"
    ad4_params: AD4Parameters = field(default_factory=lambda: FAST_AD4)
    vina_params: VinaParameters = field(default_factory=lambda: FAST_VINA)
    block_known_loopers: bool = True
    #: Tristate artifact-plane switch: None = auto (on for the processes
    #: backend), True/False force it on or off for any backend.
    shared_maps: bool | None = None
    #: Directory of the persistent content-addressed map cache; None
    #: disables cross-run map reuse.
    map_cache: str | None = None
    #: Wall-clock watchdog floor in seconds; None keeps the engine
    #: default (600 s). Every activation's deadline is
    #: ``max(watchdog_timeout, 10 x expected cost)``.
    watchdog_timeout: float | None = None
    #: Activation-failure attempt budget (1 = no retries).
    retry_max_attempts: int = 3
    #: Base backoff delay in seconds; doubles per retry up to the
    #: policy's max.
    retry_base_delay: float = 1.0
    #: Bernoulli per-try activation-failure injection rate (chaos runs);
    #: 0 disables the fault injector entirely.
    inject_failure_rate: float = 0.0
    #: Per-tuple pipelined dataflow (barriers only at REDUCE); False
    #: restores the historical per-activity barriers.
    pipeline: bool = True
    #: Dispatch-order policy: "fifo" (arrival order) or "greedy"
    #: (longest expected activation first — SciCumulus' native policy).
    scheduler: str = "fifo"
    #: Straggler-speculation quantile: an attempt running past this
    #: learned tail quantile of its activity/size-class distribution
    #: gets a duplicate launched on an idle slot. 1.0 disables
    #: speculation (the golden-parity default); the online cost
    #: service's own default, when constructed directly, is p95.
    speculation_quantile: float = 1.0
    #: Where the online cost service's estimates start: "paper" seeds
    #: the static activity-mean table; "provenance" seeds cross-run
    #: Query-1 statistics from the store at engine start.
    cost_prior: str = "paper"
    #: Live elastic pool resizing: let an adaptive policy grow/shrink
    #: the real worker pool mid-run (bounded by ``workers``).
    elastic_pool: bool = False
    #: Table-driven energy kernels (see repro.docking.etables). False
    #: keeps the analytic reference path — bit-for-bit the seed scoring.
    etables: bool = False
    #: Radial table resolution in Angstrom per bin (tables mode only).
    etable_dr: float = 0.005
    #: Table extent / nonbonded cutoff in Angstrom (tables mode only).
    etable_rmax: float = 8.0
    #: Distributed backend only: ``HOST:PORT`` the director binds for
    #: worker nodes to join (``scidock worker --join HOST:PORT``).
    director: str | None = None
    #: Worker nodes a distributed run waits for before dispatching.
    min_nodes: int = 1
    #: Seconds to wait for ``min_nodes`` nodes (and for capacity when
    #: every node has died) before the run errors out.
    join_timeout: float = 60.0
    #: Activation tuples per TASK_BATCH frame on the distributed wire
    #: (1 = one frame per task, the legacy protocol).
    batch_size: int = 1
    #: Seconds a partial batch may linger waiting for more members
    #: before it is flushed to its node anyway.
    batch_linger: float = 0.005
    #: Negotiate zlib compression of large frames with worker nodes.
    compress_frames: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in ("adaptive", "ad4", "vina"):
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "distributed" and not self.director:
            raise ValueError(
                "backend 'distributed' needs director='HOST:PORT' so "
                "worker nodes know where to join"
            )
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.join_timeout <= 0:
            raise ValueError("join_timeout must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_linger < 0:
            raise ValueError("batch_linger must be >= 0")
        if self.scheduler not in ("fifo", "greedy"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.watchdog_timeout is not None and self.watchdog_timeout <= 0:
            raise ValueError("watchdog_timeout must be positive")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_base_delay < 0:
            raise ValueError("retry_base_delay cannot be negative")
        if not 0.0 <= self.inject_failure_rate <= 1.0:
            raise ValueError("inject_failure_rate must be in [0, 1]")
        if not 0.0 < self.speculation_quantile <= 1.0:
            raise ValueError("speculation_quantile must be in (0, 1]")
        if self.cost_prior not in ("paper", "provenance"):
            raise ValueError(f"unknown cost_prior {self.cost_prior!r}")
        if self.etable_dr <= 0:
            raise ValueError("etable_dr must be positive")
        if self.etable_rmax <= self.etable_dr:
            raise ValueError("etable_rmax must exceed etable_dr")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay=self.retry_base_delay,
            seed=self.seed,
        )

    def watchdog(self) -> Watchdog:
        if self.watchdog_timeout is None:
            return Watchdog()
        return Watchdog(timeout=self.watchdog_timeout)

    def scheduler_policy(self) -> GreedyCostScheduler | None:
        """Dispatch-order policy for the engine (None = FIFO arrival)."""
        if self.scheduler == "greedy":
            return GreedyCostScheduler()
        return None

    def context(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "grid_spacing": self.grid_spacing,
            "expdir": self.expdir,
            "ad4_params": self.ad4_params,
            "vina_params": self.vina_params,
            "shared_maps": self.shared_maps,
            "map_cache": self.map_cache,
            "kernel": "tables" if self.etables else "analytic",
            "etable_dr": self.etable_dr,
            "etable_rmax": self.etable_rmax,
        }


def _template(tag: str, command: str) -> ActivityTemplate:
    return ActivityTemplate(
        command=command,
        templatedir=f"/root/scidock/template_{tag}/",
        input_relation=f"input_{tag}.txt",
        output_relation=f"output_{tag}.txt",
    )


def build_scidock_workflow(config: SciDockConfig | None = None) -> Workflow:
    """The real 8-activity SciDock workflow (paper Fig. 1)."""
    config = config or SciDockConfig()
    wf = Workflow(
        tag="SciDock",
        description="Molecular docking-based virtual screening",
        exectag="scidock",
        expdir=config.expdir,
    )
    wf.add(Activity(
        "babel", Operator.MAP, fn=acts.babel,
        template=_template("babel", "babel -isdf %=LIGAND_ID%.sdf -omol2 %=LIGAND_ID%.mol2"),
        description="ligand transformation (SDF -> MOL2)",
    ))
    wf.add(Activity(
        "prepare_ligand", Operator.MAP, fn=acts.prepare_ligand,
        template=_template(
            "prepare_ligand",
            "prepare_ligand4.py -l %=LIGAND_ID%.mol2 -o %=LIGAND_ID%.pdbqt",
        ),
        description="ligand preparation (MGLTools)",
    ))
    wf.add(Activity(
        "prepare_receptor", Operator.MAP, fn=acts.prepare_receptor,
        template=_template(
            "prepare_receptor",
            "prepare_receptor4.py -r %=RECEPTOR_ID%.pdb -o %=RECEPTOR_ID%.pdbqt",
        ),
        description="receptor preparation (MGLTools)",
        looping_predicate=acts.receptor_would_loop,
    ))
    wf.add(Activity(
        "prepare_gpf", Operator.MAP, fn=acts.prepare_gpf_activity,
        template=_template(
            "prepare_gpf",
            "prepare_gpf4.py -l %=LIGAND_ID%.pdbqt -r %=RECEPTOR_ID%.pdbqt",
        ),
        description="AutoGrid parameter preparation",
    ))
    wf.add(Activity(
        "autogrid", Operator.MAP, fn=acts.autogrid_activity,
        template=_template("autogrid", "autogrid4 -p %=RECEPTOR_ID%.gpf"),
        description="receptor coordinate-map generation",
    ))
    wf.add(Activity(
        "docking_filter", Operator.FILTER, fn=acts.docking_filter,
        template=_template("docking_filter", "filter_receptors.py %=RECEPTOR_ID%"),
        description="docking filter (route small->AD4, large->Vina)",
    ))
    wf.add(Activity(
        "prepare_docking", Operator.MAP, fn=acts.prepare_docking,
        template=_template(
            "prepare_docking",
            "prepare_dpf4.py -l %=LIGAND_ID%.pdbqt -r %=RECEPTOR_ID%.pdbqt",
        ),
        description="docking parameter preparation (DPF / Vina conf)",
    ))
    wf.add(Activity(
        "docking", Operator.MAP, fn=acts.docking,
        template=_template("docking", "autodock4 -p %=LIGAND_ID%_%=RECEPTOR_ID%.dpf"),
        description="molecular docking execution (AD4 / Vina)",
        extractors=[_DOCK_EXTRACTOR],
    ))
    return wf


def build_scidock_sim_workflow(cost_model, scenario: str = "adaptive") -> Workflow:
    """Cost-model twin of SciDock for the SimulatedEngine.

    Per-tuple costs come from ``cost_model`` (see
    :mod:`repro.perf.cost_model`); only the router carries a real
    callable (zero-cost in simulation) so AD4/Vina tuples keep flowing
    to the right docking branch.
    """
    wf = Workflow(
        tag="SciDock-sim",
        description="SciDock cost-model twin",
        exectag="scidock",
    )
    tags = [
        "babel",
        "prepare_ligand",
        "prepare_receptor",
        "prepare_gpf",
        "autogrid",
        "docking_filter",
        "prepare_docking",
        "docking",
    ]
    for tag in tags:
        kwargs = {}
        if tag == "prepare_receptor":
            kwargs["looping_predicate"] = acts.receptor_would_loop
        if tag == "docking_filter":
            wf.add(Activity(
                tag,
                Operator.FILTER,
                fn=lambda t, c, _s=scenario: acts.docking_filter(
                    t, {"scenario": _s}
                ),
                cost_fn=cost_model.cost_fn(tag),
                **kwargs,
            ))
        else:
            wf.add(Activity(
                tag, Operator.MAP,
                cost_fn=cost_model.cost_fn(tag),
                **kwargs,
            ))
    return wf


def build_scidock_engine(
    config: SciDockConfig, store: ProvenanceStore
) -> LocalEngine:
    """A LocalEngine wired exactly as ``run_scidock`` would wire it.

    Shared by fresh runs and journal resumes so a resumed campaign
    executes under the same backend, fault-tolerance and cost-model
    semantics as the run that crashed.
    """
    # The online cost service and elasticity policy are only built when
    # something consumes them, so the default configuration dispatches
    # through exactly the same code path as before (golden parity).
    cost_service = None
    elasticity = None
    needs_service = (
        config.speculation_quantile < 1.0
        or config.cost_prior == "provenance"
        or config.scheduler == "greedy"
        or config.elastic_pool
    )
    if needs_service:
        # Imported lazily: repro.perf.calibrate imports this module, so
        # a module-level import would be circular.
        from repro.perf.online_cost import OnlineCostService

        cost_service = OnlineCostService(
            prior=config.cost_prior,
            speculation_quantile=config.speculation_quantile,
        )
        if config.cost_prior == "provenance":
            cost_service.seed_from_store(store)
    if config.elastic_pool:
        from repro.workflow.adaptive import AdaptiveElasticityPolicy

        elasticity = AdaptiveElasticityPolicy(
            min_cores=1, max_cores=config.workers
        )
    director = None
    if config.backend == "distributed":
        from repro.workflow.worker import parse_address

        director = parse_address(config.director)
    return LocalEngine(
        store,
        workers=config.workers,
        backend=config.backend,
        block_known_loopers=config.block_known_loopers,
        retry=config.retry_policy(),
        watchdog=config.watchdog(),
        scheduler=config.scheduler_policy(),
        pipeline=config.pipeline,
        cost_service=cost_service,
        elasticity=elasticity,
        director=director,
        min_nodes=config.min_nodes,
        join_timeout=config.join_timeout,
        batch_size=config.batch_size,
        batch_linger=config.batch_linger,
        compress_frames=config.compress_frames,
    )


def run_scidock(
    pairs: Relation,
    config: SciDockConfig | None = None,
    store: ProvenanceStore | None = None,
) -> tuple[ExecutionReport, ProvenanceStore]:
    """Execute SciDock for real on the configured executor backend
    (``config.backend``); returns (report, store)."""
    config = config or SciDockConfig()
    # Batched provenance writes: per-tuple records flush as executemany
    # groups; steering queries (store.sql) still see every record because
    # reads flush first.
    store = store or ProvenanceStore(buffer_size=128, flush_interval=1.0)
    engine = build_scidock_engine(config, store)
    workflow = build_scidock_workflow(config)
    context = config.context()
    if config.inject_failure_rate > 0:
        context["fault_injector"] = FaultInjector(
            failure_model=ActivityFailureModel(
                rate=config.inject_failure_rate, seed=config.seed
            ),
            seed=config.seed,
        )
    try:
        report = engine.run(workflow, pairs, context=context)
    finally:
        # Releases the distributed node pool; no-op on local backends.
        engine.shutdown()
    return report, store


def resume_scidock(
    wkfid: int,
    store: ProvenanceStore,
    config: SciDockConfig | None = None,
    pairs: Relation | None = None,
) -> tuple[ExecutionReport, ProvenanceStore]:
    """Continue a crashed/incomplete SciDock run from its journal.

    Journal-first: for journaled runs, ``LocalEngine.resume`` replays
    every durably-completed tuple from the logged outputs (zero
    recomputation) and executes only what the crash left unfinished,
    under the journaled context. Pre-journal runs fall back to the
    ``resume_failed`` provenance heuristics, which need ``pairs`` (the
    original input relation) to classify tuples.
    """
    from repro.workflow.journal import has_journal
    from repro.workflow.reexec import resume_failed

    config = config or SciDockConfig()
    engine = build_scidock_engine(config, store)
    workflow = build_scidock_workflow(config)
    if has_journal(store, wkfid):
        try:
            report = engine.resume(wkfid, workflow, relation=pairs)
        finally:
            engine.shutdown()
        return report, store
    if pairs is None:
        raise ValueError(
            f"run {wkfid} predates the run journal; pass the original "
            "pair relation so the provenance heuristics can classify it"
        )
    report, _plan = resume_failed(
        store, wkfid, workflow, pairs, engine=engine
    )
    if report is None:
        # Nothing left to re-run: synthesize an empty completion report.
        report = ExecutionReport(
            wkfid=wkfid,
            workflow_tag=workflow.tag,
            tet_seconds=0.0,
            output=Relation(f"{workflow.tag}:output", schema=("key",)),
        )
    return report, store
