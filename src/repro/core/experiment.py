"""Multi-workflow experiments: the paper's two-scenario campaign.

The evaluation runs *two* workflow executions over the same pairs —
Scenario I (all AD4) and Scenario II (all Vina) — and compares them
through the shared provenance repository ("10,000 executions of the 7
activities of 2 workflows"). :class:`SciDockExperiment` reproduces that
structure: both scenarios run into one store, and every comparison
(Table 3, engine agreement, runtime ratios) is a provenance query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import (
    DockingOutcome,
    EngineAgreement,
    Table3Row,
    collect_outcomes,
    compute_table3,
    engine_agreement,
    total_favorable,
)
from repro.core.scidock import SciDockConfig, run_scidock
from repro.provenance.queries import query1_activity_statistics, workflow_tet
from repro.provenance.store import ProvenanceStore
from repro.workflow.relation import Relation


@dataclass
class ScenarioRun:
    """One scenario's execution inside the experiment."""

    scenario: str
    wkfid: int
    tet_seconds: float
    outcomes: list[DockingOutcome] = field(default_factory=list)


class SciDockExperiment:
    """Run and compare the paper's Scenario I / Scenario II campaigns."""

    def __init__(
        self,
        pairs: Relation,
        *,
        workers: int = 4,
        seed: int = 0,
        store: ProvenanceStore | None = None,
    ) -> None:
        if len(pairs) == 0:
            raise ValueError("experiment needs at least one pair")
        self.pairs = pairs
        self.workers = workers
        self.seed = seed
        self.store = store or ProvenanceStore()
        self.runs: dict[str, ScenarioRun] = {}

    def run_scenario(self, scenario: str) -> ScenarioRun:
        """Execute one scenario into the shared provenance store."""
        config = SciDockConfig(
            scenario=scenario, workers=self.workers, seed=self.seed
        )
        report, _ = run_scidock(self.pairs.copy(), config, store=self.store)
        run = ScenarioRun(
            scenario=scenario,
            wkfid=report.wkfid,
            tet_seconds=report.tet_seconds,
            outcomes=collect_outcomes(self.store, report.wkfid),
        )
        self.runs[scenario] = run
        return run

    def run_both(self) -> tuple[ScenarioRun, ScenarioRun]:
        """The paper's full campaign: Scenario I then Scenario II."""
        return self.run_scenario("ad4"), self.run_scenario("vina")

    # -- comparisons -----------------------------------------------------------
    def _need(self, *scenarios: str) -> None:
        missing = [s for s in scenarios if s not in self.runs]
        if missing:
            raise ValueError(f"scenario(s) not run yet: {missing}")

    def table3(self, ligands: tuple[str, ...] | None = None) -> list[Table3Row]:
        self._need("ad4", "vina")
        rows: list[Table3Row] = []
        for run in self.runs.values():
            rows.extend(compute_table3(run.outcomes, ligands=ligands))
        return rows

    def favorable_counts(self) -> dict[str, int]:
        """Total FEB(-) per engine (the paper's 287 / 355)."""
        rows = self.table3()
        return {
            engine: total_favorable(rows, engine)
            for engine in ("autodock4", "vina")
        }

    def agreement(self) -> EngineAgreement:
        """Chang-et-al-style AD4/Vina prediction association."""
        self._need("ad4", "vina")
        return engine_agreement(
            self.runs["ad4"].outcomes, self.runs["vina"].outcomes
        )

    def runtime_ratio(self) -> float:
        """TET(AD4) / TET(Vina): >1 reproduces 'Vina performs better'."""
        self._need("ad4", "vina")
        return self.runs["ad4"].tet_seconds / self.runs["vina"].tet_seconds

    def docking_time_ratio(self) -> float:
        """Mean docking-activity time ratio AD4/Vina from provenance.

        Vina's authors claim ~10x faster docking than AD4; the paper
        quotes it. Our reduced-budget engines land lower but > 1.
        """
        self._need("ad4", "vina")
        means = {}
        for scenario, run in self.runs.items():
            stats = {
                s.tag: s for s in query1_activity_statistics(self.store, run.wkfid)
            }
            means[scenario] = stats["docking"].avg
        return means["ad4"] / means["vina"]

    def total_activations(self) -> int:
        """Across both workflows (the paper's '140,000' at full scale)."""
        self._need("ad4", "vina")
        rows = self.store.sql(
            """
            SELECT COUNT(*) AS n FROM hactivation t
            JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid IN (?, ?)
            """,
            (self.runs["ad4"].wkfid, self.runs["vina"].wkfid),
        )
        return int(rows[0]["n"])

    def summary(self) -> str:
        self._need("ad4", "vina")
        fav = self.favorable_counts()
        agg = self.agreement()
        return (
            f"{len(self.pairs)} pairs x 2 workflows: "
            f"{self.total_activations()} activations; "
            f"TET ad4 {self.runs['ad4'].tet_seconds:.1f} s vs vina "
            f"{self.runs['vina'].tet_seconds:.1f} s; FEB(-) ad4 "
            f"{fav['autodock4']} vs vina {fav['vina']}; agreement "
            f"r={agg.pearson_r:.2f}"
        )
