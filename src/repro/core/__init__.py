"""SciDock: the molecular docking-based virtual screening workflow.

The paper's primary contribution: an 8-activity workflow (Babel ->
ligand/receptor preparation -> GPF -> AutoGrid -> docking filter ->
DPF/Vina-config -> AD4/Vina docking) executed by the SciCumulus-like
engine, over the clan CL0125 dataset (238 receptors x 42 ligands).
"""

from repro.core.datasets import (
    CL0125_RECEPTORS,
    CP_LIGANDS,
    TABLE3_LIGANDS,
    pair_relation,
    receptor_count,
    ligand_count,
)
from repro.core.scidock import (
    SciDockConfig,
    build_scidock_engine,
    build_scidock_workflow,
    build_scidock_sim_workflow,
    resume_scidock,
    run_scidock,
)
from repro.core.analysis import (
    DockingOutcome,
    Table3Row,
    collect_outcomes,
    compute_table3,
    top_interactions,
)
from repro.core.spec import scidock_xml
from repro.core.experiment import SciDockExperiment
from repro.core.report import campaign_report

__all__ = [
    "SciDockExperiment",
    "campaign_report",
    "CL0125_RECEPTORS",
    "CP_LIGANDS",
    "TABLE3_LIGANDS",
    "pair_relation",
    "receptor_count",
    "ligand_count",
    "SciDockConfig",
    "build_scidock_engine",
    "build_scidock_workflow",
    "build_scidock_sim_workflow",
    "run_scidock",
    "resume_scidock",
    "DockingOutcome",
    "Table3Row",
    "collect_outcomes",
    "compute_table3",
    "top_interactions",
    "scidock_xml",
]
