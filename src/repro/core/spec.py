"""The SciDock XML specification (paper Fig. 2), generated from code."""

from __future__ import annotations

from repro.core.scidock import SciDockConfig, build_scidock_workflow
from repro.workflow.spec import DatabaseConfig, workflow_to_xml


def scidock_xml(
    config: SciDockConfig | None = None,
    db: DatabaseConfig | None = None,
) -> str:
    """Render SciDock as SciCumulus XML.

    Defaults mirror the paper's excerpt: the provenance database on an
    EC2 endpoint, workflow tag ``SciDock``, exectag ``scidock``.
    """
    workflow = build_scidock_workflow(config)
    db = db or DatabaseConfig(
        name="scicumulus",
        server="ec2-50-17-107-164.compute-1.amazonaws.com",
        port=5432,
    )
    return workflow_to_xml(workflow, db)
