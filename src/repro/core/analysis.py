"""Result analysis: Table 3 and the top-interactions ranking (Fig. 12).

Everything here is computed *from the provenance store*, mirroring the
paper's workflow: docking outputs land in `.dlg`/log files, extractor
components lift FEB/RMSD into ``hextract``, and analyses are SQL over
that repository rather than directory crawls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.provenance.store import ProvenanceStore


@dataclass
class DockingOutcome:
    """One docked receptor-ligand pair as recorded in provenance."""

    receptor: str
    ligand: str
    engine: str
    feb: float
    rmsd: float
    converged: bool
    in_pocket: bool


@dataclass
class Table3Row:
    """One row of the paper's Table 3 (per ligand, per engine)."""

    ligand: str
    engine: str
    feb_negative_count: int
    avg_feb_negative: float | None
    avg_rmsd: float | None
    n_pairs: int


def collect_outcomes(store: ProvenanceStore, wkfid: int) -> list[DockingOutcome]:
    """Read every docking extract of a run back out of provenance."""
    rows = store.sql(
        """
        SELECT t.taskid, e.key, e.value
        FROM hextract e
        JOIN hactivation t ON e.taskid = t.taskid
        JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ? AND a.tag = 'docking'
        ORDER BY t.taskid
        """,
        (wkfid,),
    )
    by_task: dict[int, dict] = {}
    for r in rows:
        by_task.setdefault(r["taskid"], {})[r["key"]] = r["value"]
    keys = store.sql(
        """
        SELECT t.taskid, t.tuple_key
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ? AND a.tag = 'docking' AND t.status = 'FINISHED'
        """,
        (wkfid,),
    )
    outcomes = []
    for k in keys:
        rec = by_task.get(k["taskid"])
        if not rec or "feb" not in rec:
            continue
        outcomes.append(
            DockingOutcome(
                receptor=_split_key(k["tuple_key"])[1],
                ligand=_split_key(k["tuple_key"])[0],
                engine=str(rec.get("engine", "")),
                feb=float(rec["feb"]),
                rmsd=float(rec.get("rmsd", "nan")),
                converged=_truthy(rec.get("converged")),
                in_pocket=_truthy(rec.get("in_pocket")),
            )
        )
    return outcomes


def _split_key(tuple_key: str) -> tuple[str, str]:
    """SciDock tuple keys are ``<ligand>_<receptor>``."""
    if "_" in tuple_key:
        lig, rec = tuple_key.split("_", 1)
        return lig, rec
    return tuple_key, ""


def _truthy(value) -> bool:
    return str(value).strip().lower() in ("true", "1", "yes")


def compute_table3(
    outcomes: list[DockingOutcome],
    ligands: tuple[str, ...] | None = None,
) -> list[Table3Row]:
    """The paper's Table 3: FEB(-) counts, avg FEB(-), avg RMSD per ligand.

    A pair counts as a *favorable interaction* (FEB(-)) when the docking
    converged onto the binding pocket with negative free energy — the
    operationalization of the paper's "favorable receptor-ligand
    interaction" under our synthetic substrate (see EXPERIMENTS.md).
    """
    rows: list[Table3Row] = []
    ligand_set = (
        tuple(ligands)
        if ligands is not None
        else tuple(sorted({o.ligand for o in outcomes}))
    )
    for engine in sorted({o.engine for o in outcomes}):
        for lig in ligand_set:
            sel = [o for o in outcomes if o.engine == engine and o.ligand == lig]
            if not sel:
                continue
            favorable = [o for o in sel if o.converged]
            rmsds = [o.rmsd for o in sel if np.isfinite(o.rmsd)]
            rows.append(
                Table3Row(
                    ligand=lig,
                    engine=engine,
                    feb_negative_count=len(favorable),
                    avg_feb_negative=(
                        float(np.mean([o.feb for o in favorable]))
                        if favorable
                        else None
                    ),
                    avg_rmsd=float(np.mean(rmsds)) if rmsds else None,
                    n_pairs=len(sel),
                )
            )
    return rows


def total_favorable(rows: list[Table3Row], engine: str) -> int:
    """Total FEB(-) across ligands for one engine (paper: 287 AD4 / 355 Vina)."""
    return sum(r.feb_negative_count for r in rows if r.engine == engine)


def top_interactions(
    outcomes: list[DockingOutcome], n: int = 10
) -> list[DockingOutcome]:
    """The best (most negative FEB) converged interactions.

    The paper's top three are 2HHN-0E6, 1S4V-0D6, 1HUC-0D6 — candidate
    drug targets for protozoan cysteine proteases.
    """
    converged = [o for o in outcomes if o.converged]
    return sorted(converged, key=lambda o: o.feb)[:n]


def format_table3(rows: list[Table3Row]) -> str:
    """Render Table 3 the way the paper prints it (ligand-major)."""
    ligands = sorted({r.ligand for r in rows})
    engines = sorted({r.engine for r in rows})
    lines = [
        "Ligand | " + " | ".join(
            f"FEB(-) {e} | avgFEB {e} | avgRMSD {e}" for e in engines
        )
    ]
    by = {(r.ligand, r.engine): r for r in rows}
    for lig in ligands:
        cells = [lig]
        for e in engines:
            r = by.get((lig, e))
            if r is None:
                cells += ["-", "-", "-"]
            else:
                cells += [
                    str(r.feb_negative_count),
                    f"{r.avg_feb_negative:.1f}" if r.avg_feb_negative is not None else "-",
                    f"{r.avg_rmsd:.1f}" if r.avg_rmsd is not None else "-",
                ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)


@dataclass
class EngineAgreement:
    """AD4-vs-Vina prediction association (Chang et al. 2010).

    The paper leans on Chang et al.'s finding of "a clear association
    between molecular docking predictions of AutoDock and Vina"; this is
    the same analysis over our per-pair FEBs.
    """

    n_pairs: int
    pearson_r: float
    spearman_rho: float
    mean_feb_ad4: float
    mean_feb_vina: float


def engine_agreement(
    ad4_outcomes: list[DockingOutcome],
    vina_outcomes: list[DockingOutcome],
) -> EngineAgreement:
    """Correlate the two engines' FEBs over their common pairs."""
    ad4 = {(o.receptor, o.ligand): o.feb for o in ad4_outcomes}
    vina = {(o.receptor, o.ligand): o.feb for o in vina_outcomes}
    common = sorted(set(ad4) & set(vina))
    if len(common) < 3:
        raise ValueError(
            f"need at least 3 common pairs to correlate, got {len(common)}"
        )
    x = np.array([ad4[k] for k in common])
    y = np.array([vina[k] for k in common])
    from scipy.stats import pearsonr, spearmanr

    pr = float(pearsonr(x, y).statistic)
    sr = float(spearmanr(x, y).statistic)
    return EngineAgreement(
        n_pairs=len(common),
        pearson_r=pr,
        spearman_rho=sr,
        mean_feb_ad4=float(x.mean()),
        mean_feb_vina=float(y.mean()),
    )


def outcomes_from_json(payloads: list[str]) -> list[DockingOutcome]:
    """Build outcomes straight from docking summaries (engine-side path)."""
    outcomes = []
    for p in payloads:
        d = json.loads(p)
        outcomes.append(
            DockingOutcome(
                receptor=d["receptor"],
                ligand=d["ligand"],
                engine=d["engine"],
                feb=float(d["feb"]),
                rmsd=float(d["rmsd"]),
                converged=bool(d["converged"]),
                in_pocket=bool(d["in_pocket"]),
            )
        )
    return outcomes
