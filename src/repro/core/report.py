"""Campaign report generation: the paper's analyses as one document.

Produces a markdown experiment report straight from a provenance store —
runtime statistics (Query 1), artifact catalog (Query 2), Table-3-style
docking summary, fault ledger and the shortlist — so a campaign's
outcome is communicable without anyone writing SQL.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import (
    collect_outcomes,
    compute_table3,
    top_interactions,
    total_favorable,
)
from repro.provenance.queries import (
    activation_durations,
    query1_activity_statistics,
    query2_files,
    workflow_tet,
)
from repro.provenance.store import ProvenanceStore


def campaign_report(
    store: ProvenanceStore,
    wkfid: int,
    *,
    title: str = "SciDock campaign report",
    top_n: int = 5,
) -> str:
    """Render one workflow execution as a markdown report."""
    wf = store.workflow_row(wkfid)
    lines = [f"# {title}", ""]
    lines.append(f"Workflow `{wf['tag']}` (execution {wkfid})")
    try:
        tet = workflow_tet(store, wkfid)
        lines.append(f"Total execution time: **{tet:.1f} s**")
    except ValueError:
        lines.append("Total execution time: *(still running)*")
    counts = store.counts_by_status(wkfid)
    lines.append(
        "Activations: "
        + ", ".join(f"{k.lower()} {v}" for k, v in sorted(counts.items()))
    )
    lines.append("")

    # Query 1: per-activity statistics.
    stats = query1_activity_statistics(store, wkfid)
    if stats:
        lines += [
            "## Activity runtime statistics (Query 1)",
            "",
            "| activity | n | min (s) | max (s) | avg (s) | sum (s) |",
            "|---|---|---|---|---|---|",
        ]
        for s in stats:
            lines.append(
                f"| {s.tag} | {s.count} | {s.min:.3f} | {s.max:.3f} "
                f"| {s.avg:.3f} | {s.sum:.2f} |"
            )
        durations = activation_durations(store, wkfid)
        lines += [
            "",
            f"Activation-duration distribution: n={len(durations)}, "
            f"mean {np.mean(durations):.2f} s, std {np.std(durations):.2f} s, "
            f"median {np.median(durations):.2f} s.",
            "",
        ]

    # Query 2: artifact catalog.
    artifacts = []
    for ext in (".dlg", ".log"):
        artifacts.extend(query2_files(store, wkfid, ext))
    if artifacts:
        total_bytes = sum(f.fsize for f in artifacts)
        lines += [
            "## Docking artifacts (Query 2)",
            "",
            f"{len(artifacts)} docking logs, {total_bytes / 1024:.1f} KiB total. "
            f"Example: `{artifacts[0].fdir}{artifacts[0].fname}` "
            f"({artifacts[0].fsize} bytes).",
            "",
        ]

    # Biology: Table-3-style summary.
    outcomes = collect_outcomes(store, wkfid)
    if outcomes:
        rows = compute_table3(outcomes)
        lines += [
            "## Docking results",
            "",
            "| ligand | engine | FEB(-) | avg FEB(-) (kcal/mol) | avg RMSD (A) | pairs |",
            "|---|---|---|---|---|---|",
        ]
        for r in rows:
            feb = f"{r.avg_feb_negative:.2f}" if r.avg_feb_negative is not None else "-"
            rmsd = f"{r.avg_rmsd:.1f}" if r.avg_rmsd is not None else "-"
            lines.append(
                f"| {r.ligand} | {r.engine} | {r.feb_negative_count} "
                f"| {feb} | {rmsd} | {r.n_pairs} |"
            )
        engines = sorted({o.engine for o in outcomes})
        lines.append("")
        for e in engines:
            lines.append(f"Total favorable interactions via {e}: "
                         f"**{total_favorable(rows, e)}**")
        shortlist = top_interactions(outcomes, n=top_n)
        if shortlist:
            lines += ["", "## Shortlist", ""]
            for o in shortlist:
                lines.append(
                    f"- **{o.receptor}-{o.ligand}** ({o.engine}): "
                    f"FEB {o.feb:+.2f} kcal/mol"
                )
        lines.append("")

    # Fault ledger.
    failed = store.failed_activations(wkfid)
    blocked = store.sql(
        "SELECT t.tuple_key, t.errormsg FROM hactivation t"
        " JOIN hactivity a ON t.actid = a.actid"
        " WHERE a.wkfid = ? AND t.status IN ('BLOCKED', 'ABORTED')",
        (wkfid,),
    )
    lines += ["## Fault ledger", ""]
    lines.append(f"- failed activation executions (re-submitted): {len(failed)}")
    lines.append(f"- blocked/aborted activations: {len(blocked)}")
    for row in blocked[:top_n]:
        lines.append(f"  - `{row['tuple_key']}`: {row['errormsg']}")
    return "\n".join(lines) + "\n"
