"""PROV-Wf provenance repository (SciCumulus' PostgreSQL stand-in).

Same relational shape as the paper's provenance database —
``hworkflow`` / ``hactivity`` / ``hactivation`` / ``hfile`` /
``hextract`` — on SQLite, with the paper's Query 1 and Query 2 exposed
both as raw SQL and as typed helpers, plus a W3C PROV export.
"""

from repro.provenance.schema import SCHEMA_DDL
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.provenance.queries import (
    query1_activity_statistics,
    query1_sql,
    query2_files,
    query2_sql,
    activation_durations,
    workflow_tet,
)
from repro.provenance.prov_model import export_prov_document, to_prov_n

__all__ = [
    "SCHEMA_DDL",
    "ProvenanceStore",
    "ActivationStatus",
    "query1_activity_statistics",
    "query1_sql",
    "query2_files",
    "query2_sql",
    "activation_durations",
    "workflow_tet",
    "export_prov_document",
    "to_prov_n",
]
