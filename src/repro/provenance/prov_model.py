"""W3C PROV export of a workflow run.

SciCumulus' repository follows PROV/PROV-Wf; this module maps the
relational records onto PROV concepts:

* each activation -> ``prov:Activity`` (with start/end times),
* each produced/consumed file -> ``prov:Entity`` with ``wasGeneratedBy``
  / ``used`` edges,
* each VM -> ``prov:Agent`` with ``wasAssociatedWith`` edges.

Export formats: a plain dict (JSON-ready) and PROV-N text.
"""

from __future__ import annotations

from repro.provenance.store import ProvenanceStore


def export_prov_document(store: ProvenanceStore, wkfid: int) -> dict:
    """Build a PROV document (dict form) for one workflow run."""
    wf = store.workflow_row(wkfid)
    activities: dict[str, dict] = {}
    entities: dict[str, dict] = {}
    agents: dict[str, dict] = {}
    used: list[tuple[str, str]] = []
    generated: list[tuple[str, str]] = []
    associated: list[tuple[str, str]] = []

    rows = store.sql(
        """
        SELECT t.taskid, t.tuple_key, t.starttime, t.endtime, t.status,
               t.vm_id, a.tag
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ?
        """,
        (wkfid,),
    )
    for r in rows:
        act_id = f"activation:{r['taskid']}"
        activities[act_id] = {
            "prov:type": "scicumulus:activation",
            "scicumulus:activity": r["tag"],
            "scicumulus:tuple": r["tuple_key"],
            "prov:startTime": r["starttime"],
            "prov:endTime": r["endtime"],
            "scicumulus:status": r["status"],
        }
        if r["vm_id"]:
            agent_id = f"vm:{r['vm_id']}"
            agents.setdefault(
                agent_id, {"prov:type": "scicumulus:virtualMachine"}
            )
            associated.append((act_id, agent_id))

    files = store.sql(
        """
        SELECT f.fileid, f.fname, f.fsize, f.fdir, f.direction, f.taskid
        FROM hfile f
        JOIN hactivation t ON f.taskid = t.taskid
        JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ?
        """,
        (wkfid,),
    )
    for f in files:
        ent_id = f"file:{f['fileid']}"
        entities[ent_id] = {
            "prov:type": "scicumulus:file",
            "scicumulus:name": f["fname"],
            "scicumulus:size": f["fsize"],
            "scicumulus:dir": f["fdir"],
        }
        act_id = f"activation:{f['taskid']}"
        if f["direction"] == "OUTPUT":
            generated.append((ent_id, act_id))
        else:
            used.append((act_id, ent_id))

    return {
        "workflow": {
            "wkfid": wkfid,
            "tag": wf["tag"],
            "starttime": wf["starttime"],
            "endtime": wf["endtime"],
        },
        "activity": activities,
        "entity": entities,
        "agent": agents,
        "used": used,
        "wasGeneratedBy": generated,
        "wasAssociatedWith": associated,
    }


def to_prov_n(document: dict) -> str:
    """Render the dict document as PROV-N text."""
    lines = ["document", "  prefix scicumulus <http://scicumulus.repro/ns#>"]
    for act_id, attrs in document["activity"].items():
        start = attrs.get("prov:startTime")
        end = attrs.get("prov:endTime")
        lines.append(
            f"  activity({act_id}, {start}, {end}, "
            f"[scicumulus:activity=\"{attrs['scicumulus:activity']}\", "
            f"scicumulus:status=\"{attrs['scicumulus:status']}\"])"
        )
    for ent_id, attrs in document["entity"].items():
        lines.append(
            f"  entity({ent_id}, [scicumulus:name=\"{attrs['scicumulus:name']}\", "
            f"scicumulus:size=\"{attrs['scicumulus:size']}\"])"
        )
    for agent_id in document["agent"]:
        lines.append(f"  agent({agent_id}, [prov:type=\"scicumulus:virtualMachine\"])")
    for ent_id, act_id in document["wasGeneratedBy"]:
        lines.append(f"  wasGeneratedBy({ent_id}, {act_id}, -)")
    for act_id, ent_id in document["used"]:
        lines.append(f"  used({act_id}, {ent_id}, -)")
    for act_id, agent_id in document["wasAssociatedWith"]:
        lines.append(f"  wasAssociatedWith({act_id}, {agent_id}, -)")
    lines.append("endDocument")
    return "\n".join(lines) + "\n"
