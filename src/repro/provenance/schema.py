"""Relational schema of the provenance repository (PROV-Wf).

Table and column names follow the paper's SQL excerpts (Figures 10/11):
``hworkflow.wkfid``, ``hactivity.actid/tag``, ``hactivation`` with
``starttime``/``endtime``, and the file catalog with ``fname``/``fsize``/
``fdir``. Times are stored as REAL seconds so the paper's
``extract('epoch' from (endtime - starttime))`` becomes plain
subtraction.
"""

SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS hworkflow (
    wkfid       INTEGER PRIMARY KEY AUTOINCREMENT,
    tag         TEXT NOT NULL,
    description TEXT DEFAULT '',
    exectag     TEXT DEFAULT '',
    expdir      TEXT DEFAULT '',
    starttime   REAL,
    endtime     REAL
);

CREATE TABLE IF NOT EXISTS hactivity (
    actid       INTEGER PRIMARY KEY AUTOINCREMENT,
    wkfid       INTEGER NOT NULL REFERENCES hworkflow(wkfid),
    tag         TEXT NOT NULL,
    description TEXT DEFAULT '',
    templatedir TEXT DEFAULT '',
    activation  TEXT DEFAULT '',
    optype      TEXT DEFAULT 'MAP'
);

CREATE TABLE IF NOT EXISTS hactivation (
    taskid      INTEGER PRIMARY KEY AUTOINCREMENT,
    actid       INTEGER NOT NULL REFERENCES hactivity(actid),
    tuple_key   TEXT DEFAULT '',
    starttime   REAL,
    endtime     REAL,
    status      TEXT DEFAULT 'READY',
    exitstatus  INTEGER DEFAULT 0,
    attempt     INTEGER DEFAULT 0,
    vm_id       TEXT DEFAULT '',
    core_index  INTEGER DEFAULT -1,
    workdir     TEXT DEFAULT '',
    errormsg    TEXT DEFAULT '',
    -- 1 for duplicate attempts launched by straggler speculation; the
    -- lineage/recovery queries must not mistake a losing duplicate (or
    -- its superseded primary) for real failed work.
    speculative INTEGER DEFAULT 0
);

CREATE TABLE IF NOT EXISTS hfile (
    fileid      INTEGER PRIMARY KEY AUTOINCREMENT,
    taskid      INTEGER NOT NULL REFERENCES hactivation(taskid),
    fname       TEXT NOT NULL,
    fsize       INTEGER DEFAULT 0,
    fdir        TEXT DEFAULT '',
    direction   TEXT DEFAULT 'OUTPUT'
);

CREATE TABLE IF NOT EXISTS hextract (
    extractid   INTEGER PRIMARY KEY AUTOINCREMENT,
    taskid      INTEGER NOT NULL REFERENCES hactivation(taskid),
    key         TEXT NOT NULL,
    value       TEXT
);

-- Activation-dependency edges: which (parent activity, parent tuple)
-- spawned which (child activity, child tuple). Written by the dataflow
-- core at spawn time, so PROV-Wf lineage survives pipelined execution
-- where stages no longer run in lockstep; a REDUCE child carries one
-- edge per contributing parent tuple.
CREATE TABLE IF NOT EXISTS hdependency (
    depid        INTEGER PRIMARY KEY AUTOINCREMENT,
    wkfid        INTEGER NOT NULL REFERENCES hworkflow(wkfid),
    child_key    TEXT NOT NULL,
    child_actid  INTEGER NOT NULL REFERENCES hactivity(actid),
    parent_key   TEXT NOT NULL,
    parent_actid INTEGER NOT NULL REFERENCES hactivity(actid)
);

-- Append-only run journal: every coordinator state transition
-- (schedule/dispatch/attempt-start/complete/abort/resize/steer) as one
-- event row with a per-run monotonic sequence number. Terminal events
-- (complete/fail/abort/block/run-finished) are written through a flush
-- barrier, so a SIGKILL'd coordinator never loses a completed tuple;
-- ``repro.workflow.journal.replay_journal`` reconstructs the
-- ready-queue frontier from this table alone. ``payload`` is a pickled
-- python object (tuple contents, outputs, run context) or NULL.
CREATE TABLE IF NOT EXISTS hjournal (
    eventid     INTEGER PRIMARY KEY AUTOINCREMENT,
    wkfid       INTEGER NOT NULL REFERENCES hworkflow(wkfid),
    seq         INTEGER NOT NULL,
    event       TEXT NOT NULL,
    stage       INTEGER DEFAULT -1,
    tuple_key   TEXT DEFAULT '',
    ts          REAL DEFAULT 0.0,
    payload     BLOB
);

CREATE INDEX IF NOT EXISTS idx_hactivity_wkfid ON hactivity(wkfid);
CREATE INDEX IF NOT EXISTS idx_hactivation_actid ON hactivation(actid);
CREATE INDEX IF NOT EXISTS idx_hactivation_status ON hactivation(status);
CREATE INDEX IF NOT EXISTS idx_hfile_taskid ON hfile(taskid);
CREATE INDEX IF NOT EXISTS idx_hextract_taskid ON hextract(taskid);
CREATE INDEX IF NOT EXISTS idx_hextract_key ON hextract(key);
CREATE INDEX IF NOT EXISTS idx_hdependency_wkfid ON hdependency(wkfid);
CREATE INDEX IF NOT EXISTS idx_hdependency_child ON hdependency(child_key, child_actid);
"""
