"""The provenance store API used by the workflow engine and analyses.

One store per experiment (in-memory by default, file-backed on request).
All writes go through typed helpers; reads can use the helpers in
:mod:`repro.provenance.queries` or raw SQL via :meth:`ProvenanceStore.sql`
— the paper stresses that scientists submit *high level database
analytical queries* directly.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from enum import Enum
from pathlib import Path

from repro.provenance.schema import SCHEMA_DDL


class ActivationStatus(str, Enum):
    READY = "READY"
    RUNNING = "RUNNING"
    FINISHED = "FINISHED"
    FAILED = "FAILED"
    ABORTED = "ABORTED"  # looping-state kills
    BLOCKED = "BLOCKED"  # aborted pre-dispatch (e.g. Hg routine)


#: Column order of the batched hactivation INSERT.
_ACTIVATION_COLS = (
    "taskid", "actid", "tuple_key", "starttime", "endtime", "status",
    "exitstatus", "errormsg", "vm_id", "core_index", "workdir", "attempt",
    "speculative",
)

#: Statuses that must be durable the moment they are recorded: a
#: crash-resumed coordinator trusts these rows (and the journal events
#: written in the same commit), so they may never sit in the write
#: buffer waiting for the next batch.
_TERMINAL_STATUSES = frozenset({
    ActivationStatus.FINISHED.value,
    ActivationStatus.FAILED.value,
    ActivationStatus.ABORTED.value,
    ActivationStatus.BLOCKED.value,
})


class ProvenanceStore:
    """SQLite-backed PROV-Wf repository.

    Locking contract: a single :class:`threading.Lock` serializes every
    database touch *and* every write-buffer mutation. The connection is
    opened with ``check_same_thread=False`` so the engine's bookkeeping
    threads may call in concurrently; any new method must take
    ``self._lock`` around its SQLite and buffer access (or route through
    the ``_execute``/``_buffered_*``/``sql`` helpers, which do).

    Write batching: per-activation records (activation begin/end, file
    and extract rows) dominate write volume at thousands of pairs. With
    ``buffer_size > 1`` those records accumulate in memory and land in
    SQLite as ``executemany`` batches under a single commit — either
    when ``buffer_size`` records are pending, when ``flush_interval``
    seconds have passed since the last flush, on any read
    (:meth:`sql` flushes first, so runtime steering queries always see
    current state), on explicit :meth:`flush`, or on :meth:`close`.
    Row ids are pre-assigned from per-table counters so
    :meth:`begin_activation` can hand out task ids without touching the
    database. The default ``buffer_size=1`` keeps the historical
    write-through behavior.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        buffer_size: int = 1,
        flush_interval: float | None = None,
    ) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if flush_interval is not None and flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self._conn = sqlite3.connect(
            str(path) if path else ":memory:", check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        self.buffer_size = buffer_size
        self.flush_interval = flush_interval
        #: RUNNING rows not yet flushed, by taskid — end_activation
        #: mutates these in place so begin+end usually costs one INSERT.
        self._pending_activations: dict[int, dict] = {}
        #: Ordered taskids of _pending_activations (insertion order).
        self._pending_order: list[int] = []
        #: UPDATE tuples for activations that were already flushed.
        self._pending_ends: list[tuple] = []
        self._pending_files: list[tuple] = []
        self._pending_extracts: list[tuple] = []
        self._pending_deps: list[tuple] = []
        self._pending_journal: list[tuple] = []
        self._last_flush = time.monotonic()
        with self._lock:
            self._conn.executescript(SCHEMA_DDL)
            # Migrate pre-speculation databases in place: CREATE IF NOT
            # EXISTS leaves an existing hactivation without the
            # ``speculative`` column, which the batched INSERT needs.
            cols = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(hactivation)")
            }
            if "speculative" not in cols:
                self._conn.execute(
                    "ALTER TABLE hactivation"
                    " ADD COLUMN speculative INTEGER DEFAULT 0"
                )
            if path is not None:
                # File-backed stores take the WAL path the paper's MySQL
                # instance effectively had (group commit): readers don't
                # block the writer and fsync happens per batch, not per row.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.commit()
            self._next_taskid = self._max_id_locked("hactivation", "taskid") + 1
            self._next_fileid = self._max_id_locked("hfile", "fileid") + 1
            self._next_extractid = self._max_id_locked("hextract", "extractid") + 1
            self._next_depid = self._max_id_locked("hdependency", "depid") + 1
            self._next_journalid = self._max_id_locked("hjournal", "eventid") + 1

    def _max_id_locked(self, table: str, col: str) -> int:
        row = self._conn.execute(f"SELECT COALESCE(MAX({col}), 0) FROM {table}")
        return int(row.fetchone()[0])

    # -- write plumbing ------------------------------------------------------
    def _execute(self, query: str, params: tuple = ()) -> sqlite3.Cursor:
        """Serialized write-through entry point (thread-safe)."""
        with self._lock:
            cur = self._conn.execute(query, params)
            self._conn.commit()
            return cur

    @property
    def _pending_count(self) -> int:
        return (
            len(self._pending_order)
            + len(self._pending_ends)
            + len(self._pending_files)
            + len(self._pending_extracts)
            + len(self._pending_deps)
            + len(self._pending_journal)
        )

    def _maybe_flush_locked(self) -> None:
        if self._pending_count >= self.buffer_size:
            self._flush_locked()
        elif (
            self.flush_interval is not None
            and time.monotonic() - self._last_flush >= self.flush_interval
        ):
            self._flush_locked()

    def _flush_locked(self) -> None:
        """Drain every buffer as executemany batches under one commit."""
        dirty = False
        if self._pending_order:
            rows = [
                tuple(self._pending_activations[tid][c] for c in _ACTIVATION_COLS)
                for tid in self._pending_order
            ]
            self._conn.executemany(
                "INSERT INTO hactivation"
                f" ({', '.join(_ACTIVATION_COLS)})"
                f" VALUES ({', '.join('?' * len(_ACTIVATION_COLS))})",
                rows,
            )
            self._pending_activations.clear()
            self._pending_order.clear()
            dirty = True
        if self._pending_ends:
            self._conn.executemany(
                "UPDATE hactivation SET endtime = ?, status = ?, exitstatus = ?,"
                " errormsg = ? WHERE taskid = ?",
                self._pending_ends,
            )
            self._pending_ends.clear()
            dirty = True
        if self._pending_files:
            self._conn.executemany(
                "INSERT INTO hfile (fileid, taskid, fname, fsize, fdir,"
                " direction) VALUES (?, ?, ?, ?, ?, ?)",
                self._pending_files,
            )
            self._pending_files.clear()
            dirty = True
        if self._pending_extracts:
            self._conn.executemany(
                "INSERT INTO hextract (extractid, taskid, key, value)"
                " VALUES (?, ?, ?, ?)",
                self._pending_extracts,
            )
            self._pending_extracts.clear()
            dirty = True
        if self._pending_deps:
            self._conn.executemany(
                "INSERT INTO hdependency (depid, wkfid, child_key,"
                " child_actid, parent_key, parent_actid)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                self._pending_deps,
            )
            self._pending_deps.clear()
            dirty = True
        if self._pending_journal:
            self._conn.executemany(
                "INSERT INTO hjournal (eventid, wkfid, seq, event, stage,"
                " tuple_key, ts, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                self._pending_journal,
            )
            self._pending_journal.clear()
            dirty = True
        if dirty:
            self._conn.commit()
        self._last_flush = time.monotonic()

    def flush(self) -> None:
        """Push every buffered provenance record into SQLite and commit."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
        self._conn.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- workflow lifecycle -------------------------------------------------
    def begin_workflow(
        self,
        tag: str,
        description: str = "",
        exectag: str = "",
        expdir: str = "",
        starttime: float = 0.0,
    ) -> int:
        cur = self._execute(
            "INSERT INTO hworkflow (tag, description, exectag, expdir, starttime)"
            " VALUES (?, ?, ?, ?, ?)",
            (tag, description, exectag, expdir, starttime),
        )
        return int(cur.lastrowid)

    def end_workflow(self, wkfid: int, endtime: float) -> None:
        self._execute(
            "UPDATE hworkflow SET endtime = ? WHERE wkfid = ?", (endtime, wkfid)
        )

    def register_activity(
        self,
        wkfid: int,
        tag: str,
        description: str = "",
        templatedir: str = "",
        activation: str = "",
        optype: str = "MAP",
    ) -> int:
        cur = self._execute(
            "INSERT INTO hactivity (wkfid, tag, description, templatedir,"
            " activation, optype) VALUES (?, ?, ?, ?, ?, ?)",
            (wkfid, tag, description, templatedir, activation, optype),
        )
        return int(cur.lastrowid)

    # -- activation lifecycle -------------------------------------------------
    def _buffer_activation_locked(self, row: dict) -> int:
        taskid = self._next_taskid
        self._next_taskid += 1
        row["taskid"] = taskid
        self._pending_activations[taskid] = row
        self._pending_order.append(taskid)
        self._maybe_flush_locked()
        return taskid

    def begin_activation(
        self,
        actid: int,
        tuple_key: str,
        starttime: float,
        vm_id: str = "",
        core_index: int = -1,
        workdir: str = "",
        attempt: int = 0,
        speculative: bool = False,
    ) -> int:
        with self._lock:
            return self._buffer_activation_locked({
                "actid": actid,
                "tuple_key": tuple_key,
                "starttime": starttime,
                "endtime": None,
                "status": ActivationStatus.RUNNING.value,
                "exitstatus": 0,
                "errormsg": "",
                "vm_id": vm_id,
                "core_index": core_index,
                "workdir": workdir,
                "attempt": attempt,
                "speculative": 1 if speculative else 0,
            })

    def end_activation(
        self,
        taskid: int,
        endtime: float,
        status: ActivationStatus = ActivationStatus.FINISHED,
        exitstatus: int = 0,
        errormsg: str = "",
    ) -> None:
        with self._lock:
            pending = self._pending_activations.get(taskid)
            if pending is not None:
                # Row never hit the database: complete it in place so the
                # whole lifecycle costs a single batched INSERT.
                pending.update(
                    endtime=endtime,
                    status=status.value,
                    exitstatus=exitstatus,
                    errormsg=errormsg,
                )
            else:
                self._pending_ends.append(
                    (endtime, status.value, exitstatus, errormsg, taskid)
                )
            if status.value in _TERMINAL_STATUSES:
                # A terminal status is a durability barrier: once the
                # caller sees this return, no crash may un-finish the
                # tuple. Buffering only ever covers RUNNING rows.
                self._flush_locked()
            else:
                self._maybe_flush_locked()

    def record_blocked(
        self, actid: int, tuple_key: str, when: float, reason: str
    ) -> int:
        """An activation aborted before dispatch (paper's Hg routine)."""
        with self._lock:
            taskid = self._buffer_activation_locked({
                "actid": actid,
                "tuple_key": tuple_key,
                "starttime": when,
                "endtime": when,
                "status": ActivationStatus.BLOCKED.value,
                "exitstatus": 0,
                "errormsg": reason,
                "vm_id": "",
                "core_index": -1,
                "workdir": "",
                "attempt": 0,
                "speculative": 0,
            })
            # BLOCKED is terminal from birth — same durability barrier
            # as end_activation's FINISHED/FAILED/ABORTED.
            self._flush_locked()
            return taskid

    # -- artifacts -------------------------------------------------------------
    def record_file(
        self,
        taskid: int,
        fname: str,
        fsize: int,
        fdir: str,
        direction: str = "OUTPUT",
    ) -> int:
        with self._lock:
            fileid = self._next_fileid
            self._next_fileid += 1
            self._pending_files.append(
                (fileid, taskid, fname, fsize, fdir, direction)
            )
            self._maybe_flush_locked()
            return fileid

    def record_extract(self, taskid: int, key: str, value: object) -> int:
        """Domain data pulled out of produced files by extractor components."""
        with self._lock:
            extractid = self._next_extractid
            self._next_extractid += 1
            self._pending_extracts.append((extractid, taskid, key, str(value)))
            self._maybe_flush_locked()
            return extractid

    def record_dependency(
        self,
        wkfid: int,
        child_key: str,
        child_actid: int,
        parent_key: str,
        parent_actid: int,
    ) -> int:
        """One activation-dependency edge: parent tuple spawned child tuple.

        Recorded by the dataflow core at spawn time so lineage queries
        can reconstruct each output tuple's full activation chain even
        under pipelined (non-lockstep) execution.
        """
        with self._lock:
            depid = self._next_depid
            self._next_depid += 1
            self._pending_deps.append(
                (depid, wkfid, child_key, child_actid, parent_key, parent_actid)
            )
            self._maybe_flush_locked()
            return depid

    def record_extracts(self, taskid: int, items: dict) -> None:
        with self._lock:
            for k, v in items.items():
                extractid = self._next_extractid
                self._next_extractid += 1
                self._pending_extracts.append((extractid, taskid, k, str(v)))
            self._maybe_flush_locked()

    # -- run journal -----------------------------------------------------------
    def record_journal_event(
        self,
        wkfid: int,
        seq: int,
        event: str,
        stage: int = -1,
        tuple_key: str = "",
        ts: float = 0.0,
        payload: bytes | None = None,
        *,
        barrier: bool = False,
    ) -> int:
        """Append one run-journal event (see :mod:`repro.workflow.journal`).

        Events ride the same batched write path as activation rows;
        ``barrier=True`` flushes synchronously so terminal events
        (completed/failed/aborted/run-finished) are durable before the
        coordinator acts on them — the crash-resume guarantee.
        """
        with self._lock:
            eventid = self._next_journalid
            self._next_journalid += 1
            self._pending_journal.append(
                (eventid, wkfid, seq, event, stage, tuple_key, ts, payload)
            )
            if barrier:
                self._flush_locked()
            else:
                self._maybe_flush_locked()
            return eventid

    def journal_events(self, wkfid: int) -> list[sqlite3.Row]:
        """Every journal event of one run, in sequence order."""
        return self.sql(
            "SELECT * FROM hjournal WHERE wkfid = ? ORDER BY seq", (wkfid,)
        )

    # -- reads -------------------------------------------------------------------
    def sql(self, query: str, params: tuple = ()) -> list[sqlite3.Row]:
        """Run an arbitrary analytical query (read-only by convention).

        Flushes the write buffer first so runtime steering queries always
        observe every record handed to the store so far.
        """
        with self._lock:
            self._flush_locked()
            return self._conn.execute(query, params).fetchall()

    def workflow_row(self, wkfid: int) -> sqlite3.Row:
        rows = self.sql("SELECT * FROM hworkflow WHERE wkfid = ?", (wkfid,))
        if not rows:
            raise KeyError(f"no workflow {wkfid}")
        return rows[0]

    def activations(
        self, wkfid: int, status: ActivationStatus | None = None
    ) -> list[sqlite3.Row]:
        q = (
            "SELECT t.* FROM hactivation t JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ?"
        )
        params: tuple = (wkfid,)
        if status is not None:
            q += " AND t.status = ?"
            params += (status.value,)
        return self.sql(q + " ORDER BY t.taskid", params)

    def failed_activations(self, wkfid: int) -> list[sqlite3.Row]:
        """The paper's recovery query: everything needing re-execution."""
        return self.activations(wkfid, ActivationStatus.FAILED)

    def extracts(self, wkfid: int, key: str) -> list[sqlite3.Row]:
        return self.sql(
            "SELECT t.taskid, t.tuple_key, e.value"
            " FROM hextract e"
            " JOIN hactivation t ON e.taskid = t.taskid"
            " JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ? AND e.key = ? ORDER BY t.taskid",
            (wkfid, key),
        )

    def counts_by_status(self, wkfid: int) -> dict[str, int]:
        rows = self.sql(
            "SELECT t.status, COUNT(*) AS n FROM hactivation t"
            " JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ? GROUP BY t.status",
            (wkfid,),
        )
        return {row["status"]: row["n"] for row in rows}
