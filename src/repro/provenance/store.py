"""The provenance store API used by the workflow engine and analyses.

One store per experiment (in-memory by default, file-backed on request).
All writes go through typed helpers; reads can use the helpers in
:mod:`repro.provenance.queries` or raw SQL via :meth:`ProvenanceStore.sql`
— the paper stresses that scientists submit *high level database
analytical queries* directly.
"""

from __future__ import annotations

import sqlite3
import threading
from enum import Enum
from pathlib import Path

from repro.provenance.schema import SCHEMA_DDL


class ActivationStatus(str, Enum):
    READY = "READY"
    RUNNING = "RUNNING"
    FINISHED = "FINISHED"
    FAILED = "FAILED"
    ABORTED = "ABORTED"  # looping-state kills
    BLOCKED = "BLOCKED"  # aborted pre-dispatch (e.g. Hg routine)


class ProvenanceStore:
    """SQLite-backed PROV-Wf repository."""

    def __init__(self, path: str | Path | None = None) -> None:
        # The LocalEngine records provenance from worker threads; SQLite
        # allows that with check_same_thread=False as long as calls are
        # serialized, which _execute's lock guarantees.
        self._conn = sqlite3.connect(
            str(path) if path else ":memory:", check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        with self._lock:
            self._conn.executescript(SCHEMA_DDL)
            self._conn.commit()


    def _execute(self, query: str, params: tuple = ()) -> sqlite3.Cursor:
        """Serialized write/read entry point (thread-safe)."""
        with self._lock:
            cur = self._conn.execute(query, params)
            self._conn.commit()
            return cur

    def _executemany(self, query: str, rows: list[tuple]) -> None:
        with self._lock:
            self._conn.executemany(query, rows)
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- workflow lifecycle -------------------------------------------------
    def begin_workflow(
        self,
        tag: str,
        description: str = "",
        exectag: str = "",
        expdir: str = "",
        starttime: float = 0.0,
    ) -> int:
        cur = self._execute(
            "INSERT INTO hworkflow (tag, description, exectag, expdir, starttime)"
            " VALUES (?, ?, ?, ?, ?)",
            (tag, description, exectag, expdir, starttime),
        )
        return int(cur.lastrowid)

    def end_workflow(self, wkfid: int, endtime: float) -> None:
        self._execute(
            "UPDATE hworkflow SET endtime = ? WHERE wkfid = ?", (endtime, wkfid)
        )

    def register_activity(
        self,
        wkfid: int,
        tag: str,
        description: str = "",
        templatedir: str = "",
        activation: str = "",
        optype: str = "MAP",
    ) -> int:
        cur = self._execute(
            "INSERT INTO hactivity (wkfid, tag, description, templatedir,"
            " activation, optype) VALUES (?, ?, ?, ?, ?, ?)",
            (wkfid, tag, description, templatedir, activation, optype),
        )
        return int(cur.lastrowid)

    # -- activation lifecycle -------------------------------------------------
    def begin_activation(
        self,
        actid: int,
        tuple_key: str,
        starttime: float,
        vm_id: str = "",
        core_index: int = -1,
        workdir: str = "",
        attempt: int = 0,
    ) -> int:
        cur = self._execute(
            "INSERT INTO hactivation (actid, tuple_key, starttime, status,"
            " vm_id, core_index, workdir, attempt)"
            " VALUES (?, ?, ?, 'RUNNING', ?, ?, ?, ?)",
            (actid, tuple_key, starttime, vm_id, core_index, workdir, attempt),
        )
        return int(cur.lastrowid)

    def end_activation(
        self,
        taskid: int,
        endtime: float,
        status: ActivationStatus = ActivationStatus.FINISHED,
        exitstatus: int = 0,
        errormsg: str = "",
    ) -> None:
        self._execute(
            "UPDATE hactivation SET endtime = ?, status = ?, exitstatus = ?,"
            " errormsg = ? WHERE taskid = ?",
            (endtime, status.value, exitstatus, errormsg, taskid),
        )

    def record_blocked(
        self, actid: int, tuple_key: str, when: float, reason: str
    ) -> int:
        """An activation aborted before dispatch (paper's Hg routine)."""
        cur = self._execute(
            "INSERT INTO hactivation (actid, tuple_key, starttime, endtime,"
            " status, errormsg) VALUES (?, ?, ?, ?, 'BLOCKED', ?)",
            (actid, tuple_key, when, when, reason),
        )
        return int(cur.lastrowid)

    # -- artifacts -------------------------------------------------------------
    def record_file(
        self,
        taskid: int,
        fname: str,
        fsize: int,
        fdir: str,
        direction: str = "OUTPUT",
    ) -> int:
        cur = self._execute(
            "INSERT INTO hfile (taskid, fname, fsize, fdir, direction)"
            " VALUES (?, ?, ?, ?, ?)",
            (taskid, fname, fsize, fdir, direction),
        )
        return int(cur.lastrowid)

    def record_extract(self, taskid: int, key: str, value: object) -> int:
        """Domain data pulled out of produced files by extractor components."""
        cur = self._execute(
            "INSERT INTO hextract (taskid, key, value) VALUES (?, ?, ?)",
            (taskid, key, str(value)),
        )
        return int(cur.lastrowid)

    def record_extracts(self, taskid: int, items: dict) -> None:
        self._executemany(
            "INSERT INTO hextract (taskid, key, value) VALUES (?, ?, ?)",
            [(taskid, k, str(v)) for k, v in items.items()],
        )

    # -- reads -------------------------------------------------------------------
    def sql(self, query: str, params: tuple = ()) -> list[sqlite3.Row]:
        """Run an arbitrary analytical query (read-only by convention)."""
        with self._lock:
            return self._conn.execute(query, params).fetchall()

    def workflow_row(self, wkfid: int) -> sqlite3.Row:
        rows = self.sql("SELECT * FROM hworkflow WHERE wkfid = ?", (wkfid,))
        if not rows:
            raise KeyError(f"no workflow {wkfid}")
        return rows[0]

    def activations(
        self, wkfid: int, status: ActivationStatus | None = None
    ) -> list[sqlite3.Row]:
        q = (
            "SELECT t.* FROM hactivation t JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ?"
        )
        params: tuple = (wkfid,)
        if status is not None:
            q += " AND t.status = ?"
            params += (status.value,)
        return self.sql(q + " ORDER BY t.taskid", params)

    def failed_activations(self, wkfid: int) -> list[sqlite3.Row]:
        """The paper's recovery query: everything needing re-execution."""
        return self.activations(wkfid, ActivationStatus.FAILED)

    def extracts(self, wkfid: int, key: str) -> list[sqlite3.Row]:
        return self.sql(
            "SELECT t.taskid, t.tuple_key, e.value"
            " FROM hextract e"
            " JOIN hactivation t ON e.taskid = t.taskid"
            " JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ? AND e.key = ? ORDER BY t.taskid",
            (wkfid, key),
        )

    def counts_by_status(self, wkfid: int) -> dict[str, int]:
        rows = self.sql(
            "SELECT t.status, COUNT(*) AS n FROM hactivation t"
            " JOIN hactivity a ON t.actid = a.actid"
            " WHERE a.wkfid = ? GROUP BY t.status",
            (wkfid,),
        )
        return {row["status"]: row["n"] for row in rows}
