"""The paper's provenance queries (Figures 10 and 11) and helpers.

Query 1 — "Obtain the TET, statistical averages and biological
information related to the SciDock executions": per-activity min / max /
sum / avg of activation durations.

Query 2 — "Retrieve the names, sizes and locations of files with the
extension '.dlg' …, recovering also which workflow and activities
produced those files".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.store import ProvenanceStore


def query1_sql() -> str:
    """The literal Query 1 (paper Fig. 10), ported from PostgreSQL.

    ``extract('epoch' from (t.endtime - t.starttime))`` becomes plain
    subtraction because the store keeps times as epoch seconds.
    """
    return """
        SELECT a.tag,
               MIN(t.endtime - t.starttime) AS min,
               MAX(t.endtime - t.starttime) AS max,
               SUM(t.endtime - t.starttime) AS sum,
               AVG(t.endtime - t.starttime) AS avg
        FROM hworkflow w, hactivity a, hactivation t
        WHERE w.wkfid = a.wkfid
          AND a.actid = t.actid
          AND t.status = 'FINISHED'
          AND w.wkfid = ?
        GROUP BY a.tag
        ORDER BY a.tag
    """


def query2_sql() -> str:
    """The literal Query 2 (paper Fig. 11)."""
    return """
        SELECT w.tag AS workflow_tag,
               a.tag AS activity_tag,
               f.fname,
               f.fsize,
               f.fdir
        FROM hworkflow w, hactivity a, hactivation t, hfile f
        WHERE w.wkfid = a.wkfid
          AND a.actid = t.actid
          AND t.taskid = f.taskid
          AND f.fname LIKE ?
          AND w.wkfid = ?
        ORDER BY f.fileid
    """


@dataclass
class ActivityStats:
    """One row of Query 1's result."""

    tag: str
    min: float
    max: float
    sum: float
    avg: float
    count: int
    #: Population standard deviation of the durations — feeds the cost
    #: model's per-activity log-normal sigmas and the online cost
    #: service's parametric straggler thresholds.
    stddev: float = 0.0


def _stats_rows(
    store: ProvenanceStore, wkfid: int | None
) -> list[ActivityStats]:
    """Shared SELECT behind Query 1 and the all-history variant.

    SQLite has no STDDEV builtin, so the variance comes from the moment
    identity E[x^2] - E[x]^2, sqrt-clamped against float cancellation.
    """
    where = "AND w.wkfid = ?" if wkfid is not None else ""
    rows = store.sql(
        f"""
        SELECT a.tag,
               MIN(t.endtime - t.starttime) AS min,
               MAX(t.endtime - t.starttime) AS max,
               SUM(t.endtime - t.starttime) AS sum,
               AVG(t.endtime - t.starttime) AS avg,
               AVG((t.endtime - t.starttime) * (t.endtime - t.starttime))
                   AS avgsq,
               COUNT(*) AS count
        FROM hworkflow w, hactivity a, hactivation t
        WHERE w.wkfid = a.wkfid
          AND a.actid = t.actid
          AND t.status = 'FINISHED'
          {where}
        GROUP BY a.tag
        ORDER BY a.tag
        """,
        (wkfid,) if wkfid is not None else (),
    )
    stats = []
    for r in rows:
        variance = max(0.0, (r["avgsq"] or 0.0) - (r["avg"] or 0.0) ** 2)
        stats.append(
            ActivityStats(
                tag=r["tag"],
                min=r["min"],
                max=r["max"],
                sum=r["sum"],
                avg=r["avg"],
                count=r["count"],
                stddev=variance ** 0.5,
            )
        )
    return stats


def query1_activity_statistics(
    store: ProvenanceStore, wkfid: int
) -> list[ActivityStats]:
    """Typed Query 1: per-activity execution-time statistics."""
    return _stats_rows(store, wkfid)


def activity_history_statistics(
    store: ProvenanceStore, wkfid: int | None = None
) -> list[ActivityStats]:
    """Query-1 statistics across *all* stored runs (or one, if given).

    The cross-run variant seeds the online cost service at engine start:
    a long-lived provenance store accumulates per-activity history that
    informs placement and straggler thresholds before the first live
    sample of a new run arrives.
    """
    return _stats_rows(store, wkfid)


@dataclass
class FileRecord:
    """One row of Query 2's result."""

    workflow_tag: str
    activity_tag: str
    fname: str
    fsize: int
    fdir: str


def query2_files(
    store: ProvenanceStore, wkfid: int, extension: str = ".dlg"
) -> list[FileRecord]:
    """Typed Query 2: produced files matching an extension."""
    rows = store.sql(query2_sql(), (f"%{extension}", wkfid))
    return [
        FileRecord(
            workflow_tag=r["workflow_tag"],
            activity_tag=r["activity_tag"],
            fname=r["fname"],
            fsize=r["fsize"],
            fdir=r["fdir"],
        )
        for r in rows
    ]


@dataclass
class LineageStep:
    """One activation along a tuple's lineage chain."""

    tag: str
    tuple_key: str
    status: str
    attempt: int
    starttime: float | None
    endtime: float | None


def lineage_chain(
    store: ProvenanceStore, wkfid: int, key: str
) -> list[LineageStep]:
    """Reconstruct the full activation chain behind an output tuple.

    Walks the ``hdependency`` edges the dataflow core records at spawn
    time from the given tuple key back to the workflow's input tuples,
    returning every activation along the way in stage order (root
    first). A REDUCE node fans the walk out to every contributing
    parent, so the chain of a post-REDUCE tuple covers all its inputs.

    Falls back to the key's own activations when the run predates the
    dependency table (or the workflow has a single activity, which
    spawns no edges).
    """
    row = store.sql(
        "SELECT MAX(child_actid) AS leaf FROM hdependency"
        " WHERE wkfid = ? AND child_key = ?",
        (wkfid, key),
    )[0]
    if row["leaf"] is None:
        rows = store.sql(
            """
            SELECT a.tag, t.tuple_key, t.status, t.attempt,
                   t.starttime, t.endtime
            FROM hactivation t JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? AND t.tuple_key = ?
            ORDER BY t.actid, t.attempt
            """,
            (wkfid, key),
        )
    else:
        rows = store.sql(
            """
            WITH RECURSIVE chain(k, actid) AS (
                VALUES (?, ?)
              UNION
                SELECT d.parent_key, d.parent_actid
                FROM hdependency d
                JOIN chain c
                  ON d.child_key = c.k AND d.child_actid = c.actid
                WHERE d.wkfid = ?
            )
            SELECT a.tag, c.k AS tuple_key, t.status, t.attempt,
                   t.starttime, t.endtime
            FROM chain c
            JOIN hactivity a ON a.actid = c.actid
            LEFT JOIN hactivation t
              ON t.actid = c.actid AND t.tuple_key = c.k
            ORDER BY c.actid, t.attempt
            """,
            (key, row["leaf"], wkfid),
        )
    return [
        LineageStep(
            tag=r["tag"],
            tuple_key=r["tuple_key"],
            status=r["status"] or "",
            attempt=r["attempt"] if r["attempt"] is not None else 0,
            starttime=r["starttime"],
            endtime=r["endtime"],
        )
        for r in rows
    ]


def activation_durations(store: ProvenanceStore, wkfid: int) -> list[float]:
    """All finished activation durations (the paper's Fig. 5 histogram)."""
    rows = store.sql(
        """
        SELECT (t.endtime - t.starttime) AS seconds
        FROM hworkflow w, hactivity a, hactivation t
        WHERE w.wkfid = a.wkfid
          AND a.actid = t.actid
          AND t.status = 'FINISHED'
          AND w.wkfid = ?
        ORDER BY t.endtime
        """,
        (wkfid,),
    )
    return [r["seconds"] for r in rows]


def workflow_tet(store: ProvenanceStore, wkfid: int) -> float:
    """Total execution time of the workflow run, in seconds."""
    row = store.workflow_row(wkfid)
    if row["endtime"] is None or row["starttime"] is None:
        raise ValueError(f"workflow {wkfid} has not finished")
    return float(row["endtime"] - row["starttime"])
