"""``scidock`` command-line interface.

Subcommands:

* ``dock`` — dock receptor-ligand pairs for real and print the outcomes.
* ``worker`` — join a distributed-backend director as a worker node.
* ``sweep`` — run the simulated 2..128-core scalability experiment.
* ``table3`` — reproduce the paper's Table 3 on a pair subset.
* ``spec`` — print the SciDock XML specification.
* ``dataset`` — show the Table 2 dataset summary.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.analysis import collect_outcomes, compute_table3, format_table3, total_favorable
from repro.core.datasets import (
    CL0125_RECEPTORS,
    CP_LIGANDS,
    TABLE3_LIGANDS,
    pair_relation,
)
from repro.core.scidock import SciDockConfig, resume_scidock, run_scidock
from repro.core.spec import scidock_xml
from repro.perf.experiments import run_core_sweep


def _open_store(args: argparse.Namespace):
    """File-backed provenance store when ``--store`` was given, else None
    (run_scidock then creates the default in-memory store)."""
    if getattr(args, "store", None) is None:
        return None
    from repro.provenance.store import ProvenanceStore

    return ProvenanceStore(args.store, buffer_size=128, flush_interval=1.0)


def _exec_kwargs(args: argparse.Namespace) -> dict:
    """SciDockConfig execution settings shared by every docking command."""
    return {
        "workers": args.workers,
        "backend": args.backend,
        "seed": args.seed,
        "shared_maps": args.shared_maps,
        "map_cache": args.map_cache,
        "watchdog_timeout": args.watchdog_timeout,
        "retry_max_attempts": args.retry_max_attempts,
        "retry_base_delay": args.retry_base_delay,
        "inject_failure_rate": args.inject_failure_rate,
        "pipeline": args.pipeline,
        "scheduler": args.scheduler,
        "etables": args.etables,
        "etable_dr": args.etable_dr,
        "etable_rmax": args.etable_rmax,
        "speculation_quantile": args.speculation_quantile,
        "cost_prior": args.cost_prior,
        "elastic_pool": args.elastic_pool,
        "director": args.director,
        "min_nodes": args.min_nodes,
        "join_timeout": args.join_timeout,
        "batch_size": args.batch_size,
        "batch_linger": args.batch_linger,
        "compress_frames": args.compress_frames,
    }


def _cmd_dock(args: argparse.Namespace) -> int:
    config = SciDockConfig(scenario=args.scenario, **_exec_kwargs(args))
    store = _open_store(args)
    if args.resume is not None:
        if store is None:
            print(
                "--resume needs --store PATH (the database the crashed "
                "run was writing)",
                file=sys.stderr,
            )
            return 2
        print(f"resuming run {args.resume} from its journal ...")
        report, store = resume_scidock(args.resume, store, config)
        print(
            f"resumed as run {report.wkfid}: {report.replayed} activations "
            "replayed from the journal (zero recomputation), "
            f"{report.total_activations - report.replayed} executed"
        )
    else:
        receptors = args.receptors or list(CL0125_RECEPTORS[: args.n_receptors])
        ligands = args.ligands or list(TABLE3_LIGANDS[: args.n_ligands])
        pairs = pair_relation(receptors=receptors, ligands=ligands)
        print(f"docking {len(pairs)} pairs (scenario={args.scenario}) ...")
        report, store = run_scidock(pairs, config, store=store)
    outcomes = collect_outcomes(store, report.wkfid)
    for o in sorted(outcomes, key=lambda o: o.feb):
        mark = "*" if o.converged else " "
        print(
            f" {mark} {o.ligand}-{o.receptor} [{o.engine}] "
            f"FEB {o.feb:+7.2f} kcal/mol, RMSD {o.rmsd:6.1f} A"
        )
    print(
        f"TET {report.tet_seconds:.1f} s; {report.counts}; "
        f"blocked {report.blocked} (Hg), retried {report.retried}"
    )
    if report.nodes_joined:
        per_node = ", ".join(
            f"{node}={done}"
            for node, done in sorted(report.tuples_per_node.items())
        )
        print(
            f"nodes: {report.nodes_joined} joined, {report.nodes_lost} "
            f"lost; tuples per node: {per_node or 'none'}; wire "
            f"{report.wire_bytes_sent} B out / "
            f"{report.wire_bytes_received} B in"
        )
        if report.batches_sent:
            print(
                f"batching: {report.batches_sent} TASK_BATCH frames, "
                f"avg fill {report.avg_batch_fill:.1f} tasks/frame"
            )
        if report.wire_bytes_saved:
            print(
                f"compression: saved {report.wire_bytes_saved} B "
                f"({report.compression_ratio:.2f}x raw/wire)"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cores = tuple(args.cores)
    sweep = run_core_sweep(
        scenario=args.scenario, core_counts=cores, n_pairs=args.pairs,
        failure_rate=args.failure_rate, seed=args.seed,
    )
    print(f"scenario={args.scenario}, {args.pairs} pairs")
    print(f"{'cores':>6} {'TET (h)':>10} {'speedup':>8} {'eff':>6} {'improv%':>8}")
    for c, t, s, e, i in zip(
        sweep.core_counts, sweep.tets, sweep.speedups(),
        sweep.efficiencies(), sweep.improvements(),
    ):
        print(f"{c:>6} {t / 3600:>10.2f} {s:>8.2f} {e:>6.2f} {i:>8.1f}")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    receptors = list(CL0125_RECEPTORS[: args.n_receptors])
    rows_all = []
    for scenario in ("ad4", "vina"):
        pairs = pair_relation(receptors=receptors, ligands=list(TABLE3_LIGANDS))
        print(f"running {len(pairs)} pairs with {scenario} ...", file=sys.stderr)
        report, store = run_scidock(
            pairs,
            SciDockConfig(scenario=scenario, **_exec_kwargs(args)),
            store=_open_store(args),
        )
        outcomes = collect_outcomes(store, report.wkfid)
        rows_all.extend(compute_table3(outcomes, ligands=TABLE3_LIGANDS))
    print(format_table3(rows_all))
    for engine in ("autodock4", "vina"):
        print(f"total FEB(-) {engine}: {total_favorable(rows_all, engine)}")
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.dynamics.refine import refine_pose

    result = refine_pose(
        args.receptor,
        args.ligand,
        md_steps=args.md_steps,
        seeds=tuple(range(args.seeds)),
    )
    print(result.summary())
    return 0


def _cmd_qsar(args: argparse.Namespace) -> int:
    from repro.core.analysis import collect_outcomes
    from repro.qsar.screen import describe_model, qsar_screen

    receptors = list(CL0125_RECEPTORS[: args.n_receptors])
    train_ligands = list(CP_LIGANDS[: args.n_train_ligands])
    pairs = pair_relation(receptors=receptors, ligands=train_ligands)
    print(
        f"docking {len(pairs)} pairs to build the QSAR training set ...",
        file=sys.stderr,
    )
    report, store = run_scidock(
        pairs,
        SciDockConfig(scenario="vina", **_exec_kwargs(args)),
        store=_open_store(args),
    )
    training: dict[str, float] = {}
    for o in collect_outcomes(store, report.wkfid):
        if o.ligand not in training or o.feb < training[o.ligand]:
            training[o.ligand] = o.feb
    ranking = qsar_screen(training, CP_LIGANDS)
    print(f"cross-validated q2 = {ranking.q2:.2f} on {ranking.training_size} ligands")
    print(describe_model(ranking.model))
    print("predicted-best ligands:")
    for lig, feb in ranking.top(args.top):
        mark = "drug-like" if ranking.druglike[lig] else "non-drug-like"
        print(f"  {lig}: {feb:+.2f} kcal/mol ({mark})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import campaign_report

    receptors = args.receptors or list(CL0125_RECEPTORS[: args.n_receptors])
    ligands = args.ligands or list(TABLE3_LIGANDS[: args.n_ligands])
    pairs = pair_relation(receptors=receptors, ligands=ligands)
    print(f"running {len(pairs)} pairs ...", file=sys.stderr)
    report, store = run_scidock(
        pairs,
        SciDockConfig(scenario=args.scenario, **_exec_kwargs(args)),
        store=_open_store(args),
    )
    print(campaign_report(store, report.wkfid), end="")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.workflow.worker import WorkerNode

    node = WorkerNode(
        args.join,
        slots=args.slots,
        node_id=args.node_id,
        map_cache=args.map_cache,
    )
    return node.run()


def _cmd_spec(_args: argparse.Namespace) -> int:
    print(scidock_xml(), end="")
    return 0


def _cmd_dataset(_args: argparse.Namespace) -> int:
    print(f"clan Peptidase_CA (CL0125): {len(CL0125_RECEPTORS)} receptors, "
          f"{len(CP_LIGANDS)} ligands, {len(CL0125_RECEPTORS) * len(CP_LIGANDS)} pairs")
    print("receptors:", " ".join(CL0125_RECEPTORS))
    print("ligands:", " ".join(CP_LIGANDS))
    return 0


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    """Execution flags shared by every real-docking subcommand."""
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("threads", "processes", "distributed"),
        default="threads",
        help="activation executor: GIL-sharing threads, worker processes, "
        "or remote worker nodes behind a TCP director",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shared-maps", dest="shared_maps", action="store_true", default=None,
        help="publish receptor grid maps into a shared-memory artifact "
        "plane (default: auto, on for --backend processes)",
    )
    parser.add_argument(
        "--no-shared-maps", dest="shared_maps", action="store_false",
        help="disable the shared-memory artifact plane",
    )
    parser.add_argument(
        "--map-cache", metavar="DIR", default=None,
        help="persistent content-addressed map cache directory; repeated "
        "runs reuse maps instead of re-running AutoGrid",
    )
    parser.add_argument(
        "--watchdog-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock watchdog floor per activation (default 600); the "
        "deadline is max(floor, 10 x expected cost) and a hung activation "
        "is killed (processes) or cancelled/abandoned (threads)",
    )
    parser.add_argument(
        "--retry-max-attempts", type=int, default=3, metavar="N",
        help="activation attempt budget before a failure is terminal "
        "(1 = no retries)",
    )
    parser.add_argument(
        "--retry-base-delay", type=float, default=1.0, metavar="SECONDS",
        help="base retry backoff delay; doubles each retry up to the "
        "policy maximum",
    )
    parser.add_argument(
        "--inject-failure-rate", type=float, default=0.0, metavar="P",
        help="chaos testing: Bernoulli per-try activation failure "
        "probability injected into the real engine (0 disables)",
    )
    parser.add_argument(
        "--pipeline", dest="pipeline", action="store_true", default=True,
        help="per-tuple pipelined dataflow: each output tuple flows to "
        "the next activity immediately, barriers only at REDUCE "
        "(default)",
    )
    parser.add_argument(
        "--no-pipeline", dest="pipeline", action="store_false",
        help="restore per-activity barriers: every activity completes "
        "on all tuples before the next starts",
    )
    parser.add_argument(
        "--scheduler", choices=("fifo", "greedy"), default="fifo",
        help="dispatch-order policy: fifo (arrival order) or greedy "
        "(longest expected activation first)",
    )
    parser.add_argument(
        "--etables", dest="etables", action="store_true", default=False,
        help="table-driven energy kernels + cell-list neighbor pruning "
        "(faster map builds and pair sums; matches the analytic kernels "
        "within documented tolerance)",
    )
    parser.add_argument(
        "--no-etables", dest="etables", action="store_false",
        help="analytic reference kernels (default; bit-exact seed scoring)",
    )
    parser.add_argument(
        "--etable-dr", type=float, default=0.005, metavar="ANGSTROM",
        help="radial resolution of the energy lookup tables (default 0.005)",
    )
    parser.add_argument(
        "--etable-rmax", type=float, default=8.0, metavar="ANGSTROM",
        help="table extent / nonbonded cutoff for the table kernels "
        "(default 8.0); part of the map-cache key",
    )
    parser.add_argument(
        "--speculation-quantile", type=float, default=1.0, metavar="Q",
        help="straggler speculation: duplicate an attempt running past "
        "this learned tail quantile of its activity/size-class "
        "distribution (first completion wins; 1.0 disables, 0.95 is the "
        "usual setting)",
    )
    parser.add_argument(
        "--cost-prior", choices=("paper", "provenance"), default="paper",
        help="initial estimates for the online cost service: the "
        "paper's activity-mean table, or Query-1 statistics from prior "
        "runs in the provenance store",
    )
    parser.add_argument(
        "--elastic-pool", action="store_true", default=False,
        help="let the adaptive elasticity policy grow/shrink the real "
        "worker pool mid-run (bounded above by --workers)",
    )
    parser.add_argument(
        "--director", metavar="HOST:PORT", default=None,
        help="(--backend distributed) bind the director here; start "
        "worker nodes with: scidock worker --join HOST:PORT",
    )
    parser.add_argument(
        "--min-nodes", type=int, default=1, metavar="N",
        help="(--backend distributed) worker nodes to wait for before "
        "dispatching (default 1)",
    )
    parser.add_argument(
        "--join-timeout", type=float, default=60.0, metavar="SECONDS",
        help="(--backend distributed) how long to wait for --min-nodes "
        "nodes, or for capacity after every node died (default 60)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1, metavar="K",
        help="(--backend distributed) activation tuples per TASK_BATCH "
        "frame, amortizing per-frame wire overhead (default 1 = one "
        "frame per task, the legacy protocol)",
    )
    parser.add_argument(
        "--batch-linger", type=float, default=0.005, metavar="SECONDS",
        help="(--backend distributed) how long a partial batch waits "
        "for more members before shipping anyway (default 0.005)",
    )
    parser.add_argument(
        "--compress-frames", action="store_true",
        help="(--backend distributed) negotiate zlib compression of "
        "large frames (task batches, artifact bundles) with worker "
        "nodes that support it",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="file-backed provenance database (default: in-memory); a "
        "file-backed store makes the run journal durable, so a killed "
        "run can be continued with dock --resume",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scidock",
        description="SciDock molecular docking workflows in (simulated) HPC clouds",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dock = sub.add_parser("dock", help="dock pairs for real")
    dock.add_argument("--receptors", nargs="*", default=None)
    dock.add_argument("--ligands", nargs="*", default=None)
    dock.add_argument("--n-receptors", type=int, default=3)
    dock.add_argument("--n-ligands", type=int, default=2)
    dock.add_argument("--scenario", choices=("adaptive", "ad4", "vina"), default="adaptive")
    dock.add_argument(
        "--resume", type=int, default=None, metavar="WKFID",
        help="continue a crashed/killed run from its journal in --store: "
        "durably-completed activations are replayed with zero "
        "recomputation, only unfinished work executes",
    )
    _add_exec_args(dock)
    dock.set_defaults(fn=_cmd_dock)

    sweep = sub.add_parser("sweep", help="simulated core-count sweep (Figs 7-9)")
    sweep.add_argument("--scenario", choices=("adaptive", "ad4", "vina"), default="ad4")
    sweep.add_argument("--cores", nargs="*", type=int, default=[2, 4, 8, 16, 32, 64, 128])
    sweep.add_argument("--pairs", type=int, default=1000)
    sweep.add_argument("--failure-rate", type=float, default=0.10)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(fn=_cmd_sweep)

    table3 = sub.add_parser("table3", help="reproduce Table 3 on a subset")
    table3.add_argument("--n-receptors", type=int, default=20)
    _add_exec_args(table3)
    table3.set_defaults(fn=_cmd_table3)

    rep = sub.add_parser("report", help="run a campaign and print a markdown report")
    rep.add_argument("--receptors", nargs="*", default=None)
    rep.add_argument("--ligands", nargs="*", default=None)
    rep.add_argument("--n-receptors", type=int, default=3)
    rep.add_argument("--n-ligands", type=int, default=2)
    rep.add_argument("--scenario", choices=("adaptive", "ad4", "vina"), default="adaptive")
    _add_exec_args(rep)
    rep.set_defaults(fn=_cmd_report)

    refine = sub.add_parser("refine", help="redock + minimize + MD one pair")
    refine.add_argument("receptor")
    refine.add_argument("ligand")
    refine.add_argument("--md-steps", type=int, default=60)
    refine.add_argument("--seeds", type=int, default=2)
    refine.set_defaults(fn=_cmd_refine)

    qsar = sub.add_parser("qsar", help="ligand-based QSAR screening")
    qsar.add_argument("--n-receptors", type=int, default=3)
    qsar.add_argument("--n-train-ligands", type=int, default=8)
    _add_exec_args(qsar)
    qsar.add_argument("--top", type=int, default=5)
    qsar.set_defaults(fn=_cmd_qsar)

    worker = sub.add_parser(
        "worker", help="join a distributed-backend director as a worker node"
    )
    from repro.workflow.worker import parse_address

    worker.add_argument(
        "--join", type=parse_address, required=True, metavar="HOST:PORT",
        help="director address (the dock run's --director)",
    )
    worker.add_argument(
        "--slots", type=int, default=2,
        help="concurrent activation slots on this node (default: 2)",
    )
    worker.add_argument(
        "--node-id", default=None,
        help="stable node name (default: host-pid)",
    )
    worker.add_argument(
        "--map-cache", metavar="DIR", default=None,
        help="node-local content-addressed map cache directory",
    )
    worker.set_defaults(fn=_cmd_worker)

    spec = sub.add_parser("spec", help="print the SciDock XML specification")
    spec.set_defaults(fn=_cmd_spec)

    dataset = sub.add_parser("dataset", help="show the Table 2 dataset")
    dataset.set_defaults(fn=_cmd_dataset)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
