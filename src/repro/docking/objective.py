"""Vectorized-objective protocol for the docking searches.

The GA and Solis-Wets hot loops spend almost all their time evaluating
conformation vectors one at a time: pose the ligand, gather the grids,
sum the pair tables — each a handful of tiny numpy calls dominated by
Python dispatch. The batched scorer entry points
(:meth:`AD4Scorer.docking_energy_batch`,
:meth:`VinaScorer.search_energy_batch`) remove that overhead, but the
searches need a uniform way to ask "score this whole population" while
still accepting plain scalar callables.

That contract is the *vectorized objective*: any callable that also
exposes ``evaluate_batch(vectors) -> energies`` where ``vectors`` is a
``(P, D)`` batch of conformation genotypes and the result is a ``(P,)``
float array. Scalar semantics are preserved — ``obj(v)`` must equal
``obj.evaluate_batch(v[None])[0]`` bit-for-bit — so a search can switch
freely between the two forms without changing its trajectory.

Plain functions keep working everywhere: :func:`as_batch_objective`
wraps them in a loop-based adapter whose batch evaluation performs the
exact per-vector calls the search would have made itself.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.chem.torsions import TorsionTree
from repro.docking.conformation import coords_batch

#: The legacy scalar form: one genotype in, one energy out.
Objective = Callable[[np.ndarray], float]


@runtime_checkable
class VectorizedObjective(Protocol):
    """An objective that can score a whole genotype batch at once."""

    def __call__(self, vector: np.ndarray) -> float:
        """Energy of a single ``(D,)`` conformation vector."""

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Energies of a ``(P, D)`` genotype batch as a ``(P,)`` array."""


def supports_batch(objective: object) -> bool:
    """True when ``objective`` implements the vectorized protocol."""
    return callable(getattr(objective, "evaluate_batch", None))


class ScalarBatchAdapter:
    """Loop-based ``evaluate_batch`` over a plain scalar objective.

    The adapter performs exactly the per-vector calls a sequential
    search would have made, in the same order, so wrapping a scalar
    objective never changes results — it only normalizes the interface.
    """

    def __init__(self, fn: Objective) -> None:
        self.fn = fn

    def __call__(self, vector: np.ndarray) -> float:
        return float(self.fn(vector))

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        return np.array([float(self.fn(v)) for v in vectors])


def as_batch_objective(objective: Objective | VectorizedObjective) -> VectorizedObjective:
    """Coerce any objective to the vectorized protocol."""
    if supports_batch(objective):
        return objective  # type: ignore[return-value]
    return ScalarBatchAdapter(objective)


class PoseEnergyObjective:
    """Genotype batch -> pose batch -> energy batch, fully vectorized.

    Binds a ligand :class:`TorsionTree` to a batched energy function
    (e.g. ``AD4Scorer.docking_energy_batch`` or
    ``VinaScorer.search_energy_batch``). The scalar call is a batch of
    one, which keeps per-individual and population-at-once evaluation
    bit-for-bit identical — the property the golden-parity tests pin.
    """

    def __init__(
        self,
        tree: TorsionTree,
        energy_batch: Callable[[np.ndarray], np.ndarray],
        kernel: str = "analytic",
    ) -> None:
        self.tree = tree
        self.energy_batch = energy_batch
        #: Kernel mode of the bound scorer ("analytic"|"tables") —
        #: introspection/provenance only, never consulted in scoring.
        self.kernel = kernel

    def __call__(self, vector: np.ndarray) -> float:
        vector = np.asarray(vector, dtype=np.float64)
        return float(self.evaluate_batch(vector[None])[0])

    def evaluate_batch(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        return np.asarray(self.energy_batch(coords_batch(vectors, self.tree)))
