"""Local search operators: Solis-Wets (AD4) and BFGS (Vina).

Both operate on the flat conformation vector through a user-supplied
objective ``f(vector) -> float``; the engines close over their scorers.
When the objective implements the vectorized protocol
(:mod:`repro.docking.objective`), Solis-Wets evaluates the candidate
and its mirrored probe in a single batched call per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from repro.docking.objective import supports_batch

Objective = Callable[[np.ndarray], float]


@dataclass
class LocalSearchResult:
    vector: np.ndarray
    energy: float
    evaluations: int


def solis_wets(
    f: Objective,
    x0: np.ndarray,
    rng: np.random.Generator,
    *,
    max_steps: int = 50,
    rho: float = 1.0,
    rho_min: float = 0.01,
    expand_after: int = 5,
    contract_after: int = 3,
) -> LocalSearchResult:
    """Solis & Wets (1981) adaptive random-walk minimization.

    This is AD4's Lamarckian local-search operator: propose a Gaussian
    step, accept if it improves, try the mirrored step otherwise; expand
    the step size after consecutive successes, contract after consecutive
    failures, stop when ``rho`` underflows or the step budget is spent.

    With a vectorized objective the candidate and its mirror are scored
    eagerly in one two-pose batch per step (the mirror is nearly free
    once the batch is posed). The acceptance sequence — and therefore
    the trajectory — is identical to the lazy scalar path, and
    ``evaluations`` keeps counting only the values the sequential rule
    consumes, so evaluation budgets behave the same under both forms.
    """
    batched = supports_batch(f)
    x = np.asarray(x0, dtype=np.float64).copy()
    fx = float(f(x))
    evals = 1
    successes = failures = 0
    bias = np.zeros_like(x)
    for _ in range(max_steps):
        if rho < rho_min:
            break
        step = rng.normal(scale=rho, size=x.shape) + bias
        candidate = x + step
        if batched:
            pair = f.evaluate_batch(np.stack([candidate, x - step]))
            fc, fm_eager = float(pair[0]), float(pair[1])
        else:
            fc = float(f(candidate))
        evals += 1
        if fc < fx:
            x, fx = candidate, fc
            bias = 0.4 * step + 0.2 * bias
            successes += 1
            failures = 0
        else:
            mirrored = x - step
            fm = fm_eager if batched else float(f(mirrored))
            evals += 1
            if fm < fx:
                x, fx = mirrored, fm
                bias = bias - 0.4 * step
                successes += 1
                failures = 0
            else:
                successes = 0
                failures += 1
                bias *= 0.5
        if successes >= expand_after:
            rho *= 2.0
            successes = 0
        elif failures >= contract_after:
            rho *= 0.5
            failures = 0
    return LocalSearchResult(vector=x, energy=fx, evaluations=evals)


def bfgs_minimize(
    f: Objective,
    x0: np.ndarray,
    *,
    max_iterations: int = 40,
) -> LocalSearchResult:
    """Quasi-Newton refinement (Vina's local optimizer).

    Gradients are finite-differenced by scipy; the conformation space is
    small (6 + T dimensions) so this stays cheap.
    """
    evals = 0

    def counted(x: np.ndarray) -> float:
        nonlocal evals
        evals += 1
        return f(x)

    res = minimize(
        counted,
        np.asarray(x0, dtype=np.float64),
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "ftol": 1e-6},
    )
    return LocalSearchResult(
        vector=np.asarray(res.x), energy=float(res.fun), evaluations=evals
    )
