"""AutoDock Vina engine: iterated local search over the Vina score.

Mirrors ``vina --config``: exhaustiveness controls the number of
independent search runs, ``num_modes``/``energy_range`` filter the pose
set reported, and the output is the ranked mode table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.chem.geometry import rmsd
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.clustering import cluster_poses
from repro.docking.conformation import Conformation, DockingResult, Pose
from repro.docking.mc import ILSConfig, IteratedLocalSearch
from repro.docking.prepare import LigandPreparation, ReceptorPreparation
from repro.docking.scoring_vina import VinaScorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docking.etables import EtableSet
    from repro.docking.scoring_vina import VinaMaps


@dataclass
class VinaParameters:
    """Vina CLI-equivalent knobs."""

    exhaustiveness: int = 4
    num_modes: int = 9
    energy_range: float = 3.0
    ils: ILSConfig = field(default_factory=ILSConfig)
    rmsd_filter: float = 1.0  # min RMSD between reported modes

    def __post_init__(self) -> None:
        if self.exhaustiveness < 1:
            raise ValueError("exhaustiveness must be >= 1")
        if self.num_modes < 1:
            raise ValueError("num_modes must be >= 1")
        if self.energy_range < 0:
            raise ValueError("energy_range must be non-negative")


class Vina:
    """The Vina docking engine."""

    name = "vina"

    def __init__(
        self,
        receptor: ReceptorPreparation | Molecule,
        box: GridBox,
        params: VinaParameters | None = None,
        *,
        use_grid: bool = True,
        maps: "VinaMaps | None" = None,
        etables: "EtableSet | None" = None,
    ) -> None:
        self.receptor = (
            receptor.molecule if isinstance(receptor, ReceptorPreparation) else receptor
        )
        self.box = box
        self.params = params or VinaParameters()
        self.etables = etables
        #: Kernel mode the engine's scorers will run ("analytic"|"tables").
        self.kernel = "tables" if etables is not None else "analytic"
        if maps is not None:
            self.maps = maps
        elif use_grid:
            from repro.docking.scoring_vina import build_vina_maps

            self.maps = build_vina_maps(self.receptor, box, etables=etables)
        else:
            self.maps = None

    def dock(self, ligand: LigandPreparation, seed: int = 0) -> DockingResult:
        """Dock a prepared ligand; deterministic for a given seed."""
        started = time.perf_counter()
        scorer = VinaScorer(
            self.receptor,
            ligand.molecule,
            self.box,
            maps=self.maps,
            etables=self.etables,
        )
        tree = ligand.tree
        reference = tree.reference

        def objective(vector: np.ndarray) -> float:
            coords = Conformation(vector).coords(tree)
            return scorer.search_energy(coords)

        center_offset = self.box.center - reference[tree.root]
        extent = float(min(self.box.dimensions) / 2.0)

        # Copy the config: self.params.ils may be shared across
        # concurrently docking receptors, whose boxes differ.
        ils_config = replace(
            self.params.ils, translation_extent=max(1.0, extent * 0.8)
        )

        candidates: list[tuple[Conformation, float]] = []
        total_evals = 0
        for run in range(self.params.exhaustiveness):
            rng = np.random.default_rng((seed, run, 7919))
            ils = IteratedLocalSearch(objective, tree.n_torsions, ils_config)
            result = ils.run(rng, center=center_offset)
            total_evals += result.evaluations
            candidates.extend(result.minima)

        # Rank by the *reported* affinity (normalized intermolecular part).
        scored: list[Pose] = []
        for conf, _search_e in candidates:
            coords = conf.coords(tree)
            affinity = scorer.total(coords)
            scored.append(
                Pose(
                    conformation=conf,
                    coords=coords,
                    energy=affinity,
                    intermolecular=affinity,
                    intramolecular=scorer.intramolecular(coords),
                    rmsd_from_input=rmsd(coords, reference),
                )
            )
        scored.sort()
        # Mode filtering: keep poses separated by rmsd_filter, within
        # energy_range of the best, up to num_modes.
        modes: list[Pose] = []
        for pose in scored:
            if len(modes) >= self.params.num_modes:
                break
            if modes and pose.energy - modes[0].energy > self.params.energy_range:
                break
            if all(
                rmsd(pose.coords, m.coords) >= self.params.rmsd_filter for m in modes
            ):
                modes.append(pose)
        if not modes and scored:
            modes = [scored[0]]
        clusters = cluster_poses(modes)
        return DockingResult(
            receptor_name=self.receptor.name,
            ligand_name=ligand.molecule.name,
            engine=self.name,
            poses=modes,
            clusters=clusters,
            evaluations=total_evals,
            runtime_seconds=time.perf_counter() - started,
            seed=seed,
        )
