"""AutoDock 4 engine: Lamarckian GA over the AD4 grid-based score.

Mirrors ``autodock4``'s run loop: for each of ``ga_runs`` independent GA
runs the best individual becomes a docked conformation; poses are then
clustered by RMSD and written to a DLG log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.chem.geometry import rmsd
from repro.docking.autogrid import GridMaps
from repro.docking.clustering import DEFAULT_TOLERANCE, cluster_poses
from repro.docking.conformation import Conformation, DockingResult, Pose
from repro.docking.ga import GAConfig, LamarckianGA
from repro.docking.local_search import solis_wets
from repro.docking.objective import PoseEnergyObjective
from repro.docking.prepare import LigandPreparation
from repro.docking.scoring_ad4 import AD4Scorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docking.etables import EtableSet


@dataclass
class AD4Parameters:
    """Engine-level knobs (the DPF subset our engine honors)."""

    ga_runs: int = 4
    ga: GAConfig = field(default_factory=GAConfig)
    cluster_tolerance: float = DEFAULT_TOLERANCE
    final_refine_steps: int = 150

    def __post_init__(self) -> None:
        if self.ga_runs < 1:
            raise ValueError("ga_runs must be >= 1")


class AutoDock4:
    """The AD4 docking engine bound to a set of grid maps."""

    name = "autodock4"

    def __init__(
        self,
        maps: GridMaps,
        params: AD4Parameters | None = None,
        etables: "EtableSet | None" = None,
    ) -> None:
        self.maps = maps
        self.params = params or AD4Parameters()
        self.etables = etables
        #: Kernel mode the engine's scorers will run ("analytic"|"tables").
        self.kernel = "tables" if etables is not None else "analytic"

    def dock(
        self,
        ligand: LigandPreparation,
        seed: int = 0,
    ) -> DockingResult:
        """Dock a prepared ligand; deterministic for a given seed."""
        started = time.perf_counter()
        scorer = AD4Scorer(self.maps, ligand.molecule, etables=self.etables)
        tree = ligand.tree
        reference = tree.reference

        # Vectorized objective: the GA scores each generation (and
        # Solis-Wets its probe pairs) through one batched pose + grid
        # gather instead of per-individual Python round trips.
        objective = PoseEnergyObjective(
            tree, scorer.docking_energy_batch, kernel=scorer.kernel
        )

        # The GA searches translations around the box center relative to
        # the ligand's root reference position.
        center_offset = self.maps.box.center - reference[tree.root]
        extent = float(min(self.maps.box.dimensions) / 2.0)

        # Initialize inside the pocket half of the box: AD4 samples the
        # whole box, but most of it is the repulsive receptor wall. Copy
        # the config: self.params.ga may be shared across concurrently
        # docking receptors, whose boxes differ.
        ga_config = replace(self.params.ga, translation_extent=max(1.0, extent * 0.5))

        poses: list[Pose] = []
        total_evals = 0
        for run in range(self.params.ga_runs):
            rng = np.random.default_rng((seed, run))
            ga = LamarckianGA(objective, tree.n_torsions, ga_config)
            result = ga.run(rng, center=center_offset)
            total_evals += result.evaluations
            # Final deep local search on the run's champion (AD4 refines
            # the best individual before reporting it).
            refined = solis_wets(
                objective,
                result.best.vector,
                rng,
                max_steps=self.params.final_refine_steps,
            )
            total_evals += refined.evaluations
            if refined.energy < result.best_energy:
                conf = Conformation(refined.vector).normalized()
            else:
                conf = result.best
            coords = conf.coords(tree)
            terms = scorer.score(coords)
            poses.append(
                Pose(
                    conformation=conf,
                    coords=coords,
                    energy=terms.total,
                    intermolecular=terms.intermolecular,
                    intramolecular=terms.intramolecular,
                    torsional=terms.torsional,
                    rmsd_from_input=rmsd(coords, reference),
                )
            )
        clusters = cluster_poses(poses, self.params.cluster_tolerance)
        return DockingResult(
            receptor_name=self.maps.receptor_name,
            ligand_name=ligand.molecule.name,
            engine=self.name,
            poses=sorted(poses),
            clusters=clusters,
            evaluations=total_evals,
            runtime_seconds=time.perf_counter() - started,
            seed=seed,
        )
