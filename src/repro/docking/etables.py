"""Table-driven pair potentials: precomputed energy-vs-distance rows.

Real AutoDock 4 never evaluates the analytic 12-6/12-10, dielectric and
desolvation expressions in its hot loops — it tabulates each per-type-
pair energy once on a fine radial grid and scores by lookup, and GPU
docking stacks keep the same kernel design. This module reproduces that
layer for both force fields:

* **AD4** — per-type-pair smoothed/clamped LJ & H-bond rows (weights
  folded in), one shared screened-Coulomb *factor* row
  (``332.06363 / (eps(r) r)``; charge products multiply at lookup, the
  magnitude clamp applies after), the Gaussian desolvation envelope,
  and combined AutoGrid rows carrying the charge-independent part of
  the pair desolvation term.
* **Vina** — per radius-sum-bucket rows of the five Vina terms
  (gauss1 + gauss2 + repulsion as the unconditional base row;
  hydrophobic and H-bond ramps as separate mask-gated rows).

Evaluation is vectorized linear interpolation over ``(K rows, B bins)``
matrices. Tables are **cutoff-consistent**: contributions beyond
``EtableConfig.r_max`` are dropped, exactly like AutoGrid's NBC cutoff
(the analytic AD4 intramolecular path has no cutoff, which is the
dominant component of the documented table-vs-analytic tolerance).

One :class:`EtableSet` per :class:`EtableConfig` is cached process-wide
(:func:`shared_etables`), so every scorer, map build and worker
activation in a process shares the same rows. The config participates
in map-cache fingerprints (:meth:`EtableConfig.fingerprint`): flipping
resolution or cutoff invalidates persisted ``.npz`` maps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.chem.elements import AUTODOCK_TYPES
from repro.docking import forcefield as ff

#: Default radial resolution (Angstrom per bin). 0.005 A keeps linear
#: interpolation of the steep LJ wall within a fraction of a percent.
DEFAULT_DR = 0.005

#: Default table extent == AutoGrid's nonbonded cutoff.
DEFAULT_RMAX = ff.NB_CUTOFF

#: AD4's charge-dependent solvation parameter (qsolpar).
QSOLPAR = 0.01097


@dataclass(frozen=True)
class EtableConfig:
    """Radial-grid geometry of one table set (part of cache keys)."""

    dr: float = DEFAULT_DR
    r_max: float = DEFAULT_RMAX

    def __post_init__(self) -> None:
        if self.dr <= 0:
            raise ValueError("dr must be positive")
        if self.r_max <= self.dr:
            raise ValueError("r_max must exceed dr")

    @property
    def n_bins(self) -> int:
        """Samples per row; one pad bin keeps ``i0 + 1`` in range."""
        return int(round(self.r_max / self.dr)) + 2

    def r_grid(self) -> np.ndarray:
        return np.arange(self.n_bins) * self.dr

    def fingerprint(self, base: str) -> str:
        """Extend a force-field fingerprint with the kernel geometry.

        Any change to table resolution or cutoff changes map contents,
        so it must change content-addressed map-cache keys too.
        """
        return f"{base}/etables:dr={self.dr}:rmax={self.r_max}"


# -- build accounting ---------------------------------------------------------

_BUILD_LOCK = threading.Lock()
_BUILD_SECONDS = 0.0
_BUILD_ROWS = 0


def _note_build(seconds: float, rows: int) -> None:
    global _BUILD_SECONDS, _BUILD_ROWS
    with _BUILD_LOCK:
        _BUILD_SECONDS += seconds
        _BUILD_ROWS += rows


def build_seconds() -> float:
    """Cumulative table-build wall time in this process."""
    with _BUILD_LOCK:
        return _BUILD_SECONDS


def build_stats() -> dict:
    with _BUILD_LOCK:
        return {"seconds": _BUILD_SECONDS, "rows": _BUILD_ROWS}


# -- interpolation kernel -----------------------------------------------------


def _interp_rows(
    matrix: np.ndarray, rows: np.ndarray, r: np.ndarray, dr: float
) -> np.ndarray:
    """Linear interpolation of per-row tables at distances ``r``.

    ``matrix`` is ``(K, B)``; ``rows`` must broadcast against ``r``.
    Indices clamp to the table, so out-of-range distances hold the end
    value — callers gate the cutoff explicitly.
    """
    x = np.asarray(r, dtype=np.float64) * (1.0 / dr)
    x = np.clip(x, 0.0, matrix.shape[1] - 1.000001)
    i0 = x.astype(np.intp)
    t = x - i0
    v0 = matrix[rows, i0]
    v1 = matrix[rows, i0 + 1]
    return v0 + (v1 - v0) * t


def _interp_1d(table: np.ndarray, r: np.ndarray, dr: float) -> np.ndarray:
    x = np.asarray(r, dtype=np.float64) * (1.0 / dr)
    x = np.clip(x, 0.0, table.shape[0] - 1.000001)
    i0 = x.astype(np.intp)
    t = x - i0
    v0 = table[i0]
    v1 = table[i0 + 1]
    return v0 + (v1 - v0) * t


class AD4Etables:
    """AD4 energy rows on a shared radial grid.

    Rows are built lazily per requested type pair and appended to a
    growing ``(K, B)`` matrix; scorers hold integer row indices and
    evaluate whole pair tables in one interpolation call.
    """

    def __init__(self, config: EtableConfig) -> None:
        self.config = config
        t0 = time.perf_counter()
        r = config.r_grid()
        rsafe = np.maximum(r, 0.01)
        #: Screened Coulomb factor 332.06363 / (eps(r) r); multiply by
        #: q_i q_j and clamp at lookup.
        self.estat_factor = ff._ELECSCALE / (
            ff.mehler_solmajer_dielectric(rsafe) * rsafe
        )
        #: Gaussian desolvation envelope exp(-r^2 / 2 sigma^2).
        self.envelope = np.exp(-(r**2) / (2.0 * ff.DESOLV_SIGMA**2))
        self._r = r
        self._rows: dict[tuple, int] = {}
        self._row_list: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None
        self._lock = threading.RLock()
        _note_build(time.perf_counter() - t0, rows=2)

    # -- row construction ----------------------------------------------------
    def _add_row(self, key: tuple, build) -> int:
        with self._lock:
            idx = self._rows.get(key)
            if idx is not None:
                return idx
            t0 = time.perf_counter()
            row = np.asarray(build(), dtype=np.float64)
            idx = len(self._row_list)
            self._row_list.append(row)
            self._rows[key] = idx
            self._matrix = None
            _note_build(time.perf_counter() - t0, rows=1)
            return idx

    def vdw_row(self, type_i: str, type_j: str) -> int:
        """Weighted smoothed/clamped LJ or 12-10 H-bond row (intra use)."""
        ti, tj = sorted((type_i, type_j))
        key = ("vdw", ti, tj)

        def build() -> np.ndarray:
            p = ff.pair_params(ti, tj)
            w = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
            return ff.vdw_energy(self._r, p) * w

        return self._add_row(key, build)

    def grid_row(self, lig_type: str, rec_type: str) -> int:
        """AutoGrid affinity row: weighted vdW/H-bond plus the
        charge-independent part of the AD4 pair desolvation term."""
        key = ("grid", *sorted((lig_type, rec_type)))

        def build() -> np.ndarray:
            p = ff.pair_params(lig_type, rec_type)
            w = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
            tl, tr = AUTODOCK_TYPES[lig_type], AUTODOCK_TYPES[rec_type]
            desolv = (tl.solpar * tr.vol + tr.solpar * tl.vol) * self.envelope
            return ff.vdw_energy(self._r, p) * w + ff.FE_COEFF_DESOLV * desolv

        return self._add_row(key, build)

    @property
    def matrix(self) -> np.ndarray:
        with self._lock:
            if self._matrix is None:
                self._matrix = (
                    np.stack(self._row_list)
                    if self._row_list
                    else np.zeros((1, self.config.n_bins))
                )
            return self._matrix

    # -- evaluation ----------------------------------------------------------
    def eval_rows(self, rows: np.ndarray, r: np.ndarray) -> np.ndarray:
        """Interpolated row energies, zero beyond the cutoff."""
        e = _interp_rows(self.matrix, rows, r, self.config.dr)
        return np.where(r <= self.config.r_max, e, 0.0)

    def eval_estat(self, qq: np.ndarray, r: np.ndarray) -> np.ndarray:
        """Clamped screened Coulomb energy (unweighted), cutoff-gated."""
        e = np.clip(
            np.asarray(qq) * _interp_1d(self.estat_factor, r, self.config.dr),
            -ff.ESTAT_CLAMP,
            ff.ESTAT_CLAMP,
        )
        return np.where(r <= self.config.r_max, e, 0.0)

    def eval_estat_factor(self, r: np.ndarray) -> np.ndarray:
        """Raw per-unit-charge factor (AutoGrid's electrostatic map)."""
        return _interp_1d(self.estat_factor, r, self.config.dr)

    def eval_envelope(self, r: np.ndarray) -> np.ndarray:
        return _interp_1d(self.envelope, r, self.config.dr)


class VinaEtables:
    """Vina term rows bucketed by the pair's radius sum.

    Distinct xs-radius sums are few (tens), so each bucket gets three
    rows on the shared r-grid: the unconditional base
    (gauss1 + gauss2 + repulsion, weights folded), the hydrophobic ramp
    and the H-bond ramp (gated by per-pair masks at lookup).
    """

    def __init__(self, config: EtableConfig) -> None:
        self.config = config
        self._r = config.r_grid()
        self._rows: dict[float, int] = {}
        self._base: list[np.ndarray] = []
        self._hydro: list[np.ndarray] = []
        self._hb: list[np.ndarray] = []
        self._base_m: np.ndarray | None = None
        self._hydro_m: np.ndarray | None = None
        self._hb_m: np.ndarray | None = None
        self._lock = threading.RLock()

    def row_for(self, rsum: float) -> int:
        key = round(float(rsum), 3)
        with self._lock:
            idx = self._rows.get(key)
            if idx is not None:
                return idx
            t0 = time.perf_counter()
            from repro.docking import scoring_vina as sv

            d = self._r - key
            base = (
                sv.W_GAUSS1 * np.exp(-((d / 0.5) ** 2))
                + sv.W_GAUSS2 * np.exp(-(((d - 3.0) / 2.0) ** 2))
                + sv.W_REPULSION * np.where(d < 0.0, d * d, 0.0)
            )
            hydro = sv.W_HYDROPHOBIC * np.clip(1.5 - d, 0.0, 1.0)
            hb = sv.W_HBOND * np.clip(-d / 0.7, 0.0, 1.0)
            idx = len(self._base)
            self._base.append(base)
            self._hydro.append(hydro)
            self._hb.append(hb)
            self._rows[key] = idx
            self._base_m = self._hydro_m = self._hb_m = None
            _note_build(time.perf_counter() - t0, rows=3)
            return idx

    def rows_for(self, rsums: np.ndarray) -> np.ndarray:
        """Row indices for an array of radius sums (any shape)."""
        rsums = np.asarray(rsums, dtype=np.float64)
        keys = np.round(rsums, 3)
        out = np.empty(keys.shape, dtype=np.intp)
        for v in np.unique(keys):
            out[keys == v] = self.row_for(float(v))
        return out

    def _matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        with self._lock:
            if self._base_m is None:
                if self._base:
                    self._base_m = np.stack(self._base)
                    self._hydro_m = np.stack(self._hydro)
                    self._hb_m = np.stack(self._hb)
                else:
                    z = np.zeros((1, self.config.n_bins))
                    self._base_m = self._hydro_m = self._hb_m = z
            return self._base_m, self._hydro_m, self._hb_m

    def eval(
        self,
        rows: np.ndarray,
        r: np.ndarray,
        hydro_pair: np.ndarray,
        hbond_pair: np.ndarray,
    ) -> np.ndarray:
        """Weighted Vina pair energy via table lookup, cutoff-gated."""
        base_m, hydro_m, hb_m = self._matrices()
        dr = self.config.dr
        e = _interp_rows(base_m, rows, r, dr)
        e = e + hydro_pair * _interp_rows(hydro_m, rows, r, dr)
        e = e + hbond_pair * _interp_rows(hb_m, rows, r, dr)
        return np.where(r <= self.config.r_max, e, 0.0)


class EtableSet:
    """One process-shared bundle of AD4 + Vina tables for one config."""

    def __init__(self, config: EtableConfig | None = None) -> None:
        self.config = config or EtableConfig()
        self.ad4 = AD4Etables(self.config)
        self.vina = VinaEtables(self.config)


_REGISTRY: dict[EtableConfig, EtableSet] = {}
_REGISTRY_LOCK = threading.Lock()


def shared_etables(config: EtableConfig | None = None) -> EtableSet:
    """The process-wide :class:`EtableSet` for ``config``.

    Keyed by the config alone — the force-field constants baked into the
    rows are module-level constants, captured separately by the cache
    fingerprints (:data:`~repro.docking.forcefield.FF_VERSION` and
    :data:`~repro.docking.scoring_vina.VINA_FF_VERSION`).
    """
    config = config or EtableConfig()
    with _REGISTRY_LOCK:
        cached = _REGISTRY.get(config)
        if cached is None:
            cached = EtableSet(config)
            _REGISTRY[config] = cached
        return cached
