"""Docking substrate: AutoGrid, AutoDock 4 (Lamarckian GA) and Vina.

From-scratch reimplementations of the programs SciDock orchestrates:

* :mod:`repro.docking.prepare` — MGLTools-equivalent preparation scripts
  (``prepare_ligand``, ``prepare_receptor``, ``prepare_gpf``,
  ``prepare_dpf``, Vina config writer).
* :mod:`repro.docking.autogrid` — AutoGrid affinity/electrostatic/
  desolvation map generation over a :class:`~repro.docking.box.GridBox`.
* :mod:`repro.docking.autodock` — AD4: Lamarckian genetic algorithm over
  the AD4 empirical free-energy function, grid-interpolated.
* :mod:`repro.docking.vina` — AutoDock Vina: iterated local search with
  the Vina scoring function, computed atom-pairwise.
"""

from repro.docking.box import GridBox
from repro.docking.conformation import Conformation, DockingResult, Pose
from repro.docking.autogrid import AutoGrid, GridMaps
from repro.docking.autodock import AutoDock4, AD4Parameters
from repro.docking.vina import Vina, VinaParameters
from repro.docking.flex import FlexibleVina, select_flexible_residues
from repro.docking.prepare import (
    LigandPreparation,
    ReceptorPreparation,
    prepare_dpf,
    prepare_gpf,
    prepare_ligand,
    prepare_receptor,
    prepare_vina_config,
)

__all__ = [
    "GridBox",
    "Conformation",
    "Pose",
    "DockingResult",
    "AutoGrid",
    "GridMaps",
    "AutoDock4",
    "AD4Parameters",
    "Vina",
    "VinaParameters",
    "FlexibleVina",
    "select_flexible_residues",
    "prepare_ligand",
    "prepare_receptor",
    "prepare_gpf",
    "prepare_dpf",
    "prepare_vina_config",
    "LigandPreparation",
    "ReceptorPreparation",
]
