"""Lamarckian genetic algorithm (AD4's global search).

Morris et al. (1998): a generational GA over conformation genotypes with
proportional selection, two-point/arithmetic crossover, Cauchy mutation,
elitism, and a Solis-Wets local search applied to a fraction of each
generation whose *improved genotype is written back* (the Lamarckian
step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.docking.conformation import Conformation
from repro.docking.local_search import solis_wets
from repro.docking.objective import VectorizedObjective, as_batch_objective

Objective = Callable[[np.ndarray], float]


@dataclass
class GAConfig:
    """Tunable knobs; defaults are scaled-down AD4 defaults.

    AD4 ships with population 150 / 2.5M evaluations; a pure-Python
    reproduction uses smaller budgets by default and exposes everything
    for the benchmarks to sweep.
    """

    population_size: int = 50
    generations: int = 20
    elitism: int = 1
    crossover_rate: float = 0.8
    mutation_rate: float = 0.02
    local_search_rate: float = 0.06
    local_search_steps: int = 30
    translation_extent: float = 5.0
    max_evaluations: int | None = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        for name in ("crossover_rate", "mutation_rate", "local_search_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {v}")


@dataclass
class GAResult:
    best: Conformation
    best_energy: float
    evaluations: int
    history: list[float] = field(default_factory=list)
    final_population: list[tuple[Conformation, float]] = field(default_factory=list)


class LamarckianGA:
    """The search loop. ``run`` is deterministic given the Generator.

    The objective may be a plain scalar callable or implement the
    vectorized protocol (:mod:`repro.docking.objective`); either way the
    whole population is scored through one ``evaluate_batch`` call per
    generation, so a vectorized objective turns the fitness sweep into a
    handful of numpy calls instead of ``population_size`` Python round
    trips. Scalar objectives are wrapped in a loop-based adapter, which
    performs the exact per-individual calls the old loop made — the GA
    trajectory is identical for both forms given the same seed.
    """

    def __init__(
        self,
        objective: Objective | VectorizedObjective,
        n_torsions: int,
        config: GAConfig | None = None,
    ):
        self.objective = objective
        self._batch = as_batch_objective(objective)
        self.n_torsions = n_torsions
        self.config = config or GAConfig()
        self._evals = 0

    # -- operators --------------------------------------------------------
    def _eval_population(self, vectors: list[np.ndarray]) -> np.ndarray:
        """Fitness of a whole generation in one batched objective call."""
        self._evals += len(vectors)
        return np.asarray(
            self._batch.evaluate_batch(np.stack(vectors)), dtype=np.float64
        )

    def _select(self, fitness: np.ndarray, rng: np.random.Generator) -> int:
        """Linear-rank proportional selection (robust to energy scale)."""
        order = np.argsort(fitness)  # ascending energy = best first
        ranks = np.empty_like(order)
        ranks[order] = np.arange(len(fitness))
        weights = (len(fitness) - ranks).astype(np.float64)
        weights /= weights.sum()
        return int(rng.choice(len(fitness), p=weights))

    def _crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Two-point crossover on gene blocks + arithmetic blend on breaks."""
        child = a.copy()
        n = a.size
        p1, p2 = sorted(rng.integers(0, n + 1, size=2).tolist())
        child[p1:p2] = b[p1:p2]
        return child

    def _mutate(self, vec: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Cauchy-distributed gene mutation (AD4 uses Cauchy deviates)."""
        out = vec.copy()
        mask = rng.random(vec.size) < self.config.mutation_rate
        if mask.any():
            cauchy = rng.standard_cauchy(size=int(mask.sum()))
            scales = np.ones(vec.size)
            scales[:3] = 1.0  # translation, Angstrom
            scales[3:7] = 0.2  # quaternion components
            scales[7:] = 0.5  # torsions, radians
            out[mask] += np.clip(cauchy, -4, 4) * scales[mask]
        return out

    # -- main loop ----------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        center: np.ndarray | None = None,
    ) -> GAResult:
        cfg = self.config
        self._evals = 0
        pop = [
            Conformation.random(
                self.n_torsions, rng, cfg.translation_extent, center
            ).normalized()
            for _ in range(cfg.population_size)
        ]
        vectors = [c.vector for c in pop]
        fitness = self._eval_population(vectors)
        history = [float(fitness.min())]

        for _gen in range(cfg.generations):
            if cfg.max_evaluations is not None and self._evals >= cfg.max_evaluations:
                break
            order = np.argsort(fitness)
            new_vectors: list[np.ndarray] = [
                vectors[i].copy() for i in order[: cfg.elitism]
            ]
            while len(new_vectors) < cfg.population_size:
                pa = vectors[self._select(fitness, rng)]
                if rng.random() < cfg.crossover_rate:
                    pb = vectors[self._select(fitness, rng)]
                    child = self._crossover(pa, pb, rng)
                else:
                    child = pa.copy()
                child = self._mutate(child, rng)
                new_vectors.append(Conformation(child).normalized().vector)
            vectors = new_vectors
            fitness = self._eval_population(vectors)

            # Lamarckian step: local search writes back into the genotype.
            n_ls = max(1, int(cfg.local_search_rate * cfg.population_size))
            candidates = np.argsort(fitness)[:n_ls]
            for idx in candidates:
                res = solis_wets(
                    self.objective,
                    vectors[idx],
                    rng,
                    max_steps=cfg.local_search_steps,
                )
                self._evals += res.evaluations
                if res.energy < fitness[idx]:
                    # Write the raw optimized genotype back: normalizing
                    # here would desynchronize genotype and stored fitness
                    # for objectives that are not quaternion-scale
                    # invariant (the posing path normalizes on its own).
                    vectors[idx] = res.vector
                    fitness[idx] = res.energy
            history.append(float(fitness.min()))

        best_idx = int(np.argmin(fitness))
        return GAResult(
            best=Conformation(vectors[best_idx]).normalized(),
            best_energy=float(fitness[best_idx]),
            evaluations=self._evals,
            history=history,
            final_population=[
                (Conformation(v).normalized(), float(f))
                for v, f in zip(vectors, fitness)
            ],
        )
