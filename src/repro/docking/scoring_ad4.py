"""AD4 empirical free-energy scoring.

The intermolecular part reads the AutoGrid maps. For speed the scorer
collapses, per ligand atom, the three relevant grids into one *per-atom
map stack*::

    M_i = affinity[type_i] + W_estat * q_i * E + |q_i| * D

so a pose evaluation is a single vectorized trilinear gather over all
ligand atoms — the hot path of the Lamarckian GA. The intramolecular
part is a flat pair table (1-4 and beyond) evaluated in one expression.

The reported FEB follows AD4.2's default ``unbound_model = bound``:
intermolecular + torsional; the internal-energy *change* only steers the
search (``docking_energy``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.chem.molecule import Molecule
from repro.docking import forcefield as ff
from repro.docking.autogrid import GridMaps
from repro.docking.neighbors import bond_separation_pairs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docking.etables import EtableSet


class ScoringError(ValueError):
    """Raised for un-scoreable inputs."""


@dataclass
class AD4Terms:
    """Energy breakdown in kcal/mol."""

    vdw_hb_desolv: float
    electrostatic: float
    intramolecular: float
    torsional: float

    @property
    def intermolecular(self) -> float:
        return self.vdw_hb_desolv + self.electrostatic

    @property
    def total(self) -> float:
        """Reported FEB.

        AD4.2's default ``unbound_model = bound`` makes the internal-energy
        contribution cancel exactly in the reported free energy, so the
        estimate is intermolecular + torsional. The intramolecular delta
        still steers the search via :attr:`docking_energy`.
        """
        return self.intermolecular + self.torsional

    @property
    def docking_energy(self) -> float:
        """Search objective: includes the internal-energy change."""
        return self.intermolecular + self.intramolecular + self.torsional


class AD4Scorer:
    """Grid-based AD4 scorer bound to one (receptor maps, ligand) pair.

    ``etables`` switches the intramolecular kernel from the analytic
    12-6/12-10 + Mehler-Solmajer expressions to precomputed lookup rows
    (see :mod:`repro.docking.etables`). The analytic path is the
    bit-exact reference; table mode matches it within the documented
    tolerance and applies the nonbonded cutoff to intramolecular pairs
    (as real AD4's internal-energy tables do).
    """

    def __init__(
        self,
        maps: GridMaps,
        ligand: Molecule,
        etables: "EtableSet | None" = None,
    ) -> None:
        self.maps = maps
        self.ligand = ligand
        self._etables = etables
        #: Kernel mode label surfaced in provenance: "analytic"|"tables".
        self.kernel = "tables" if etables is not None else "analytic"
        self.types: list[str] = []
        for a in ligand.atoms:
            if a.autodock_type is None:
                raise ScoringError(
                    f"ligand atom {a.name} has no AutoDock type; run "
                    "prepare_ligand first"
                )
            if a.autodock_type not in maps.affinity:
                raise ScoringError(
                    f"grid maps lack type {a.autodock_type!r} "
                    f"(have {maps.atom_types})"
                )
            self.types.append(a.autodock_type)
        self.charges = np.array([a.charge for a in ligand.atoms])
        self.abs_charges = np.abs(self.charges)
        self.torsdof = int(ligand.metadata.get("torsdof", 0))

        # Per-atom collapsed map stacks; electrostatics separate only so
        # the term breakdown stays reportable.
        n = len(ligand.atoms)
        shape = maps.box.shape
        self._stack_affinity = np.empty((n, *shape))
        self._stack_elec = np.empty((n, *shape))
        for i, (t, q, aq) in enumerate(zip(self.types, self.charges, self.abs_charges)):
            self._stack_affinity[i] = maps.affinity[t] + aq * maps.desolvation
            self._stack_elec[i] = ff.FE_COEFF_ESTAT * q * maps.electrostatic
        self._shape = np.array(shape)

        # Flat intramolecular pair tables.
        pairs = self._nonbonded_pairs(ligand)
        self._pair_i = pairs[:, 0]
        self._pair_j = pairs[:, 1]
        cA = np.empty(len(pairs))
        cB = np.empty(len(pairs))
        is10 = np.zeros(len(pairs), dtype=bool)
        w = np.empty(len(pairs))
        req = np.empty(len(pairs))
        for k, (a, b) in enumerate(pairs):
            p = ff.pair_params(self.types[a], self.types[b])
            cA[k], cB[k] = p.cA, p.cB
            is10[k] = p.n == 10
            w[k] = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
            req[k] = p.req
        self._pair_cA, self._pair_cB = cA, cB
        self._pair_is10, self._pair_w = is10, w
        self._pair_req = req
        self._pair_qq = self.charges[self._pair_i] * self.charges[self._pair_j]

        # Table kernel: one lookup-row index per intramolecular pair.
        if etables is not None:
            ad4t = etables.ad4
            self._pair_rows = np.array(
                [ad4t.vdw_row(self.types[a], self.types[b]) for a, b in pairs],
                dtype=np.intp,
            )

        # AD4's FEB is a bound-minus-unbound difference: the unbound
        # reference internal energy (input geometry) is subtracted so the
        # intramolecular term reports only the conformational *change*.
        self._intra_reference = 0.0
        self._intra_reference = self._intra_raw(ligand.coords)

    @staticmethod
    def _nonbonded_pairs(mol: Molecule) -> np.ndarray:
        """Ligand atom pairs >= 3 bonds apart (1-4 and beyond).

        Served from the process-wide topology memo: rebuilding scorers
        per activation no longer redoes the O(n^2) BFS walk.
        """
        return bond_separation_pairs(mol, 3)

    # -- grid gather -----------------------------------------------------------
    def _gather(self, stack: np.ndarray, coords: np.ndarray) -> float:
        """Trilinear interpolation of per-atom maps, summed over atoms."""
        return float(self._gather_batch(stack, coords[None])[0])

    def _gather_batch(self, stack: np.ndarray, coords: np.ndarray) -> np.ndarray:
        """Batched gather: ``(P, n_atoms, 3) -> (P,)`` summed map values.

        The scalar :meth:`_gather` is a batch of one, so per-pose and
        population evaluation agree bit-for-bit.
        """
        f = (coords - self.maps.box.minimum) / self.maps.box.spacing
        f = np.clip(f, 0.0, self._shape - 1.000001)
        i0 = f.astype(np.intp)
        t = f - i0
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = x0 + 1, y0 + 1, z0 + 1
        tx, ty, tz = t[..., 0], t[..., 1], t[..., 2]
        n = np.arange(stack.shape[0])[None, :]
        c00 = stack[n, x0, y0, z0] * (1 - tx) + stack[n, x1, y0, z0] * tx
        c10 = stack[n, x0, y1, z0] * (1 - tx) + stack[n, x1, y1, z0] * tx
        c01 = stack[n, x0, y0, z1] * (1 - tx) + stack[n, x1, y0, z1] * tx
        c11 = stack[n, x0, y1, z1] * (1 - tx) + stack[n, x1, y1, z1] * tx
        c0 = c00 * (1 - ty) + c10 * ty
        c1 = c01 * (1 - ty) + c11 * ty
        return (c0 * (1 - tz) + c1 * tz).sum(axis=1)

    # -- term evaluation ------------------------------------------------------
    def intermolecular(self, coords: np.ndarray) -> tuple[float, float]:
        """(vdw+hb+desolv, electrostatic) from the grids, with wall penalty."""
        coords = np.asarray(coords, dtype=np.float64)
        affinity = self._gather(self._stack_affinity, coords)
        elec = self._gather(self._stack_elec, coords)
        wall = float(self.maps.outside_penalty(coords).sum())
        return affinity + wall, elec

    def intramolecular(self, coords: np.ndarray) -> float:
        """Internal energy change relative to the unbound input geometry."""
        return self._intra_raw(coords) - self._intra_reference

    def intramolecular_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched internal-energy change: ``(P, n_atoms, 3) -> (P,)``."""
        return self._intra_raw_batch(coords) - self._intra_reference

    def _intra_raw(self, coords: np.ndarray) -> float:
        """Softened internal energy over 1-4+ pairs (absolute)."""
        return float(self._intra_raw_batch(coords[None])[0])

    def _intra_raw_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched absolute internal energy over the flat pair table."""
        if self._pair_i.size == 0:
            return np.zeros(coords.shape[0])
        if self._etables is not None:
            return self._intra_raw_batch_tables(coords)
        # Fancy indexing on axis 1 yields a transposed-layout array; force
        # C order so reduction order (and hence the float result) does not
        # depend on the batch size.
        diff = np.ascontiguousarray(
            coords[:, self._pair_i] - coords[:, self._pair_j]
        )
        r = np.maximum(np.sqrt((diff * diff).sum(axis=-1)), 0.01)
        # AutoGrid-style potential smoothing (see forcefield.vdw_energy).
        s = ff.SMOOTH_RADIUS
        req = self._pair_req
        r_lj = np.where(r < req - s, r + s, np.where(r > req + s, r - s, req))
        inv6 = r_lj**-6
        inv_n = np.where(self._pair_is10, inv6 * r_lj**-4, inv6)
        lj = np.minimum(
            self._pair_cA * inv6 * inv6 - self._pair_cB * inv_n, ff.EINTCLAMP
        )
        eps = ff.mehler_solmajer_dielectric(r)
        coul = np.clip(
            332.06363 * self._pair_qq / (eps * r), -ff.ESTAT_CLAMP, ff.ESTAT_CLAMP
        )
        return (lj * self._pair_w).sum(axis=1) + ff.FE_COEFF_ESTAT * coul.sum(axis=1)

    def _intra_raw_batch_tables(self, coords: np.ndarray) -> np.ndarray:
        """Table-kernel internal energy: two interpolation gathers.

        The LJ/H-bond rows carry smoothing, EINTCLAMP and the FE weight;
        the shared Coulomb factor row is multiplied by the pair charge
        product and magnitude-clamped, matching the analytic kernel.
        Both are zero beyond the table cutoff.
        """
        ad4t = self._etables.ad4
        diff = np.ascontiguousarray(
            coords[:, self._pair_i] - coords[:, self._pair_j]
        )
        r = np.sqrt((diff * diff).sum(axis=-1))
        lj = ad4t.eval_rows(self._pair_rows, r)
        coul = ad4t.eval_estat(self._pair_qq, r)
        return lj.sum(axis=1) + ff.FE_COEFF_ESTAT * coul.sum(axis=1)

    def torsional(self) -> float:
        return ff.FE_COEFF_TORS * self.torsdof

    def score(self, coords: np.ndarray) -> AD4Terms:
        """Full AD4 free-energy estimate for a set of ligand coordinates."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (len(self.ligand.atoms), 3):
            raise ScoringError(
                f"expected coords shape ({len(self.ligand.atoms)}, 3), "
                f"got {coords.shape}"
            )
        vdw, elec = self.intermolecular(coords)
        return AD4Terms(
            vdw_hb_desolv=vdw,
            electrostatic=elec,
            intramolecular=self.intramolecular(coords),
            torsional=self.torsional(),
        )

    def total(self, coords: np.ndarray) -> float:
        """Reported FEB for these coordinates."""
        return self.score(coords).total

    def docking_energy(self, coords: np.ndarray) -> float:
        """Search objective (adds the internal-energy change).

        Hot path: inlined to avoid building the term dataclass per call.
        """
        coords = np.asarray(coords, dtype=np.float64)
        affinity = self._gather(self._stack_affinity, coords)
        elec = self._gather(self._stack_elec, coords)
        wall = float(self.maps.outside_penalty(coords).sum())
        return affinity + elec + wall + self.intramolecular(coords) + self.torsional()

    # -- batched evaluation ----------------------------------------------------
    def _coerce_batch(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.float64)
        n = len(self.ligand.atoms)
        if coords.ndim != 3 or coords.shape[1:] != (n, 3):
            raise ScoringError(
                f"expected coords batch of shape (P, {n}, 3), got {coords.shape}"
            )
        return coords

    def intermolecular_batch(
        self, coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched grid terms: ``(vdw+hb+desolv (P,), electrostatic (P,))``."""
        coords = self._coerce_batch(coords)
        affinity = self._gather_batch(self._stack_affinity, coords)
        elec = self._gather_batch(self._stack_elec, coords)
        wall = self.maps.outside_penalty(coords).sum(axis=1)
        return affinity + wall, elec

    def docking_energy_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched search objective: ``(P, n_atoms, 3) -> (P,)`` energies.

        Evaluates a whole GA population / probe set in a handful of numpy
        calls; each pose's value matches :meth:`docking_energy` exactly.
        """
        coords = self._coerce_batch(coords)
        affinity = self._gather_batch(self._stack_affinity, coords)
        elec = self._gather_batch(self._stack_elec, coords)
        wall = self.maps.outside_penalty(coords).sum(axis=1)
        return (
            affinity + elec + wall + self.intramolecular_batch(coords)
            + self.torsional()
        )

    def total_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched reported FEB: intermolecular + torsional, ``(P,)``."""
        vdw, elec = self.intermolecular_batch(coords)
        return vdw + elec + self.torsional()

    def score_batch(self, coords: np.ndarray) -> list[AD4Terms]:
        """Full term breakdown for a pose batch (one AD4Terms per pose)."""
        coords = self._coerce_batch(coords)
        vdw, elec = self.intermolecular_batch(coords)
        intra = self.intramolecular_batch(coords)
        tors = self.torsional()
        return [
            AD4Terms(
                vdw_hb_desolv=float(v),
                electrostatic=float(e),
                intramolecular=float(i),
                torsional=tors,
            )
            for v, e, i in zip(vdw, elec, intra)
        ]
