"""Pose/conformation representations shared by AD4 and Vina.

A :class:`Conformation` is the genotype the searches optimize — a flat
vector [tx, ty, tz, qw, qx, qy, qz, tor_1..tor_T]. A :class:`Pose` is a
scored phenotype (coordinates + energy breakdown). A
:class:`DockingResult` is the full outcome of one receptor-ligand docking:
ranked poses, cluster table and run statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.torsions import TorsionTree


@dataclass
class Conformation:
    """Search-space point: rigid-body transform plus torsion angles."""

    vector: np.ndarray

    def __post_init__(self) -> None:
        self.vector = np.asarray(self.vector, dtype=np.float64)
        if self.vector.ndim != 1 or self.vector.size < 7:
            raise ValueError(
                "conformation vector must be 1-D with >= 7 entries "
                "(3 translation + 4 quaternion)"
            )

    @property
    def translation(self) -> np.ndarray:
        return self.vector[:3]

    @property
    def quaternion(self) -> np.ndarray:
        return self.vector[3:7]

    @property
    def torsions(self) -> np.ndarray:
        return self.vector[7:]

    @property
    def n_torsions(self) -> int:
        return self.vector.size - 7

    def normalized(self) -> "Conformation":
        """Copy with a unit quaternion and torsions wrapped to (-pi, pi]."""
        return Conformation(normalize_vectors(self.vector[None])[0])

    def coords(self, tree: TorsionTree) -> np.ndarray:
        """Phenotype coordinates for this genotype."""
        c = self.normalized()
        return tree.pose(c.translation, c.quaternion, c.torsions)

    @classmethod
    def identity(cls, n_torsions: int) -> "Conformation":
        v = np.zeros(7 + n_torsions)
        v[3] = 1.0
        return cls(v)

    @classmethod
    def random(
        cls,
        n_torsions: int,
        rng: np.random.Generator,
        translation_extent: float = 5.0,
        center: np.ndarray | None = None,
    ) -> "Conformation":
        """Random genotype within a translation cube around ``center``."""
        v = np.empty(7 + n_torsions)
        base = np.zeros(3) if center is None else np.asarray(center, float)
        v[:3] = base + rng.uniform(-translation_extent, translation_extent, 3)
        q = rng.normal(size=4)
        v[3:7] = q / np.linalg.norm(q)
        v[7:] = rng.uniform(-np.pi, np.pi, n_torsions)
        return cls(v)


def normalize_vectors(vectors: np.ndarray) -> np.ndarray:
    """Batched :meth:`Conformation.normalized`: ``(P, 7+T) -> (P, 7+T)``.

    Quaternion blocks are scaled to unit norm (zero quaternions become
    the identity) and torsions wrapped to (-pi, pi]. The scalar
    ``normalized()`` is a batch of one, so both paths agree exactly.
    """
    V = np.array(vectors, dtype=np.float64)
    if V.ndim != 2 or V.shape[1] < 7:
        raise ValueError(
            "conformation batch must be (P, >=7): 3 translation + 4 quaternion"
        )
    q = V[:, 3:7]
    qn = np.sqrt((q * q).sum(axis=1))
    degenerate = qn < 1e-12
    qn[degenerate] = 1.0
    q /= qn[:, None]
    q[degenerate] = (1.0, 0.0, 0.0, 0.0)
    V[:, 7:] = np.mod(V[:, 7:] + np.pi, 2 * np.pi) - np.pi
    return V


def coords_batch(vectors: np.ndarray, tree: TorsionTree) -> np.ndarray:
    """Phenotype coordinates for a genotype batch: ``(P, D) -> (P, N, 3)``.

    The batched twin of :meth:`Conformation.coords`: vectors are
    normalized, then posed through :meth:`TorsionTree.pose_batch` in one
    vectorized pass.
    """
    V = normalize_vectors(vectors)
    return tree.pose_batch(V[:, :3], V[:, 3:7], V[:, 7:])


#: Gas constant in kcal/mol/K and AutoDock's reporting temperature.
GAS_CONSTANT_KCAL = 0.0019872041
KI_TEMPERATURE = 298.15


def inhibition_constant(feb_kcal_mol: float, temperature: float = KI_TEMPERATURE) -> float | None:
    """AutoDock's estimated inhibition constant Ki = exp(FEB / RT), molar.

    Only meaningful for favorable (negative) binding free energies; AD4
    leaves the field out otherwise, so this returns ``None`` for
    FEB >= 0.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if feb_kcal_mol >= 0:
        return None
    return float(np.exp(feb_kcal_mol / (GAS_CONSTANT_KCAL * temperature)))


def format_ki(ki_molar: float | None) -> str:
    """Human units the DLG uses (mM/uM/nM/pM)."""
    if ki_molar is None:
        return "n/a"
    for scale, unit in ((1e-12, "pM"), (1e-9, "nM"), (1e-6, "uM"), (1e-3, "mM")):
        if ki_molar < scale * 1000:
            return f"{ki_molar / scale:.2f} {unit}"
    return f"{ki_molar:.3g} M"


@dataclass
class Pose:
    """A scored ligand pose."""

    conformation: Conformation
    coords: np.ndarray
    energy: float  # total FEB estimate, kcal/mol
    intermolecular: float = 0.0
    intramolecular: float = 0.0
    torsional: float = 0.0
    rmsd_from_input: float = 0.0
    cluster: int = -1

    def __lt__(self, other: "Pose") -> bool:
        return self.energy < other.energy

    @property
    def ki(self) -> float | None:
        """Estimated inhibition constant (molar); None if FEB >= 0."""
        return inhibition_constant(self.energy)


@dataclass
class ClusterInfo:
    """One row of the AD4 clustering histogram."""

    rank: int
    size: int
    best_energy: float
    mean_energy: float
    representative: int  # pose index


@dataclass
class DockingResult:
    """Outcome of docking one receptor-ligand pair."""

    receptor_name: str
    ligand_name: str
    engine: str  # "autodock4" | "vina"
    poses: list[Pose] = field(default_factory=list)
    clusters: list[ClusterInfo] = field(default_factory=list)
    evaluations: int = 0
    runtime_seconds: float = 0.0
    seed: int | None = None

    @property
    def best_pose(self) -> Pose:
        if not self.poses:
            raise ValueError("docking produced no poses")
        return min(self.poses)

    @property
    def best_energy(self) -> float:
        """Free energy of binding (FEB) of the best pose, kcal/mol."""
        return self.best_pose.energy

    @property
    def favorable(self) -> bool:
        """Paper's FEB(-) criterion: negative binding free energy."""
        return self.best_energy < 0.0

    @property
    def best_rmsd(self) -> float:
        return self.best_pose.rmsd_from_input

    def summary(self) -> dict:
        """Flat dict used by provenance extractors and analysis tables."""
        return {
            "receptor": self.receptor_name,
            "ligand": self.ligand_name,
            "engine": self.engine,
            "feb": round(self.best_energy, 3) if self.poses else None,
            "rmsd": round(self.best_rmsd, 3) if self.poses else None,
            "n_poses": len(self.poses),
            "n_clusters": len(self.clusters),
            "evaluations": self.evaluations,
            "runtime_seconds": round(self.runtime_seconds, 4),
        }
