"""Cutoff-aware neighbor pruning for the docking kernels.

Two pruning layers live here:

* **Spatial** — :class:`CellList`, a uniform cell list over a static
  point set (receptor atoms). AutoGrid map builds, Vina map builds and
  the map-free Vina scorer ask it for the atoms within the nonbonded
  cutoff of each grid point / ligand atom, replacing the
  ``O(points x receptor_atoms)`` dense distance sweep with an
  ``O(points x local_atoms)`` gather over the 27-cell neighborhood.
* **Topological** — :func:`bond_separation_pairs`, the memoized
  bond-graph BFS behind the AD4/Vina intramolecular pair tables.
  Scorers are rebuilt per activation (and per worker process), but the
  1-4+ pair table is a pure function of the molecular topology, so
  identical walks are served from a process-wide memo.

Both layers are exact: the cell list returns precisely the pairs a
brute-force ``r <= cutoff`` scan would (order aside), and the memo
returns the same arrays the per-scorer BFS used to build.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np


class CellList:
    """Uniform cell list over a fixed set of 3D points.

    Points are binned into cubic cells of edge ``cell_size`` and stored
    in CSR layout (one ``argsort`` at construction). A query point only
    inspects the ``(2k+1)^3`` cells that can contain neighbors within
    ``cutoff`` (``k = ceil(cutoff / cell_size)``), so query cost scales
    with local density instead of the total atom count.
    """

    def __init__(self, coords: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        coords = np.asarray(coords, dtype=np.float64).reshape(-1, 3)
        self.coords = coords
        self.cell_size = float(cell_size)
        self.n_points = coords.shape[0]
        if self.n_points == 0:
            self.origin = np.zeros(3)
            self.dims = np.ones(3, dtype=np.intp)
            self._order = np.empty(0, dtype=np.intp)
            self._starts = np.zeros(2, dtype=np.intp)
            self._counts = np.zeros(1, dtype=np.intp)
            return
        self.origin = coords.min(axis=0)
        span = coords.max(axis=0) - self.origin
        self.dims = np.floor(span / self.cell_size).astype(np.intp) + 1
        idx3 = np.floor((coords - self.origin) / self.cell_size).astype(np.intp)
        # Atoms exactly on the max face land one past the last cell.
        idx3 = np.minimum(idx3, self.dims - 1)
        lin = self._linearize(idx3)
        self._order = np.argsort(lin, kind="stable")
        n_cells = int(np.prod(self.dims))
        self._counts = np.bincount(lin, minlength=n_cells).astype(np.intp)
        self._starts = np.concatenate(
            [np.zeros(1, dtype=np.intp), np.cumsum(self._counts)]
        )

    def _linearize(self, idx3: np.ndarray) -> np.ndarray:
        d = self.dims
        return (idx3[..., 0] * d[1] + idx3[..., 1]) * d[2] + idx3[..., 2]

    def query(
        self, points: np.ndarray, cutoff: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All ``(point, atom)`` pairs within ``cutoff``.

        Returns ``(pi, ai, r)``: query-point indices, atom indices and
        their distances, with ``r <= cutoff`` inclusive — exactly the
        pair set a brute-force ``r2 <= cutoff**2`` scan produces.
        """
        blocks = list(self.iter_query(points, cutoff))
        if not blocks:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty.copy(), np.empty(0)
        pi = np.concatenate([b[0] for b in blocks])
        ai = np.concatenate([b[1] for b in blocks])
        r = np.concatenate([b[2] for b in blocks])
        return pi, ai, r

    def iter_query(
        self, points: np.ndarray, cutoff: float, chunk_points: int = 8192
    ):
        """Chunked :meth:`query`: yields ``(pi, ai, r)`` blocks.

        ``pi`` holds *global* indices into ``points``; chunking only
        bounds the candidate-pair working set, never changes the result.
        """
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        points = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        if self.n_points == 0 or points.shape[0] == 0:
            return
        reach = int(np.ceil(cutoff / self.cell_size))
        offsets = np.array(
            [
                (dx, dy, dz)
                for dx in range(-reach, reach + 1)
                for dy in range(-reach, reach + 1)
                for dz in range(-reach, reach + 1)
            ],
            dtype=np.intp,
        )
        cut2 = float(cutoff) ** 2
        for start in range(0, points.shape[0], chunk_points):
            block = points[start : start + chunk_points]
            pcell = np.floor((block - self.origin) / self.cell_size).astype(np.intp)
            pi_parts: list[np.ndarray] = []
            ai_parts: list[np.ndarray] = []
            r_parts: list[np.ndarray] = []
            for off in offsets:
                ncell = pcell + off
                valid = np.all((ncell >= 0) & (ncell < self.dims), axis=1)
                if not valid.any():
                    continue
                vp = np.nonzero(valid)[0]
                nlin = self._linearize(ncell[vp])
                cnt = self._counts[nlin]
                occupied = cnt > 0
                if not occupied.any():
                    continue
                vp, nlin, cnt = vp[occupied], nlin[occupied], cnt[occupied]
                total = int(cnt.sum())
                rep_pt = np.repeat(vp, cnt)
                # Per-pair offset inside its cell's CSR slice.
                ends = np.cumsum(cnt)
                within = np.arange(total, dtype=np.intp) - np.repeat(
                    ends - cnt, cnt
                )
                atoms = self._order[np.repeat(self._starts[nlin], cnt) + within]
                diff = block[rep_pt] - self.coords[atoms]
                r2 = np.einsum("ij,ij->i", diff, diff)
                hit = r2 <= cut2
                if not hit.any():
                    continue
                pi_parts.append(rep_pt[hit] + start)
                ai_parts.append(atoms[hit])
                r_parts.append(np.sqrt(r2[hit]))
            if pi_parts:
                yield (
                    np.concatenate(pi_parts),
                    np.concatenate(ai_parts),
                    np.concatenate(r_parts),
                )


def brute_force_query(
    points: np.ndarray, coords: np.ndarray, cutoff: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference ``O(P x N)`` neighbor scan (tests and small inputs)."""
    points = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    coords = np.asarray(coords, dtype=np.float64).reshape(-1, 3)
    if points.shape[0] == 0 or coords.shape[0] == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy(), np.empty(0)
    diff = points[:, None, :] - coords[None, :, :]
    r2 = np.einsum("pnx,pnx->pn", diff, diff)
    pi, ai = np.nonzero(r2 <= float(cutoff) ** 2)
    return pi, ai, np.sqrt(r2[pi, ai])


# -- topological pruning ------------------------------------------------------

_PAIR_MEMO: OrderedDict = OrderedDict()
_PAIR_MEMO_LOCK = threading.Lock()
_PAIR_MEMO_MAX = 512
_PAIR_MEMO_HITS = 0
_PAIR_MEMO_MISSES = 0


def pair_memo_stats() -> dict:
    """Hit/miss counters of the pair-table memo (for tests/telemetry)."""
    with _PAIR_MEMO_LOCK:
        return {
            "hits": _PAIR_MEMO_HITS,
            "misses": _PAIR_MEMO_MISSES,
            "entries": len(_PAIR_MEMO),
        }


def reset_pair_memo() -> None:
    global _PAIR_MEMO_HITS, _PAIR_MEMO_MISSES
    with _PAIR_MEMO_LOCK:
        _PAIR_MEMO.clear()
        _PAIR_MEMO_HITS = 0
        _PAIR_MEMO_MISSES = 0


def _bfs_pairs(mol, min_separation: int) -> np.ndarray:
    """Atom pairs >= ``min_separation`` bonds apart (or disconnected)."""
    n = len(mol.atoms)
    INF = 99
    dist = np.full((n, n), INF, dtype=np.int16)
    np.fill_diagonal(dist, 0)
    adj = mol.adjacency
    for src in range(n):
        frontier = [src]
        seen = {src}
        d = 0
        while frontier and d < min_separation:
            d += 1
            nxt = []
            for v in frontier:
                for w in adj[v]:
                    if w not in seen:
                        seen.add(w)
                        dist[src, w] = min(dist[src, w], d)
                        nxt.append(w)
            frontier = nxt
    ii, jj = np.triu_indices(n, k=1)
    mask = dist[ii, jj] >= min_separation
    return np.stack([ii[mask], jj[mask]], axis=1).reshape(-1, 2)


def bond_separation_pairs(mol, min_separation: int) -> np.ndarray:
    """Memoized nonbonded pair table of one molecule.

    The key is the molecular *topology* (name, atom count, bond list) —
    coordinates don't matter — so every scorer rebuilt for the same
    ligand across activations, GA runs and worker processes shares one
    BFS. The returned array is marked read-only; callers only index it.
    """
    global _PAIR_MEMO_HITS, _PAIR_MEMO_MISSES
    bonds = tuple(
        sorted((b.i, b.j) if b.i < b.j else (b.j, b.i) for b in mol.bonds)
    )
    key = (mol.name, len(mol.atoms), bonds, int(min_separation))
    with _PAIR_MEMO_LOCK:
        cached = _PAIR_MEMO.get(key)
        if cached is not None:
            _PAIR_MEMO.move_to_end(key)
            _PAIR_MEMO_HITS += 1
            return cached
    pairs = _bfs_pairs(mol, int(min_separation))
    pairs.flags.writeable = False
    with _PAIR_MEMO_LOCK:
        _PAIR_MEMO_MISSES += 1
        _PAIR_MEMO[key] = pairs
        while len(_PAIR_MEMO) > _PAIR_MEMO_MAX:
            _PAIR_MEMO.popitem(last=False)
    return pairs
