"""Flexible receptor side-chains (``prepare_flexreceptor4.py`` counterpart).

AutoDock supports selective receptor flexibility: side-chains lining the
binding site rotate during the search while the backbone stays rigid.
(The paper's related work discusses FLIPDock, built on the same idea.)

This module selects pocket-lining residues, models each as one chi-1
rotation about its CA->CB axis (the dominant side-chain degree of
freedom), and runs a Vina-style iterated local search over the joint
space [ligand pose + side-chain torsions] using the exact (non-grid)
scorer, whose receptor coordinates are updated per evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.chem.geometry import rmsd, rotation_about_axis
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.clustering import cluster_poses
from repro.docking.conformation import Conformation, DockingResult, Pose
from repro.docking.mc import ILSConfig, IteratedLocalSearch
from repro.docking.prepare import LigandPreparation, ReceptorPreparation
from repro.docking.scoring_vina import VinaScorer

#: Backbone atom names: everything else in a residue is side-chain.
_BACKBONE = {"N", "CA", "C", "O"}

#: Harmonic strain constant for side-chain rotation away from the input
#: rotamer (kcal/mol/rad^2) — keeps the search from wild rearrangements.
CHI_STRAIN = 0.3


class FlexError(ValueError):
    """Raised for invalid flexibility selections."""


@dataclass
class FlexResidue:
    """One flexible side-chain: a chi-1 rotation axis plus moved atoms."""

    residue_key: tuple[str, int]  # (chain, residue_seq)
    axis_from: int  # CA atom index in the receptor
    axis_to: int  # CB atom index
    moved: np.ndarray  # atom indices distal to CB (includes CB's children)


def select_flexible_residues(
    receptor: Molecule,
    pocket_center: np.ndarray,
    radius: float,
    max_residues: int = 4,
) -> list[FlexResidue]:
    """Pocket-lining residues eligible for side-chain flexibility.

    A residue qualifies when it has CA and CB atoms plus at least one
    more side-chain atom, and any side-chain atom sits within ``radius``
    of the pocket center. The closest ``max_residues`` are returned.
    """
    if max_residues < 1:
        raise FlexError("max_residues must be >= 1")
    pocket_center = np.asarray(pocket_center, dtype=np.float64)
    candidates: list[tuple[float, FlexResidue]] = []
    for key, atom_idx in receptor.residues().items():
        names = {receptor.atoms[i].name: i for i in atom_idx}
        if "CA" not in names or "CB" not in names:
            continue
        sidechain = [
            i for i in atom_idx if receptor.atoms[i].name not in _BACKBONE
        ]
        moved = [i for i in sidechain if i != names["CB"]]
        if not moved:
            continue  # alanine-like: nothing rotates about chi-1
        dists = [
            float(np.linalg.norm(receptor.atoms[i].coords - pocket_center))
            for i in sidechain
        ]
        if min(dists) > radius:
            continue
        candidates.append(
            (
                min(dists),
                FlexResidue(
                    residue_key=key,
                    axis_from=names["CA"],
                    axis_to=names["CB"],
                    # CB rotates its children; CB itself stays on the axis.
                    moved=np.array(sorted(moved), dtype=np.intp),
                ),
            )
        )
    candidates.sort(key=lambda pair: pair[0])
    return [fr for _, fr in candidates[:max_residues]]


class FlexibleReceptor:
    """Receptor with selected rotatable side-chains."""

    def __init__(self, receptor: Molecule, flex: list[FlexResidue]) -> None:
        if not flex:
            raise FlexError("no flexible residues selected")
        self.receptor = receptor
        self.flex = flex
        self.reference = receptor.coords

    @property
    def n_torsions(self) -> int:
        return len(self.flex)

    def pose(self, chi: np.ndarray) -> np.ndarray:
        """Receptor coordinates for the given chi-1 angles (radians)."""
        chi = np.asarray(chi, dtype=np.float64)
        if chi.shape != (self.n_torsions,):
            raise FlexError(
                f"expected {self.n_torsions} chi angles, got {chi.shape}"
            )
        coords = self.reference.copy()
        for angle, fr in zip(chi, self.flex):
            if abs(angle) < 1e-12:
                continue
            origin = coords[fr.axis_from]
            axis = coords[fr.axis_to] - origin
            norm = np.linalg.norm(axis)
            if norm < 1e-9:
                continue
            R = rotation_about_axis(axis, float(angle))
            coords[fr.moved] = (coords[fr.moved] - origin) @ R.T + origin
        return coords

    def strain(self, chi: np.ndarray) -> float:
        """Harmonic penalty for leaving the input rotamer."""
        chi = np.asarray(chi, dtype=np.float64)
        return float(CHI_STRAIN * (chi**2).sum())


class FlexibleVina:
    """Vina-style docking over [ligand pose + side-chain torsions]."""

    name = "vina-flex"

    def __init__(
        self,
        receptor: ReceptorPreparation | Molecule,
        box: GridBox,
        flex: list[FlexResidue] | None = None,
        *,
        flex_radius: float | None = None,
        max_flex_residues: int = 4,
        ils: ILSConfig | None = None,
        num_modes: int = 9,
    ) -> None:
        self.receptor = (
            receptor.molecule
            if isinstance(receptor, ReceptorPreparation)
            else receptor
        )
        self.box = box
        if flex is None:
            radius = (
                flex_radius
                if flex_radius is not None
                else float(min(box.dimensions) / 2.0)
            )
            flex = select_flexible_residues(
                self.receptor, box.center, radius, max_flex_residues
            )
        if not flex:
            raise FlexError(
                "no flexible residues found near the box; pass flex explicitly"
            )
        self.flexible = FlexibleReceptor(self.receptor, flex)
        self.ils = ils or ILSConfig(restarts=2, steps_per_restart=3, bfgs_iterations=8)
        self.num_modes = num_modes

    def dock(self, ligand: LigandPreparation, seed: int = 0) -> DockingResult:
        started = time.perf_counter()
        scorer = VinaScorer(self.receptor, ligand.molecule, self.box)
        tree = ligand.tree
        reference = tree.reference
        n_lig = 7 + tree.n_torsions
        n_flex = self.flexible.n_torsions
        # Map full-receptor indices to scorer rows (pruned neighborhood).
        row_of = {int(full): row for row, full in enumerate(scorer.rec_index)}
        flex_rows: list[tuple[np.ndarray, np.ndarray]] = []
        for fr in self.flexible.flex:
            present = [i for i in fr.moved.tolist() if i in row_of]
            flex_rows.append(
                (
                    np.array([row_of[i] for i in present], dtype=np.intp),
                    np.array(present, dtype=np.intp),
                )
            )

        def apply_receptor(chi: np.ndarray) -> None:
            coords = self.flexible.pose(chi)
            for (rows, fulls) in flex_rows:
                if rows.size:
                    scorer.rec_coords[rows] = coords[fulls]

        def objective(vector: np.ndarray) -> float:
            lig_vec = vector[:n_lig]
            chi = vector[n_lig:]
            apply_receptor(chi)
            coords = Conformation(lig_vec).coords(tree)
            return scorer.search_energy(coords) + self.flexible.strain(chi)

        center_offset = self.box.center - reference[tree.root]
        ils = IteratedLocalSearch(
            lambda v: objective(v), tree.n_torsions + n_flex, self.ils
        )
        # The ILS treats extra dimensions as torsions; that matches chi
        # angles exactly (periodic rotations).
        rng = np.random.default_rng((seed, 104729))
        # Extend the random starting conformation with chi angles = 0.
        result = ils.run(rng, center=center_offset)

        poses: list[Pose] = []
        for conf, _e in result.minima[: self.num_modes * 2]:
            lig_vec = conf.vector[:n_lig]
            chi = conf.vector[n_lig:]
            apply_receptor(chi)
            coords = Conformation(lig_vec).coords(tree)
            affinity = scorer.total(coords)
            poses.append(
                Pose(
                    conformation=Conformation(lig_vec).normalized(),
                    coords=coords,
                    energy=affinity,
                    intermolecular=affinity,
                    rmsd_from_input=rmsd(coords, reference),
                )
            )
        poses.sort()
        # Mode filter as in the rigid engine.
        modes: list[Pose] = []
        for pose in poses:
            if len(modes) >= self.num_modes:
                break
            if all(rmsd(pose.coords, m.coords) >= 1.0 for m in modes):
                modes.append(pose)
        if not modes and poses:
            modes = [poses[0]]
        return DockingResult(
            receptor_name=self.receptor.name,
            ligand_name=ligand.molecule.name,
            engine=self.name,
            poses=modes,
            clusters=cluster_poses(modes),
            evaluations=result.evaluations,
            runtime_seconds=time.perf_counter() - started,
            seed=seed,
        )
