"""AutoDock Vina scoring function.

Vina scores atom pairs directly (no precomputed receptor grid in our
implementation — the receptor neighbor list is pre-pruned to the box
instead). Terms operate on the *surface distance*
``d = r - R_i - R_j`` where R are Vina atom radii:

* gauss1:      exp(-(d / 0.5)^2)
* gauss2:      exp(-((d - 3) / 2)^2)
* repulsion:   d^2 if d < 0 else 0
* hydrophobic: 1 if d < 0.5, 0 if d > 1.5, linear ramp between
               (both atoms hydrophobic)
* hbond:       1 if d < -0.7, 0 if d > 0, linear ramp between
               (donor-acceptor pairs)

The inter-molecular sum is divided by ``1 + w_rot * N_rot`` — Vina's
conformational-entropy normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.chem.elements import AUTODOCK_TYPES
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.neighbors import CellList, bond_separation_pairs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docking.etables import EtableSet

#: Vina weights (Trott & Olson 2010, Table 1).
W_GAUSS1 = -0.035579
W_GAUSS2 = -0.005156
W_REPULSION = 0.840245
W_HYDROPHOBIC = -0.035069
W_HBOND = -0.587439
W_ROT = 0.05846

#: Pairwise interaction cutoff (Angstrom).
CUTOFF = 8.0

#: Vina's per-type radii (xs radii); fall back to half of AD4 Rii.
_XS_RADII = {
    "C": 1.9,
    "A": 1.9,
    "N": 1.8,
    "NA": 1.8,
    "NS": 1.8,
    "O": 1.7,
    "OA": 1.7,
    "OS": 1.7,
    "S": 2.0,
    "SA": 2.0,
    "P": 2.1,
    "F": 1.5,
    "Cl": 1.8,
    "Br": 2.0,
    "I": 2.2,
    "H": 0.0,
    "HD": 0.0,
    "HS": 0.0,
}


class VinaScoringError(ValueError):
    """Raised for un-scoreable inputs."""


def xs_radius(adtype: str) -> float:
    r = _XS_RADII.get(adtype)
    if r is not None:
        return r
    try:
        return AUTODOCK_TYPES[adtype].rii / 2.0
    except KeyError:
        raise VinaScoringError(f"unknown AutoDock type {adtype!r}") from None


def _type_vectors(mol: Molecule) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(radii, hydrophobic, donor, acceptor) arrays for a typed molecule."""
    radii = np.empty(len(mol.atoms))
    hydro = np.zeros(len(mol.atoms), dtype=bool)
    donor = np.zeros(len(mol.atoms), dtype=bool)
    acceptor = np.zeros(len(mol.atoms), dtype=bool)
    for k, a in enumerate(mol.atoms):
        t = a.autodock_type
        if t is None:
            raise VinaScoringError(
                f"atom {a.name} has no AutoDock type; run prepare first"
            )
        radii[k] = xs_radius(t)
        info = AUTODOCK_TYPES.get(t)
        if info is not None:
            hydro[k] = info.is_hydrophobic
            donor[k] = info.is_donor
            acceptor[k] = info.is_acceptor
    return radii, hydro, donor, acceptor


def pairwise_terms(
    d: np.ndarray,
    hydro_pair: np.ndarray,
    hbond_pair: np.ndarray,
) -> np.ndarray:
    """Weighted Vina energy per pair given surface distances ``d``."""
    g1 = np.exp(-((d / 0.5) ** 2))
    g2 = np.exp(-(((d - 3.0) / 2.0) ** 2))
    rep = np.where(d < 0.0, d * d, 0.0)
    hyd = np.clip(1.5 - d, 0.0, 1.0) * hydro_pair
    hb = np.clip(-d / 0.7, 0.0, 1.0) * hbond_pair
    return (
        W_GAUSS1 * g1
        + W_GAUSS2 * g2
        + W_REPULSION * rep
        + W_HYDROPHOBIC * hyd
        + W_HBOND * hb
    )


@dataclass(frozen=True)
class VinaAtomClass:
    """Everything the Vina terms need to know about a ligand atom."""

    radius: float
    hydrophobic: bool
    donor: bool
    acceptor: bool


def atom_class_for(adtype: str) -> VinaAtomClass:
    """Interaction class of one AutoDock type under the Vina terms."""
    info = AUTODOCK_TYPES.get(adtype)
    return VinaAtomClass(
        radius=round(xs_radius(adtype), 3),
        hydrophobic=bool(info and info.is_hydrophobic),
        donor=bool(info and info.is_donor),
        acceptor=bool(info and info.is_acceptor),
    )


#: Classes covering every organic ligand our generator emits; used to
#: precompute receptor maps once and reuse them across all 42 ligands.
STANDARD_CLASSES: tuple[VinaAtomClass, ...] = tuple(
    dict.fromkeys(
        atom_class_for(t)
        for t in ("C", "A", "N", "NA", "OA", "SA", "S", "HD", "H", "F", "Cl", "Br", "I", "P")
    )
)


#: Scoring-function fingerprint for content-addressed map caches: any
#: change to the weights or cutoff must invalidate persisted Vina maps.
VINA_FF_VERSION = (
    f"vina-1.1.2/g1={W_GAUSS1}/g2={W_GAUSS2}/rep={W_REPULSION}"
    f"/hyd={W_HYDROPHOBIC}/hb={W_HBOND}/rot={W_ROT}/cut={CUTOFF}"
)


@dataclass
class VinaMaps:
    """Precomputed Vina interaction grids (Vina's internal grid cache).

    ``grids[cls]`` holds, at each box point, the summed weighted Vina
    terms between a probe atom of that class and every receptor atom —
    so pose evaluation becomes a trilinear gather exactly like AD4's.
    """

    box: GridBox
    grids: dict[VinaAtomClass, np.ndarray]
    receptor_name: str = ""


def _class_key(cls: VinaAtomClass) -> str:
    return (
        f"r{cls.radius}_h{int(cls.hydrophobic)}"
        f"_d{int(cls.donor)}_a{int(cls.acceptor)}"
    )


def vina_maps_to_arrays(maps: VinaMaps) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten a :class:`VinaMaps` into a (meta, named-arrays) bundle."""
    classes = sorted(maps.grids, key=_class_key)
    meta = {
        "box": maps.box.to_dict(),
        "receptor_name": maps.receptor_name,
        "classes": [
            {
                "radius": cls.radius,
                "hydrophobic": cls.hydrophobic,
                "donor": cls.donor,
                "acceptor": cls.acceptor,
            }
            for cls in classes
        ],
    }
    arrays = {f"grid/{_class_key(cls)}": maps.grids[cls] for cls in classes}
    return meta, arrays


def vina_maps_from_arrays(meta: dict, arrays: dict[str, np.ndarray]) -> VinaMaps:
    """Rebuild a :class:`VinaMaps` from a plane bundle (views kept as-is)."""
    grids: dict[VinaAtomClass, np.ndarray] = {}
    for doc in meta["classes"]:
        cls = VinaAtomClass(
            radius=float(doc["radius"]),
            hydrophobic=bool(doc["hydrophobic"]),
            donor=bool(doc["donor"]),
            acceptor=bool(doc["acceptor"]),
        )
        grids[cls] = arrays[f"grid/{_class_key(cls)}"]
    return VinaMaps(
        box=GridBox.from_dict(meta["box"]),
        grids=grids,
        receptor_name=meta.get("receptor_name", ""),
    )


def build_vina_maps(
    receptor: Molecule,
    box: GridBox,
    classes: tuple[VinaAtomClass, ...] = STANDARD_CLASSES,
    chunk_atoms: int = 256,
    etables: "EtableSet | None" = None,
) -> VinaMaps:
    """Build per-class Vina grids over ``box`` (amortized per receptor).

    With ``etables`` the build runs the table-driven kernel over a cell
    list: each grid point only visits receptor atoms within the cutoff
    (27-cell neighborhood) and evaluates the five Vina terms by row
    interpolation instead of the analytic exp/clip expressions. The
    analytic full-sweep path below stays the bit-exact reference.
    """
    points = box.points()
    P = points.shape[0]
    rad, hyd, don, acc = _type_vectors(receptor)
    rec_coords = receptor.coords
    cutoff = etables.config.r_max if etables is not None else CUTOFF
    lo = box.minimum - cutoff
    hi = box.maximum + cutoff
    keep = np.all((rec_coords >= lo) & (rec_coords <= hi), axis=1)
    rec_coords = rec_coords[keep]
    rad, hyd, don, acc = rad[keep], hyd[keep], don[keep], acc[keep]
    grids = {cls: np.zeros(P) for cls in classes}
    if etables is not None:
        vt = etables.vina
        rows_by_class = {cls: vt.rows_for(cls.radius + rad) for cls in classes}
        if rec_coords.shape[0] > 0:
            cells = CellList(rec_coords, cell_size=cutoff)
            for pi, ai, r in cells.iter_query(points, cutoff):
                for cls, grid in grids.items():
                    e = vt.eval(
                        rows_by_class[cls][ai],
                        r,
                        cls.hydrophobic & hyd[ai],
                        (cls.donor & acc[ai]) | (cls.acceptor & don[ai]),
                    )
                    grid += np.bincount(pi, weights=e, minlength=P)
        shape = box.shape
        return VinaMaps(
            box=box,
            grids={cls: g.reshape(shape) for cls, g in grids.items()},
            receptor_name=receptor.name,
        )
    for start in range(0, rec_coords.shape[0], chunk_atoms):
        stop = start + chunk_atoms
        chunk = rec_coords[start:stop]
        diff = points[:, None, :] - chunk[None, :, :]
        r2 = np.einsum("pcx,pcx->pc", diff, diff)
        pi, ci = np.nonzero(r2 <= CUTOFF**2)
        if pi.size == 0:
            continue
        rv = np.sqrt(r2[pi, ci])
        rad_c = rad[start:stop][ci]
        hyd_c = hyd[start:stop][ci]
        don_c = don[start:stop][ci]
        acc_c = acc[start:stop][ci]
        for cls, grid in grids.items():
            d = rv - cls.radius - rad_c
            hydro_pair = cls.hydrophobic & hyd_c
            hbond_pair = (cls.donor & acc_c) | (cls.acceptor & don_c)
            e = pairwise_terms(d, hydro_pair, hbond_pair)
            grid += np.bincount(pi, weights=e, minlength=P)
    shape = box.shape
    return VinaMaps(
        box=box,
        grids={cls: g.reshape(shape) for cls, g in grids.items()},
        receptor_name=receptor.name,
    )


class VinaScorer:
    """Vina scorer bound to one (receptor, ligand, box) triple.

    When ``maps`` (a :class:`VinaMaps` cache) is supplied, intermolecular
    evaluation is a per-atom trilinear gather; otherwise the exact
    pairwise sum over the pre-pruned receptor neighborhood is used.

    ``etables`` switches the pairwise kernels to table lookups: the
    intramolecular sum interpolates per-radius-sum rows, and the
    map-free intermolecular path walks a receptor cell list so each
    ligand atom only touches atoms within the cutoff instead of the full
    ``(poses x ligand x receptor)`` distance tensor.
    """

    def __init__(
        self,
        receptor: Molecule,
        ligand: Molecule,
        box: GridBox,
        maps: VinaMaps | None = None,
        etables: "EtableSet | None" = None,
    ) -> None:
        self.box = box
        self.ligand = ligand
        self._etables = etables
        #: Kernel mode label surfaced in provenance: "analytic"|"tables".
        self.kernel = "tables" if etables is not None else "analytic"
        cutoff = etables.config.r_max if etables is not None else CUTOFF
        rec_coords = receptor.coords
        rad, hyd, don, acc = _type_vectors(receptor)
        lo = box.minimum - cutoff
        hi = box.maximum + cutoff
        keep = np.all((rec_coords >= lo) & (rec_coords <= hi), axis=1)
        #: Original receptor indices of the pruned rows (used by the
        #: flexible-receptor extension to update side-chain coordinates).
        self.rec_index = np.nonzero(keep)[0]
        self.rec_coords = rec_coords[keep]
        self.rec_radii = rad[keep]
        self.rec_hydro = hyd[keep]
        self.rec_donor = don[keep]
        self.rec_acceptor = acc[keep]
        (
            self.lig_radii,
            self.lig_hydro,
            self.lig_donor,
            self.lig_acceptor,
        ) = _type_vectors(ligand)
        self.n_rot = int(ligand.metadata.get("torsdof", 0))
        self._entropy_norm = 1.0 + W_ROT * self.n_rot
        self._intra_pairs = self._intra_pair_table(ligand)
        # Precomputed pair masks and radius sums (hot-path constants).
        self._inter_hydro = self.lig_hydro[:, None] & self.rec_hydro[None, :]
        self._inter_hbond = (
            self.lig_donor[:, None] & self.rec_acceptor[None, :]
        ) | (self.lig_acceptor[:, None] & self.rec_donor[None, :])
        self._inter_rsum = self.lig_radii[:, None] + self.rec_radii[None, :]
        ii, jj = self._intra_pairs[:, 0], self._intra_pairs[:, 1]
        self._intra_hydro = self.lig_hydro[ii] & self.lig_hydro[jj]
        self._intra_hbond = (self.lig_donor[ii] & self.lig_acceptor[jj]) | (
            self.lig_acceptor[ii] & self.lig_donor[jj]
        )
        self._intra_rsum = self.lig_radii[ii] + self.lig_radii[jj]
        # Optional grid cache: build the per-atom map stack once.
        self._stack: np.ndarray | None = None
        if maps is not None:
            if maps.box is not box and not (
                np.allclose(maps.box.center, box.center)
                and maps.box.npts == box.npts
                and maps.box.spacing == box.spacing
            ):
                raise VinaScoringError("VinaMaps box does not match the docking box")
            stacks = []
            for a in ligand.atoms:
                cls = atom_class_for(a.autodock_type)
                grid = maps.grids.get(cls)
                if grid is None:
                    raise VinaScoringError(
                        f"VinaMaps missing class {cls} for atom {a.name}"
                    )
                stacks.append(grid)
            self._stack = np.stack(stacks)
            self._shape = np.array(box.shape)
        # Table-kernel precomputation: per-pair row indices plus, for the
        # map-free path, a receptor cell list so pose batches only touch
        # atoms within the cutoff of each ligand atom.
        self._cells: CellList | None = None
        self._inter_rows: np.ndarray | None = None
        self._intra_rows: np.ndarray | None = None
        if etables is not None:
            vt = etables.vina
            if self._intra_pairs.size:
                self._intra_rows = vt.rows_for(self._intra_rsum)
            if self._stack is None and self.rec_coords.shape[0] > 0:
                self._cells = CellList(self.rec_coords, cell_size=cutoff)
                self._inter_rows = vt.rows_for(self._inter_rsum)

    @staticmethod
    def _intra_pair_table(mol: Molecule) -> np.ndarray:
        """Ligand pairs separated by >= 4 bonds (Vina's 1-4 exclusion).

        Memoized per molecular topology — see
        :func:`repro.docking.neighbors.bond_separation_pairs`.
        """
        return bond_separation_pairs(mol, 4)

    # -- scoring ---------------------------------------------------------------
    def _coerce_batch(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.float64)
        n = len(self.ligand.atoms)
        if coords.ndim != 3 or coords.shape[1:] != (n, 3):
            raise VinaScoringError(
                f"expected coords batch of shape (P, {n}, 3), got {coords.shape}"
            )
        return coords

    def intermolecular(self, coords: np.ndarray) -> float:
        """Ligand-receptor energy (pre-normalization).

        A batch of one: the single implementation is
        :meth:`intermolecular_batch`, keeping per-pose and population
        evaluation bit-for-bit identical.
        """
        coords = np.asarray(coords, dtype=np.float64)
        return float(self.intermolecular_batch(coords[None])[0])

    def intermolecular_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched ligand-receptor energy: ``(P, n_atoms, 3) -> (P,)``.

        With a :class:`VinaMaps` cache this is one trilinear gather over
        the whole pose batch. The exact pairwise fallback is chunked over
        poses so the ``(chunk, L, R)`` distance tensor stays within a
        bounded working set.
        """
        coords = self._coerce_batch(coords)
        if self._stack is not None:
            return self._gather_batch(coords)
        P = coords.shape[0]
        R = self.rec_coords.shape[0]
        if R == 0:
            return np.zeros(P)
        if self._cells is not None:
            return self._intermolecular_batch_pruned(coords)
        out = np.empty(P)
        L = coords.shape[1]
        chunk = max(1, 2_000_000 // max(1, L * R))
        for start in range(0, P, chunk):
            block = coords[start : start + chunk]
            diff = block[:, :, None, :] - self.rec_coords[None, None, :, :]
            r = np.sqrt((diff * diff).sum(axis=-1))
            within = r <= CUTOFF
            d = r - self._inter_rsum
            e = pairwise_terms(d, self._inter_hydro, self._inter_hbond)
            out[start : start + chunk] = np.where(within, e, 0.0).sum(axis=(1, 2))
        return out

    def _intermolecular_batch_pruned(self, coords: np.ndarray) -> np.ndarray:
        """Cell-list + table intermolecular kernel.

        Flattens the pose batch into ``P*L`` query points, asks the
        receptor cell list for the in-cutoff ``(point, atom)`` pairs and
        interpolates the precomputed per-pair table rows — the dense
        ``(P, L, R)`` distance tensor never materializes.
        """
        P, L = coords.shape[0], coords.shape[1]
        vt = self._etables.vina
        cutoff = self._etables.config.r_max
        out = np.zeros(P)
        pts = coords.reshape(P * L, 3)
        for qi, ai, r in self._cells.iter_query(pts, cutoff):
            lig = qi % L
            e = vt.eval(
                self._inter_rows[lig, ai],
                r,
                self._inter_hydro[lig, ai],
                self._inter_hbond[lig, ai],
            )
            out += np.bincount(qi // L, weights=e, minlength=P)
        return out

    def _gather(self, coords: np.ndarray) -> float:
        """Trilinear interpolation over the per-atom grid stack."""
        return float(self._gather_batch(coords[None])[0])

    def _gather_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched stack gather: ``(P, n_atoms, 3) -> (P,)`` summed values."""
        box = self.box
        f = (coords - box.minimum) / box.spacing
        f = np.clip(f, 0.0, self._shape - 1.000001)
        i0 = f.astype(np.intp)
        t = f - i0
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = x0 + 1, y0 + 1, z0 + 1
        tx, ty, tz = t[..., 0], t[..., 1], t[..., 2]
        s = self._stack
        n = np.arange(s.shape[0])[None, :]
        c00 = s[n, x0, y0, z0] * (1 - tx) + s[n, x1, y0, z0] * tx
        c10 = s[n, x0, y1, z0] * (1 - tx) + s[n, x1, y1, z0] * tx
        c01 = s[n, x0, y0, z1] * (1 - tx) + s[n, x1, y0, z1] * tx
        c11 = s[n, x0, y1, z1] * (1 - tx) + s[n, x1, y1, z1] * tx
        c0 = c00 * (1 - ty) + c10 * ty
        c1 = c01 * (1 - ty) + c11 * ty
        return (c0 * (1 - tz) + c1 * tz).sum(axis=1)

    def intramolecular(self, coords: np.ndarray) -> float:
        coords = np.asarray(coords, dtype=np.float64)
        return float(self.intramolecular_batch(coords[None])[0])

    def intramolecular_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched ligand internal energy: ``(P, n_atoms, 3) -> (P,)``."""
        coords = self._coerce_batch(coords)
        if self._intra_pairs.size == 0:
            return np.zeros(coords.shape[0])
        ii, jj = self._intra_pairs[:, 0], self._intra_pairs[:, 1]
        # C order keeps reduction order independent of the batch size (the
        # axis-1 fancy index yields a transposed-layout array).
        diff = np.ascontiguousarray(coords[:, ii] - coords[:, jj])
        r = np.sqrt((diff * diff).sum(axis=-1))
        if self._intra_rows is not None:
            e = self._etables.vina.eval(
                np.broadcast_to(self._intra_rows, r.shape),
                r,
                self._intra_hydro,
                self._intra_hbond,
            )
            return e.sum(axis=1)
        d = r - self._intra_rsum
        e = pairwise_terms(d, self._intra_hydro, self._intra_hbond)
        return np.where(r <= CUTOFF, e, 0.0).sum(axis=1)

    def outside_penalty(self, coords: np.ndarray) -> float:
        coords = np.atleast_2d(coords)
        return float(self.outside_penalty_batch(coords[None])[0])

    def outside_penalty_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched box-wall penalty: ``(P, n_atoms, 3) -> (P,)``."""
        lo, hi = self.box.minimum, self.box.maximum
        under = np.clip(lo - coords, 0.0, None)
        over = np.clip(coords - hi, 0.0, None)
        return 10.0 * (
            (under**2).sum(axis=(1, 2)) + (over**2).sum(axis=(1, 2))
        )

    def total(self, coords: np.ndarray) -> float:
        """Vina's reported binding affinity estimate (kcal/mol)."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (len(self.ligand.atoms), 3):
            raise VinaScoringError(
                f"expected coords shape ({len(self.ligand.atoms)}, 3), "
                f"got {coords.shape}"
            )
        inter = self.intermolecular(coords)
        penalty = self.outside_penalty(coords)
        # Vina reports inter / (1 + w N_rot); intra only steers the search.
        return (inter + penalty) / self._entropy_norm

    def total_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched reported affinity: ``(P, n_atoms, 3) -> (P,)``."""
        coords = self._coerce_batch(coords)
        inter = self.intermolecular_batch(coords)
        penalty = self.outside_penalty_batch(coords)
        return (inter + penalty) / self._entropy_norm

    def score_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched scoring entry point (alias of :meth:`total_batch`).

        Mirrors ``AD4Scorer.score_batch``: one reported affinity per pose,
        bit-identical to calling :meth:`total` pose by pose.
        """
        return self.total_batch(coords)

    def search_energy(self, coords: np.ndarray) -> float:
        """Objective used during optimization (adds intramolecular)."""
        return self.total(coords) + self.intramolecular(coords)

    def search_energy_batch(self, coords: np.ndarray) -> np.ndarray:
        """Batched search objective: ``(P, n_atoms, 3) -> (P,)``.

        Per-pose values match :meth:`search_energy` exactly (the scalar
        path is a batch of one).
        """
        coords = self._coerce_batch(coords)
        return self.total_batch(coords) + self.intramolecular_batch(coords)
