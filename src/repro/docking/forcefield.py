"""AD4 force-field pairwise parameter tables.

Precomputes, for every ordered pair of AutoDock atom types, the 12-6
Lennard-Jones (or 12-10 hydrogen-bond) coefficients and the desolvation
constants used by both AutoGrid map generation and direct scoring. The
tables are cached at module level — they are pure functions of the static
type registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.chem.elements import AUTODOCK_TYPES, AutoDockType

# AD4.1 free-energy coefficient weights (Huey et al. 2007).
FE_COEFF_VDW = 0.1662
FE_COEFF_HBOND = 0.1209
FE_COEFF_ESTAT = 0.1406
FE_COEFF_DESOLV = 0.1322
FE_COEFF_TORS = 0.2983

#: Nonbonded interaction cutoff in Angstrom (AutoGrid's NBC).
NB_CUTOFF = 8.0

#: Force-field fingerprint for content-addressed map caches: any change
#: to the free-energy weights or cutoff must invalidate persisted maps.
FF_VERSION = (
    f"ad4.1/vdw={FE_COEFF_VDW}/hb={FE_COEFF_HBOND}/es={FE_COEFF_ESTAT}"
    f"/ds={FE_COEFF_DESOLV}/tors={FE_COEFF_TORS}/cut={NB_CUTOFF}"
)

#: Solvation sigma for the Gaussian desolvation envelope.
DESOLV_SIGMA = 3.6

#: Mehler-Solmajer distance-dependent dielectric parameters.
_MS_A, _MS_B, _MS_LAMBDA, _MS_K = -8.5525, 86.9525, 0.003627, 7.7839
_ELECSCALE = 332.06363  # (e^2/A) -> kcal/mol


@dataclass(frozen=True)
class PairParams:
    """LJ/H-bond coefficients for one atom-type pair.

    Energy model: ``E(r) = cA / r^m - cB / r^n`` with (m, n) = (12, 6) for
    dispersion pairs and (12, 10) for donor-acceptor hydrogen bonds.
    """

    cA: float
    cB: float
    m: int
    n: int
    is_hbond: bool

    @property
    def req(self) -> float:
        """Equilibrium (minimum-energy) separation in Angstrom."""
        if self.cB <= 0:
            return 0.0
        # dE/dr = 0  =>  r^(m-n) = (m cA) / (n cB)
        return float((self.m * self.cA / (self.n * self.cB)) ** (1.0 / (self.m - self.n)))


def _is_hbond_pair(ti: AutoDockType, tj: AutoDockType) -> bool:
    return (ti.is_donor and tj.is_acceptor) or (ti.is_acceptor and tj.is_donor)


@lru_cache(maxsize=None)
def pair_params(type_i: str, type_j: str) -> PairParams:
    """Coefficients for the (type_i, type_j) pair, symmetric and cached."""
    try:
        ti, tj = AUTODOCK_TYPES[type_i], AUTODOCK_TYPES[type_j]
    except KeyError as exc:
        raise KeyError(f"unknown AutoDock type: {exc}") from None
    # Lorentz-Berthelot style combination on AD4's Rii/epsii tables.
    req = 0.5 * (ti.rii + tj.rii)
    eps = float(np.sqrt(ti.epsii * tj.epsii))
    if _is_hbond_pair(ti, tj):
        # 12-10 potential with AD4's canonical H-bond well depth of 5
        # kcal/mol at the donor-acceptor equilibrium distance 1.9 A.
        req_hb, eps_hb = 1.9, 5.0
        m, n = 12, 10
        cA = eps_hb / (m - n) * n * req_hb**m
        cB = eps_hb / (m - n) * m * req_hb**n
        return PairParams(cA=cA, cB=cB, m=m, n=n, is_hbond=True)
    m, n = 12, 6
    cA = eps / (m - n) * n * req**m
    cB = eps / (m - n) * m * req**n
    return PairParams(cA=cA, cB=cB, m=m, n=n, is_hbond=False)


#: AD4's EINTCLAMP: per-pair repulsion ceiling (kcal/mol, unweighted).
EINTCLAMP = 100000.0

#: Per-pair electrostatic magnitude ceiling (kcal/mol, unweighted); keeps
#: the r -> 0 Coulomb singularity from dominating the clamped vdW wall.
ESTAT_CLAMP = 300.0


#: AutoGrid's potential smoothing half-width ("smooth 0.5" => 0.25 A).
SMOOTH_RADIUS = 0.25


def vdw_energy(
    r: np.ndarray,
    params: PairParams,
    smooth_clamp: float = EINTCLAMP,
    smooth_radius: float = SMOOTH_RADIUS,
) -> np.ndarray:
    """Pairwise LJ/H-bond energy, AutoGrid-smoothed and EINTCLAMP-ed.

    AutoGrid replaces E(r) with the *minimum of E over the window*
    ``[r - s, r + s]``: below the equilibrium distance that is
    ``E(r + s)``, above it ``E(r - s)``, and inside the window the well
    bottom itself — widening basins so the GA landscape is less brittle.
    """
    r = np.maximum(np.asarray(r, dtype=np.float64), 0.01)
    if smooth_radius > 0.0:
        req = params.req
        r = np.where(
            r < req - smooth_radius,
            r + smooth_radius,
            np.where(r > req + smooth_radius, r - smooth_radius, req),
        )
    e = params.cA / r**params.m - params.cB / r**params.n
    return np.minimum(e, smooth_clamp)


def mehler_solmajer_dielectric(r: np.ndarray) -> np.ndarray:
    """Distance-dependent dielectric eps(r) (Mehler & Solmajer 1991)."""
    r = np.asarray(r, dtype=np.float64)
    lam_B = _MS_LAMBDA * _MS_B
    return _MS_A + _MS_B / (1.0 + _MS_K * np.exp(-lam_B * r))


def coulomb_energy(r: np.ndarray, qi: float | np.ndarray, qj: float | np.ndarray) -> np.ndarray:
    """Screened electrostatic energy in kcal/mol, magnitude-clamped."""
    r = np.maximum(np.asarray(r, dtype=np.float64), 0.01)
    eps = mehler_solmajer_dielectric(r)
    e = _ELECSCALE * np.asarray(qi) * np.asarray(qj) / (eps * r)
    return np.clip(e, -ESTAT_CLAMP, ESTAT_CLAMP)


def desolvation_energy(
    r: np.ndarray,
    type_i: str,
    type_j: str,
    qi: float | np.ndarray = 0.0,
    qj: float | np.ndarray = 0.0,
    qsolpar: float = 0.01097,
) -> np.ndarray:
    """AD4 desolvation term with the Gaussian distance envelope."""
    ti, tj = AUTODOCK_TYPES[type_i], AUTODOCK_TYPES[type_j]
    r = np.asarray(r, dtype=np.float64)
    envelope = np.exp(-(r**2) / (2.0 * DESOLV_SIGMA**2))
    si = ti.solpar + qsolpar * np.abs(np.asarray(qi))
    sj = tj.solpar + qsolpar * np.abs(np.asarray(qj))
    return (si * tj.vol + sj * ti.vol) * envelope


@lru_cache(maxsize=None)
def type_index() -> dict[str, int]:
    """Stable integer index for every AutoDock type (for array lookups)."""
    return {name: i for i, name in enumerate(sorted(AUTODOCK_TYPES))}


@lru_cache(maxsize=None)
def coefficient_matrices() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dense (T, T) matrices (cA, cB, n-exponent, hbond-flag, and m=12).

    Used by the vectorized Vina/AD4 direct scoring paths to avoid Python
    dict lookups inside the pairwise kernels.
    """
    idx = type_index()
    T = len(idx)
    cA = np.zeros((T, T))
    cB = np.zeros((T, T))
    n_exp = np.full((T, T), 6.0)
    hb = np.zeros((T, T), dtype=bool)
    m_exp = np.full((T, T), 12.0)
    for name_i, i in idx.items():
        for name_j, j in idx.items():
            p = pair_params(name_i, name_j)
            cA[i, j] = p.cA
            cB[i, j] = p.cB
            n_exp[i, j] = p.n
            hb[i, j] = p.is_hbond
    return cA, cB, n_exp, hb, m_exp
