"""The docking grid box (AutoGrid's npts/spacing/gridcenter)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: AutoGrid's default grid spacing in Angstrom.
DEFAULT_SPACING = 0.375


@dataclass
class GridBox:
    """An axis-aligned grid of points centred on the binding site.

    ``npts`` counts grid *intervals* per dimension like AutoGrid does, so
    the number of points per axis is ``npts + 1`` and must be even in
    AutoGrid convention (we only require positivity).
    """

    center: np.ndarray
    npts: tuple[int, int, int] = (24, 24, 24)
    spacing: float = DEFAULT_SPACING

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        if self.center.shape != (3,):
            raise ValueError("grid center must be a 3-vector")
        if any(n <= 0 for n in self.npts):
            raise ValueError(f"npts must be positive, got {self.npts}")
        if self.spacing <= 0:
            raise ValueError(f"spacing must be positive, got {self.spacing}")

    @property
    def shape(self) -> tuple[int, int, int]:
        """Points per axis (npts + 1)."""
        return tuple(n + 1 for n in self.npts)

    @property
    def dimensions(self) -> np.ndarray:
        """Physical edge lengths in Angstrom."""
        return np.array(self.npts, dtype=np.float64) * self.spacing

    @property
    def minimum(self) -> np.ndarray:
        return self.center - self.dimensions / 2.0

    @property
    def maximum(self) -> np.ndarray:
        return self.center + self.dimensions / 2.0

    def axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis coordinate vectors of the grid points."""
        lo = self.minimum
        return tuple(
            lo[d] + np.arange(self.shape[d]) * self.spacing for d in range(3)
        )

    def points(self) -> np.ndarray:
        """All grid points as an (P, 3) array in x-fastest order."""
        ax, ay, az = self.axes()
        X, Y, Z = np.meshgrid(ax, ay, az, indexing="ij")
        return np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of which coordinates fall inside the box."""
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        lo, hi = self.minimum, self.maximum
        return np.all((coords >= lo) & (coords <= hi), axis=1)

    def fractional_index(self, coords: np.ndarray) -> np.ndarray:
        """Continuous grid indices of coordinates (for interpolation)."""
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        return (coords - self.minimum) / self.spacing

    def to_dict(self) -> dict:
        """JSON-safe representation (exact float round-trip via repr)."""
        return {
            "center": [float(c) for c in self.center],
            "npts": list(self.npts),
            "spacing": float(self.spacing),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "GridBox":
        return cls(
            center=np.asarray(doc["center"], dtype=np.float64),
            npts=tuple(int(n) for n in doc["npts"]),
            spacing=float(doc["spacing"]),
        )

    @classmethod
    def around_pocket(
        cls,
        pocket_center: np.ndarray,
        pocket_radius: float,
        spacing: float = DEFAULT_SPACING,
        padding: float = 3.0,
    ) -> "GridBox":
        """Box sized to cover a spherical pocket plus padding."""
        if pocket_radius <= 0:
            raise ValueError("pocket radius must be positive")
        edge = 2.0 * (pocket_radius + padding)
        n = int(np.ceil(edge / spacing))
        n += n % 2  # AutoGrid keeps npts even
        return cls(center=np.asarray(pocket_center, dtype=np.float64),
                   npts=(n, n, n), spacing=spacing)

    @classmethod
    def around_ligand(
        cls,
        ligand_coords: np.ndarray,
        spacing: float = DEFAULT_SPACING,
        padding: float = 4.0,
    ) -> "GridBox":
        """Box covering a ligand's current position plus padding."""
        coords = np.asarray(ligand_coords, dtype=np.float64)
        lo = coords.min(axis=0) - padding
        hi = coords.max(axis=0) + padding
        center = (lo + hi) / 2
        n = int(np.ceil((hi - lo).max() / spacing))
        n += n % 2
        return cls(center=center, npts=(n, n, n), spacing=spacing)
