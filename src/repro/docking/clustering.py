"""Conformational clustering of docked poses (AD4's analysis step).

AD4 groups docked conformations by RMSD: poses are visited best-energy
first, and each pose joins the first existing cluster whose representative
lies within the tolerance, else founds a new cluster.
"""

from __future__ import annotations

import numpy as np

from repro.chem.geometry import rmsd
from repro.docking.conformation import ClusterInfo, Pose

#: AD4's default clustering tolerance in Angstrom.
DEFAULT_TOLERANCE = 2.0


def cluster_poses(
    poses: list[Pose], tolerance: float = DEFAULT_TOLERANCE
) -> list[ClusterInfo]:
    """Greedy energy-ordered RMSD clustering; annotates ``pose.cluster``.

    Returns clusters sorted by their best (lowest) energy, matching the
    histogram AD4 prints at the end of a DLG file.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if not poses:
        return []
    order = np.argsort([p.energy for p in poses])
    reps: list[int] = []  # representative pose index per cluster
    members: list[list[int]] = []
    for idx in order.tolist():
        pose = poses[idx]
        placed = False
        for c, rep_idx in enumerate(reps):
            if rmsd(pose.coords, poses[rep_idx].coords) <= tolerance:
                members[c].append(idx)
                pose.cluster = c
                placed = True
                break
        if not placed:
            pose.cluster = len(reps)
            reps.append(idx)
            members.append([idx])
    clusters = [
        ClusterInfo(
            rank=c,
            size=len(m),
            best_energy=min(poses[i].energy for i in m),
            mean_energy=float(np.mean([poses[i].energy for i in m])),
            representative=reps[c],
        )
        for c, m in enumerate(members)
    ]
    clusters.sort(key=lambda ci: ci.best_energy)
    remap = {ci.rank: new_rank for new_rank, ci in enumerate(clusters)}
    for new_rank, ci in enumerate(clusters):
        ci.rank = new_rank
    for pose in poses:
        pose.cluster = remap[pose.cluster]
    return clusters
