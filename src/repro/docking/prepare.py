"""MGLTools-equivalent preparation: the glue activities of SciDock.

* :func:`prepare_ligand` — ``prepare_ligand4.py``: Gasteiger charges,
  AutoDock atom types, merged non-polar hydrogens, torsion tree, PDBQT.
* :func:`prepare_receptor` — ``prepare_receptor4.py``: charges, types,
  rigid PDBQT; rejects atoms with no AD4 parameterization.
* :func:`prepare_gpf` — ``prepare_gpf4.py``: the Grid Parameter File.
* :func:`prepare_dpf` — ``prepare_dpf4.py``: the Docking Parameter File.
* :func:`prepare_vina_config` — the custom script of activity 7b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.charges import assign_gasteiger_charges
from repro.chem.elements import AUTODOCK_TYPES, UNPARAMETERIZED_METALS, autodock_type_for
from repro.chem.formats.pdbqt import write_pdbqt
from repro.chem.molecule import Molecule
from repro.chem.torsions import TorsionTree
from repro.docking.box import GridBox


class PreparationError(ValueError):
    """Raised when a molecule cannot be prepared for docking."""


@dataclass
class LigandPreparation:
    """Output of ``prepare_ligand``: typed molecule + torsion tree + text."""

    molecule: Molecule
    tree: TorsionTree
    pdbqt: str

    @property
    def torsdof(self) -> int:
        return self.tree.n_torsions

    @property
    def atom_types(self) -> tuple[str, ...]:
        return tuple(sorted({a.autodock_type for a in self.molecule.atoms}))


@dataclass
class ReceptorPreparation:
    """Output of ``prepare_receptor``: typed rigid molecule + text."""

    molecule: Molecule
    pdbqt: str

    @property
    def atom_types(self) -> tuple[str, ...]:
        return tuple(sorted({a.autodock_type for a in self.molecule.atoms}))


def _assign_types(mol: Molecule) -> None:
    """AutoDock typing pass shared by ligand and receptor preparation."""
    for i, a in enumerate(mol.atoms):
        if a.element in UNPARAMETERIZED_METALS:
            raise PreparationError(
                f"atom {a.name} ({a.element}) has no AutoDock parameters"
            )
        donor_neighbor = False
        acceptor = False
        if a.element == "H":
            donor_neighbor = any(
                mol.atoms[j].element in ("N", "O", "S") for j in mol.neighbors(i)
            )
        if a.element == "N":
            # Nitrogens with fewer than 3 heavy neighbors keep a lone pair.
            heavy = sum(1 for j in mol.neighbors(i) if mol.atoms[j].is_heavy)
            acceptor = heavy < 3
        a.autodock_type = autodock_type_for(
            a.element,
            aromatic=a.aromatic,
            h_bond_donor_neighbor=donor_neighbor,
            h_bond_acceptor=acceptor,
        )


def _merge_nonpolar_hydrogens(mol: Molecule) -> Molecule:
    """Drop C-H hydrogens, folding their charge into the carbon (AD4 united-atom)."""
    drop: set[int] = set()
    for i, a in enumerate(mol.atoms):
        if a.element != "H":
            continue
        neighbors = mol.neighbors(i)
        if neighbors and all(mol.atoms[j].element == "C" for j in neighbors):
            drop.add(i)
            for j in neighbors:
                mol.atoms[j].charge += a.charge / len(neighbors)
    if not drop:
        return mol
    keep = [i for i in range(len(mol.atoms)) if i not in drop]
    remap = {old: new for new, old in enumerate(keep)}
    out = Molecule(mol.name)
    for i in keep:
        out.add_atom(mol.atoms[i].copy())
    for b in mol.bonds:
        if b.i in remap and b.j in remap:
            out.add_bond(remap[b.i], remap[b.j], b.order, b.aromatic)
    out.metadata = dict(mol.metadata)
    out.renumber()
    return out


def prepare_ligand(mol: Molecule, *, merge_nonpolar_h: bool = True) -> LigandPreparation:
    """``prepare_ligand4.py``: charge, type, build torsion tree, emit PDBQT."""
    if len(mol.atoms) == 0:
        raise PreparationError("cannot prepare an empty ligand")
    work = mol.copy()
    if not work.bonds:
        work.perceive_bonds()
    if len(work.connected_components()) != 1:
        raise PreparationError(
            f"ligand {mol.name!r} has disconnected fragments; clean the input"
        )
    assign_gasteiger_charges(work)
    if merge_nonpolar_h:
        work = _merge_nonpolar_hydrogens(work)
    _assign_types(work)
    tree = TorsionTree(work)
    work.metadata["torsion_tree"] = tree.to_pdbqt_records()
    work.metadata["torsdof"] = tree.n_torsions
    return LigandPreparation(molecule=work, tree=tree, pdbqt=write_pdbqt(work))


def prepare_receptor(mol: Molecule, *, strip_water: bool = True) -> ReceptorPreparation:
    """``prepare_receptor4.py``: charge, type, emit rigid PDBQT."""
    if len(mol.atoms) == 0:
        raise PreparationError("cannot prepare an empty receptor")
    work = mol.copy()
    if strip_water:
        keep = [i for i, a in enumerate(work.atoms) if a.residue_name != "HOH"]
        if len(keep) != len(work.atoms):
            remap = {old: new for new, old in enumerate(keep)}
            stripped = Molecule(work.name)
            for i in keep:
                stripped.add_atom(work.atoms[i].copy())
            for b in work.bonds:
                if b.i in remap and b.j in remap:
                    stripped.add_bond(remap[b.i], remap[b.j], b.order, b.aromatic)
            stripped.metadata = dict(work.metadata)
            work = stripped
    if len(work.atoms) == 0:
        raise PreparationError("receptor contained only water")
    if not work.bonds:
        # PDB receptors rarely carry CONECT records; Gasteiger charges and
        # donor/acceptor typing both need the bond graph.
        work.perceive_bonds()
    assign_gasteiger_charges(work)
    _assign_types(work)
    work.renumber()
    return ReceptorPreparation(molecule=work, pdbqt=write_pdbqt(work, rigid=True))


def prepare_gpf(
    receptor: ReceptorPreparation,
    ligand: LigandPreparation,
    box: GridBox,
) -> str:
    """Grid Parameter File for AutoGrid (activity 4)."""
    types = " ".join(ligand.atom_types)
    rec = receptor.molecule.name or "receptor"
    lines = [
        f"npts {box.npts[0]} {box.npts[1]} {box.npts[2]}"
        "                        # num. grid points in xyz",
        "gridfld {0}.maps.fld                # grid_data_file".format(rec),
        f"spacing {box.spacing:.3f}                        # spacing (A)",
        f"receptor_types {' '.join(receptor.atom_types)}   # receptor atom types",
        f"ligand_types {types}                 # ligand atom types",
        f"receptor {rec}.pdbqt                # macromolecule",
        f"gridcenter {box.center[0]:.3f} {box.center[1]:.3f} {box.center[2]:.3f}"
        "  # xyz-coordinates or auto",
        "smooth 0.5                           # store minimum energy w/in rad(A)",
    ]
    for t in ligand.atom_types:
        lines.append(f"map {rec}.{t}.map                    # atom-specific affinity map")
    lines.append(f"elecmap {rec}.e.map                  # electrostatic potential map")
    lines.append(f"dsolvmap {rec}.d.map                 # desolvation potential map")
    lines.append("dielectric -0.1465                   # <0, AD4 distance-dep.diel")
    return "\n".join(lines) + "\n"


def prepare_dpf(
    receptor: ReceptorPreparation,
    ligand: LigandPreparation,
    *,
    ga_runs: int = 10,
    ga_pop_size: int = 150,
    ga_num_evals: int = 2_500_000,
    ga_num_generations: int = 27_000,
    seed: int | None = None,
) -> str:
    """Docking Parameter File for AD4 (activity 7a)."""
    rec = receptor.molecule.name or "receptor"
    lig = ligand.molecule.name or "ligand"
    lines = [
        "autodock_parameter_version 4.2       # used by autodock to validate parameter set",
        f"outlev 1                             # diagnostic output level",
        f"seed {'pid time' if seed is None else seed}  # seeds for random generator",
        f"ligand_types {' '.join(ligand.atom_types)}    # atoms types in ligand",
        f"fld {rec}.maps.fld                   # grid_data_file",
    ]
    for t in ligand.atom_types:
        lines.append(f"map {rec}.{t}.map                    # atom-specific affinity map")
    lines += [
        f"elecmap {rec}.e.map                  # electrostatics map",
        f"desolvmap {rec}.d.map                # desolvation map",
        f"move {lig}.pdbqt                     # small molecule",
        f"ga_pop_size {ga_pop_size}            # number of individuals in population",
        f"ga_num_evals {ga_num_evals}          # maximum number of energy evaluations",
        f"ga_num_generations {ga_num_generations}  # maximum number of generations",
        "ga_elitism 1                         # number of top individuals to survive",
        "ga_mutation_rate 0.02                # rate of gene mutation",
        "ga_crossover_rate 0.8                # rate of crossover",
        "sw_max_its 300                       # iterations of Solis & Wets local search",
        "ls_search_freq 0.06                  # probability of local search on individual",
        f"ga_run {ga_runs}                     # do this many hybrid GA-LS runs",
        "analysis                             # perform a ranked cluster analysis",
    ]
    return "\n".join(lines) + "\n"


def prepare_vina_config(
    receptor: ReceptorPreparation,
    ligand: LigandPreparation,
    box: GridBox,
    *,
    exhaustiveness: int = 8,
    num_modes: int = 9,
    energy_range: float = 3.0,
    cpu: int = 1,
    seed: int | None = None,
) -> str:
    """Vina configuration file (activity 7b's custom script output)."""
    rec = receptor.molecule.name or "receptor"
    lig = ligand.molecule.name or "ligand"
    dims = box.dimensions
    lines = [
        f"receptor = {rec}.pdbqt",
        f"ligand = {lig}.pdbqt",
        "",
        f"center_x = {box.center[0]:.3f}",
        f"center_y = {box.center[1]:.3f}",
        f"center_z = {box.center[2]:.3f}",
        "",
        f"size_x = {dims[0]:.3f}",
        f"size_y = {dims[1]:.3f}",
        f"size_z = {dims[2]:.3f}",
        "",
        f"exhaustiveness = {exhaustiveness}",
        f"num_modes = {num_modes}",
        f"energy_range = {energy_range:.1f}",
        f"cpu = {cpu}",
    ]
    if seed is not None:
        lines.append(f"seed = {seed}")
    return "\n".join(lines) + "\n"


def parse_vina_config(text: str) -> dict:
    """Parse a Vina config back into a dict (used by activity 8b)."""
    out: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#")[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise PreparationError(f"bad vina config line {lineno}: {line!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        try:
            out[key] = int(value)
        except ValueError:
            try:
                out[key] = float(value)
            except ValueError:
                out[key] = value
    return out
