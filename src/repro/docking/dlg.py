"""Docking log files: AD4 ``.dlg`` and Vina stdout-style logs.

The provenance extractors (SciCumulus instrumentation) parse these files
to pull FEB/RMSD into the provenance database, exactly as the paper's
Query 2 workflow does with real AutoDock output.
"""

from __future__ import annotations

import re

from repro.docking.conformation import DockingResult, format_ki


def write_dlg(result: DockingResult) -> str:
    """Render an AD4-style docking log (subset of the real format)."""
    lines = [
        "_______________________________________________________",
        "__________//____________________________/////_________",
        "AutoDock 4.2.5.1 (repro reimplementation)",
        "",
        f"DPF> move {result.ligand_name}.pdbqt",
        f"DPF> fld {result.receptor_name}.maps.fld",
        f"Random seed: {result.seed}",
        f"Number of energy evaluations: {result.evaluations}",
        f"Total docking runtime: {result.runtime_seconds:.3f} s",
        "",
    ]
    for k, pose in enumerate(result.poses, start=1):
        lines += [
            f"DOCKED: MODEL     {k}",
            f"DOCKED: USER    Run = {k}",
            "DOCKED: USER    Estimated Free Energy of Binding    ="
            f" {pose.energy:+8.2f} kcal/mol",
            "DOCKED: USER    Estimated Inhibition Constant, Ki   ="
            f" {format_ki(pose.ki)}",
            "DOCKED: USER",
            "DOCKED: USER    Intermolecular Energy               ="
            f" {pose.intermolecular:+8.2f} kcal/mol",
            "DOCKED: USER    Internal Energy                     ="
            f" {pose.intramolecular:+8.2f} kcal/mol",
            "DOCKED: USER    Torsional Free Energy               ="
            f" {pose.torsional:+8.2f} kcal/mol",
            f"DOCKED: USER    RMSD from reference structure       ="
            f" {pose.rmsd_from_input:8.2f} A",
            "DOCKED: ENDMDL",
            "",
        ]
    lines.append("    CLUSTERING HISTOGRAM")
    lines.append("    ____________________")
    lines.append("   Clus | Lowest    | Run | Mean      | Num | Histogram")
    lines.append("   Rank | Binding   |     | Binding   | in  |")
    lines.append("        | Energy    |     | Energy    | Clus|")
    lines.append("   _____|___________|_____|___________|_____|" + "_" * 20)
    for c in result.clusters:
        bars = "#" * c.size
        lines.append(
            f"   {c.rank + 1:>4} | {c.best_energy:>+9.2f} |"
            f" {c.representative + 1:>3} | {c.mean_energy:>+9.2f} |"
            f" {c.size:>3} | {bars}"
        )
    lines.append("")
    if result.poses:
        best = result.best_pose
        lines.append("    LOWEST ENERGY DOCKED CONFORMATION from EACH CLUSTER")
        lines.append(
            f"    Estimated Free Energy of Binding = {best.energy:+8.2f} kcal/mol"
        )
        lines.append(
            f"    RMSD from reference structure = {best.rmsd_from_input:8.2f} A"
        )
    lines.append("Successful Completion")
    return "\n".join(lines) + "\n"


def write_vina_log(result: DockingResult) -> str:
    """Render a Vina-style mode table log."""
    lines = [
        "#################################################################",
        "# AutoDock Vina 1.1.2 (repro reimplementation)                  #",
        "#################################################################",
        "",
        f"Receptor: {result.receptor_name}.pdbqt",
        f"Ligand: {result.ligand_name}.pdbqt",
        f"Random seed: {result.seed}",
        f"Function evaluations: {result.evaluations}",
        f"Total docking runtime: {result.runtime_seconds:.3f} s",
        "",
        "mode |   affinity | dist from best mode",
        "     | (kcal/mol) | rmsd l.b.| rmsd u.b.",
        "-----+------------+----------+----------",
    ]
    best = result.poses[0] if result.poses else None
    from repro.chem.geometry import rmsd as _rmsd

    for k, pose in enumerate(result.poses, start=1):
        lb = 0.0 if best is None else _rmsd(pose.coords, best.coords)
        lines.append(
            f"{k:>4}   {pose.energy:>10.1f}   {lb:>8.3f}   {lb:>8.3f}"
        )
    lines.append("Writing output ... done.")
    return "\n".join(lines) + "\n"


_DLG_FEB = re.compile(
    r"^DOCKED:.*Estimated Free Energy of Binding\s*=\s*([+-]?\d+\.\d+)\s*kcal/mol",
    re.MULTILINE,
)
_DLG_RMSD = re.compile(
    r"^DOCKED:.*RMSD from reference structure\s*=\s*([+-]?\d+\.\d+)", re.MULTILINE
)
_DLG_EVALS = re.compile(r"Number of energy evaluations:\s*(\d+)")
_DLG_RUNTIME = re.compile(r"Total docking runtime:\s*([\d.]+)\s*s")
_VINA_MODE = re.compile(r"^\s*(\d+)\s+([+-]?\d+\.\d+)\s+([\d.]+)\s+([\d.]+)\s*$")


def parse_dlg(text: str) -> dict:
    """Extract FEB/RMSD/eval statistics from a DLG (extractor component)."""
    febs = [float(m) for m in _DLG_FEB.findall(text)]
    rmsds = [float(m) for m in _DLG_RMSD.findall(text)]
    if not febs:
        raise ValueError("no docked conformations found in DLG text")
    evals_m = _DLG_EVALS.search(text)
    runtime_m = _DLG_RUNTIME.search(text)
    return {
        "best_feb": min(febs),
        "all_feb": febs,
        "best_rmsd": rmsds[febs.index(min(febs))] if rmsds else None,
        "all_rmsd": rmsds,
        "evaluations": int(evals_m.group(1)) if evals_m else None,
        "runtime_seconds": float(runtime_m.group(1)) if runtime_m else None,
        "success": "Successful Completion" in text,
    }


def parse_vina_log(text: str) -> dict:
    """Extract the mode table from a Vina log (extractor component)."""
    modes = []
    for line in text.splitlines():
        m = _VINA_MODE.match(line)
        if m:
            modes.append(
                {
                    "mode": int(m.group(1)),
                    "affinity": float(m.group(2)),
                    "rmsd_lb": float(m.group(3)),
                    "rmsd_ub": float(m.group(4)),
                }
            )
    if not modes:
        raise ValueError("no binding modes found in Vina log text")
    runtime_m = _DLG_RUNTIME.search(text)
    return {
        "best_feb": min(m["affinity"] for m in modes),
        "modes": modes,
        "runtime_seconds": float(runtime_m.group(1)) if runtime_m else None,
        "success": "done." in text,
    }
