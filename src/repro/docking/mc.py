"""Iterated local search (Vina's global optimizer).

Trott & Olson (2010): a sequence of (mutate -> BFGS local optimization ->
Metropolis accept) steps, run as several independent restarts; the pool
of accepted minima becomes the candidate pose set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.docking.conformation import Conformation
from repro.docking.local_search import bfgs_minimize

Objective = Callable[[np.ndarray], float]


@dataclass
class ILSConfig:
    """Scaled-down Vina search knobs."""

    restarts: int = 4
    steps_per_restart: int = 12
    temperature: float = 1.2  # kcal/mol, Metropolis acceptance
    mutation_translation: float = 2.0
    mutation_torsion: float = 1.0
    bfgs_iterations: int = 25
    translation_extent: float = 5.0
    max_evaluations: int | None = None

    def __post_init__(self) -> None:
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if self.steps_per_restart < 1:
            raise ValueError("steps_per_restart must be >= 1")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")


@dataclass
class ILSResult:
    best: Conformation
    best_energy: float
    evaluations: int
    minima: list[tuple[Conformation, float]] = field(default_factory=list)


class IteratedLocalSearch:
    def __init__(self, objective: Objective, n_torsions: int, config: ILSConfig | None = None):
        self.objective = objective
        self.n_torsions = n_torsions
        self.config = config or ILSConfig()

    def _mutate(self, vec: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vina-style mutation: perturb one randomly chosen block."""
        out = vec.copy()
        choice = rng.integers(3 if self.n_torsions == 0 else 4)
        if choice == 0:  # translation
            out[:3] += rng.normal(scale=self.config.mutation_translation, size=3)
        elif choice == 1:  # orientation
            out[3:7] += rng.normal(scale=0.3, size=4)
        elif choice == 2:  # everything a little
            out += rng.normal(scale=0.15, size=out.size)
        else:  # one torsion
            t = 7 + int(rng.integers(self.n_torsions))
            out[t] += rng.normal(scale=self.config.mutation_torsion)
        return Conformation(out).normalized().vector

    def run(
        self,
        rng: np.random.Generator,
        center: np.ndarray | None = None,
    ) -> ILSResult:
        cfg = self.config
        evals = 0
        minima: list[tuple[Conformation, float]] = []
        best_vec: np.ndarray | None = None
        best_e = np.inf

        for _restart in range(cfg.restarts):
            current = Conformation.random(
                self.n_torsions, rng, cfg.translation_extent, center
            ).normalized()
            res = bfgs_minimize(
                self.objective, current.vector, max_iterations=cfg.bfgs_iterations
            )
            evals += res.evaluations
            cur_vec, cur_e = res.vector, res.energy
            minima.append((Conformation(cur_vec).normalized(), cur_e))
            for _step in range(cfg.steps_per_restart):
                if cfg.max_evaluations is not None and evals >= cfg.max_evaluations:
                    break
                candidate = self._mutate(cur_vec, rng)
                res = bfgs_minimize(
                    self.objective, candidate, max_iterations=cfg.bfgs_iterations
                )
                evals += res.evaluations
                delta = res.energy - cur_e
                if delta < 0 or rng.random() < np.exp(-delta / cfg.temperature):
                    cur_vec, cur_e = res.vector, res.energy
                    minima.append((Conformation(cur_vec).normalized(), cur_e))
            if cur_e < best_e:
                best_vec, best_e = cur_vec, cur_e

        assert best_vec is not None  # restarts >= 1 guarantees assignment
        minima.sort(key=lambda pair: pair[1])
        return ILSResult(
            best=Conformation(best_vec).normalized(),
            best_energy=float(best_e),
            evaluations=evals,
            minima=minima,
        )
