"""AutoGrid: precomputed affinity maps over the docking box.

For every ligand atom type AutoGrid tabulates, at each grid point, the
interaction energy with the whole (rigid) receptor; docking then scores a
pose by trilinear interpolation instead of summing receptor pairs. This
module reproduces that pipeline: one map per requested atom type, plus the
electrostatic and desolvation maps, the ``.fld`` grid-field metadata and
the ``.glg`` log.

The inner loops are fully vectorized: each map is a single
``(P points x N receptor atoms)`` broadcast, chunked over atoms to bound
peak memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking import forcefield as ff
from repro.docking.neighbors import CellList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docking.etables import EtableSet


class GridError(ValueError):
    """Raised for invalid grid-generation requests."""


@dataclass
class GridMaps:
    """The artifact bundle AutoGrid produces.

    ``affinity[t]`` is the per-type map with shape ``box.shape``;
    ``electrostatic`` holds the potential per unit charge; ``desolvation``
    the charge-independent desolvation field. ``log`` mirrors the ``.glg``
    run log.
    """

    box: GridBox
    affinity: dict[str, np.ndarray]
    electrostatic: np.ndarray
    desolvation: np.ndarray
    receptor_name: str = ""
    log: str = ""

    @property
    def atom_types(self) -> tuple[str, ...]:
        return tuple(sorted(self.affinity))

    def interpolate(self, map_name: str, coords: np.ndarray) -> np.ndarray:
        """Trilinear interpolation of one map at arbitrary coordinates.

        ``coords`` may be a single point ``(3,)``, a pose ``(N, 3)`` or a
        pose batch ``(P, N, 3)`` — any leading shape is preserved in the
        returned value array. Coordinates outside the box are clamped to
        the boundary and additionally charged a steep quadratic wall
        penalty by callers (see the engines) — here we only interpolate.
        """
        if map_name == "e":
            grid = self.electrostatic
        elif map_name == "d":
            grid = self.desolvation
        else:
            try:
                grid = self.affinity[map_name]
            except KeyError:
                raise GridError(
                    f"no affinity map for type {map_name!r}; have {self.atom_types}"
                ) from None
        return trilinear(grid, self.box, coords)

    def outside_penalty(self, coords: np.ndarray, weight: float = 10.0) -> np.ndarray:
        """Quadratic wall penalty (kcal/mol) for atoms leaving the box.

        Accepts any ``(..., 3)`` coordinate array; the per-atom penalty
        keeps the leading shape, so a ``(P, N, 3)`` pose batch yields a
        ``(P, N)`` penalty array.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        lo, hi = self.box.minimum, self.box.maximum
        under = np.clip(lo - coords, 0.0, None)
        over = np.clip(coords - hi, 0.0, None)
        return weight * ((under**2).sum(axis=-1) + (over**2).sum(axis=-1))


def trilinear(grid: np.ndarray, box: GridBox, coords: np.ndarray) -> np.ndarray:
    """Vectorized trilinear interpolation with boundary clamping.

    ``coords`` may carry any leading shape ``(..., 3)`` — e.g. a
    ``(P, N, 3)`` batch of P poses of an N-atom ligand — and the values
    come back with that leading shape ``(...)``. The flattened evaluation
    is element-for-element identical to interpolating each pose
    separately.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
    lead_shape = coords.shape[:-1]
    coords = coords.reshape(-1, 3)
    f = box.fractional_index(coords)
    shape = np.array(box.shape)
    f = np.clip(f, 0.0, shape - 1.000001)
    i0 = np.floor(f).astype(np.intp)
    i1 = np.minimum(i0 + 1, shape - 1)
    t = f - i0
    x0, y0, z0 = i0[:, 0], i0[:, 1], i0[:, 2]
    x1, y1, z1 = i1[:, 0], i1[:, 1], i1[:, 2]
    tx, ty, tz = t[:, 0], t[:, 1], t[:, 2]
    c000 = grid[x0, y0, z0]
    c100 = grid[x1, y0, z0]
    c010 = grid[x0, y1, z0]
    c110 = grid[x1, y1, z0]
    c001 = grid[x0, y0, z1]
    c101 = grid[x1, y0, z1]
    c011 = grid[x0, y1, z1]
    c111 = grid[x1, y1, z1]
    c00 = c000 * (1 - tx) + c100 * tx
    c10 = c010 * (1 - tx) + c110 * tx
    c01 = c001 * (1 - tx) + c101 * tx
    c11 = c011 * (1 - tx) + c111 * tx
    c0 = c00 * (1 - ty) + c10 * ty
    c1 = c01 * (1 - ty) + c11 * ty
    return (c0 * (1 - tz) + c1 * tz).reshape(lead_shape)


class AutoGrid:
    """Map generator (the fifth SciDock activity).

    Parameters
    ----------
    chunk_atoms:
        Receptor atoms are processed in chunks of this size so the
        ``points x atoms`` broadcast stays within a bounded footprint.
    cutoff:
        Nonbonded cutoff; receptor atoms farther than this from the box
        (plus box diagonal) are skipped entirely.
    etables:
        Optional :class:`~repro.docking.etables.EtableSet`. When given,
        the build runs the table-driven kernel over a receptor cell
        list: each grid point only visits atoms within the cutoff and
        all pair energies come from row interpolation. The cutoff is
        then the table extent (``etables.config.r_max``).
    """

    def __init__(
        self,
        chunk_atoms: int = 256,
        cutoff: float = ff.NB_CUTOFF,
        etables: "EtableSet | None" = None,
    ) -> None:
        if chunk_atoms < 1:
            raise GridError("chunk_atoms must be >= 1")
        self.chunk_atoms = chunk_atoms
        self.etables = etables
        self.cutoff = etables.config.r_max if etables is not None else cutoff
        #: Kernel mode label surfaced in logs/provenance.
        self.kernel = "tables" if etables is not None else "analytic"

    def _relevant_atoms(
        self, receptor: Molecule, box: GridBox
    ) -> tuple[np.ndarray, list[str], np.ndarray]:
        coords = receptor.coords
        types: list[str] = []
        for a in receptor.atoms:
            if a.autodock_type is None:
                raise GridError(
                    f"receptor atom {a.name} has no AutoDock type; run "
                    "prepare_receptor first"
                )
            types.append(a.autodock_type)
        charges = np.array([a.charge for a in receptor.atoms])
        # Keep atoms within cutoff of the box volume.
        lo = box.minimum - self.cutoff
        hi = box.maximum + self.cutoff
        mask = np.all((coords >= lo) & (coords <= hi), axis=1)
        idx = np.nonzero(mask)[0]
        return coords[idx], [types[i] for i in idx], charges[idx]

    def run(
        self,
        receptor: Molecule,
        box: GridBox,
        ligand_types: tuple[str, ...] | list[str],
    ) -> GridMaps:
        """Generate all maps; the counterpart of running ``autogrid4``."""
        if not ligand_types:
            raise GridError("at least one ligand atom type is required")
        started = time.perf_counter()
        points = box.points()  # (P, 3)
        P = points.shape[0]
        rec_coords, rec_types, rec_charges = self._relevant_atoms(receptor, box)
        N = rec_coords.shape[0]

        affinity = {t: np.zeros(P) for t in dict.fromkeys(ligand_types)}
        electro = np.zeros(P)
        desolv = np.zeros(P)

        if self.etables is not None:
            self._run_tables(
                points, rec_coords, rec_types, rec_charges,
                affinity, electro, desolv,
            )
            return self._package(
                box, receptor, affinity, electro, desolv, N, started
            )

        # Group receptor atoms by AutoDock type: pair parameters are then
        # constant per (ligand type, group), so the whole group broadcasts
        # in one vector expression.
        by_type: dict[str, np.ndarray] = {}
        rec_types_arr = np.array(rec_types)
        for rt in dict.fromkeys(rec_types):
            by_type[rt] = np.nonzero(rec_types_arr == rt)[0]

        for rt, group_idx in by_type.items():
            rt_vol = ff.AUTODOCK_TYPES[rt].vol
            for start in range(0, len(group_idx), self.chunk_atoms):
                sel = group_idx[start : start + self.chunk_atoms]
                chunk = rec_coords[sel]  # (C, 3)
                qchunk = rec_charges[sel]
                diff = points[:, None, :] - chunk[None, :, :]
                r2 = np.einsum("pcx,pcx->pc", diff, diff)
                # Sparsify: most grid-point/atom pairs exceed the cutoff,
                # so gather the within-cutoff pairs once and accumulate
                # with bincount instead of dense where-sums.
                pi, ci = np.nonzero(r2 <= self.cutoff**2)
                if pi.size == 0:
                    continue
                rv = np.maximum(np.sqrt(r2[pi, ci]), 0.01)
                qv = qchunk[ci]
                # Electrostatic map: potential per unit probe charge,
                # per-pair clamped like the pairwise Coulomb kernel.
                eps = ff.mehler_solmajer_dielectric(rv)
                e_pair = np.clip(
                    332.06363 * qv / (eps * rv),
                    -ff.ESTAT_CLAMP,
                    ff.ESTAT_CLAMP,
                )
                electro += np.bincount(pi, weights=e_pair, minlength=P)
                # Desolvation envelope weighted by receptor atom volume;
                # the scorer multiplies by |q_ligand|, so the charge-based
                # solvation parameter and the FE weight live in the map.
                envelope = np.exp(-(rv**2) / (2.0 * ff.DESOLV_SIGMA**2))
                desolv += np.bincount(
                    pi,
                    weights=ff.FE_COEFF_DESOLV * envelope * rt_vol * 0.01097,
                    minlength=P,
                )
                # Per-ligand-type affinity maps (vdW/H-bond + pair desolv).
                for lt, grid in affinity.items():
                    p = ff.pair_params(lt, rt)
                    weight = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
                    e = ff.vdw_energy(rv, p) * weight
                    e += ff.FE_COEFF_DESOLV * ff.desolvation_energy(
                        rv, lt, rt, 0.0, qv
                    )
                    grid += np.bincount(pi, weights=e, minlength=P)

        return self._package(
            box, receptor, affinity, electro, desolv, N, started
        )

    def _run_tables(
        self,
        points: np.ndarray,
        rec_coords: np.ndarray,
        rec_types: list[str],
        rec_charges: np.ndarray,
        affinity: dict[str, np.ndarray],
        electro: np.ndarray,
        desolv: np.ndarray,
    ) -> None:
        """Cell-list + lookup-table map build (accumulates in place).

        Per in-cutoff ``(point, atom)`` pair the affinity maps interpolate
        a combined row (weighted vdW/H-bond + charge-independent pair
        desolvation) and add the receptor-charge desolvation as
        ``FE_DESOLV * qsolpar * vol_lt * |q| * envelope(r)``; the e and d
        maps reuse the shared factor/envelope rows.
        """
        from repro.docking.etables import QSOLPAR

        ad4t = self.etables.ad4
        P = points.shape[0]
        if rec_coords.shape[0] == 0:
            return
        rt_names = list(dict.fromkeys(rec_types))
        rt_index = {rt: k for k, rt in enumerate(rt_names)}
        atom_rt = np.array([rt_index[t] for t in rec_types], dtype=np.intp)
        vols = np.array([ff.AUTODOCK_TYPES[t].vol for t in rec_types])
        abs_q = np.abs(rec_charges)
        rows_per_lt = {
            lt: np.array(
                [ad4t.grid_row(lt, rt) for rt in rt_names], dtype=np.intp
            )
            for lt in affinity
        }
        qcoef = {
            lt: ff.FE_COEFF_DESOLV * QSOLPAR * ff.AUTODOCK_TYPES[lt].vol
            for lt in affinity
        }
        cells = CellList(rec_coords, cell_size=self.cutoff)
        for pi, ai, r in cells.iter_query(points, self.cutoff):
            env = ad4t.eval_envelope(r)
            electro += np.bincount(
                pi, weights=ad4t.eval_estat(rec_charges[ai], r), minlength=P
            )
            desolv += np.bincount(
                pi,
                weights=ff.FE_COEFF_DESOLV * QSOLPAR * env * vols[ai],
                minlength=P,
            )
            for lt, grid in affinity.items():
                e = ad4t.eval_rows(rows_per_lt[lt][atom_rt[ai]], r)
                e += qcoef[lt] * abs_q[ai] * env
                grid += np.bincount(pi, weights=e, minlength=P)

    def _package(
        self,
        box: GridBox,
        receptor: Molecule,
        affinity: dict[str, np.ndarray],
        electro: np.ndarray,
        desolv: np.ndarray,
        n_atoms: int,
        started: float,
    ) -> GridMaps:
        shape = box.shape
        elapsed = time.perf_counter() - started
        log = "\n".join(
            [
                "autogrid4: successful completion",
                f"kernel: {self.kernel} (cutoff {self.cutoff:.2f} A)",
                f"receptor: {receptor.name} ({n_atoms} atoms within cutoff)",
                f"grid: {shape[0]}x{shape[1]}x{shape[2]} points, "
                f"spacing {box.spacing:.3f} A",
                f"maps: {', '.join(sorted(affinity))} + e + d",
                f"elapsed: {elapsed:.3f} s",
            ]
        )
        return GridMaps(
            box=box,
            affinity={t: g.reshape(shape) for t, g in affinity.items()},
            electrostatic=electro.reshape(shape),
            desolvation=desolv.reshape(shape),
            receptor_name=receptor.name,
            log=log,
        )


def grid_maps_to_arrays(maps: GridMaps) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten a :class:`GridMaps` into a (meta, named-arrays) bundle.

    The artifact plane ships bundles of this shape through shared memory
    and the on-disk cache; :func:`grid_maps_from_arrays` restores the
    dataclass (the run log is not carried — it documents the build, not
    the artifact).
    """
    meta = {
        "box": maps.box.to_dict(),
        "receptor_name": maps.receptor_name,
        "atom_types": list(maps.atom_types),
    }
    arrays: dict[str, np.ndarray] = {
        f"affinity/{t}": maps.affinity[t] for t in maps.atom_types
    }
    arrays["electrostatic"] = maps.electrostatic
    arrays["desolvation"] = maps.desolvation
    return meta, arrays


def grid_maps_from_arrays(meta: dict, arrays: dict[str, np.ndarray]) -> GridMaps:
    """Rebuild a :class:`GridMaps` from a plane bundle (views kept as-is)."""
    return GridMaps(
        box=GridBox.from_dict(meta["box"]),
        affinity={t: arrays[f"affinity/{t}"] for t in meta["atom_types"]},
        electrostatic=arrays["electrostatic"],
        desolvation=arrays["desolvation"],
        receptor_name=meta.get("receptor_name", ""),
        log="",
    )


def write_map_file(maps: GridMaps, map_name: str) -> str:
    """Serialize one map in AutoGrid's .map text format."""
    if map_name == "e":
        grid = maps.electrostatic
    elif map_name == "d":
        grid = maps.desolvation
    else:
        grid = maps.affinity[map_name]
    box = maps.box
    header = [
        "GRID_PARAMETER_FILE grid.gpf",
        f"GRID_DATA_FILE {maps.receptor_name}.maps.fld",
        f"MACROMOLECULE {maps.receptor_name}.pdbqt",
        f"SPACING {box.spacing:.3f}",
        f"NELEMENTS {box.npts[0]} {box.npts[1]} {box.npts[2]}",
        f"CENTER {box.center[0]:.3f} {box.center[1]:.3f} {box.center[2]:.3f}",
    ]
    # AutoGrid writes z-fastest? Historically x fastest; keep x-fastest
    # ordering consistent with GridBox.points().
    values = [f"{v:.3f}" for v in grid.ravel()]
    return "\n".join(header + values) + "\n"


def parse_map_file(text: str) -> tuple[GridBox, np.ndarray]:
    """Parse a .map file back into (box, grid) — AutoDock's reader."""
    lines = text.splitlines()
    spacing = None
    npts = None
    center = None
    data_start = 0
    for i, line in enumerate(lines):
        fields = line.split()
        if not fields:
            continue
        key = fields[0].upper()
        if key == "SPACING":
            spacing = float(fields[1])
        elif key == "NELEMENTS":
            npts = (int(fields[1]), int(fields[2]), int(fields[3]))
        elif key == "CENTER":
            center = np.array([float(f) for f in fields[1:4]])
        elif key in ("GRID_PARAMETER_FILE", "GRID_DATA_FILE", "MACROMOLECULE"):
            continue
        else:
            data_start = i
            break
    if spacing is None or npts is None or center is None:
        raise GridError("map file missing SPACING/NELEMENTS/CENTER header")
    box = GridBox(center=center, npts=npts, spacing=spacing)
    values = np.array([float(l) for l in lines[data_start:] if l.strip()])
    expected = int(np.prod(box.shape))
    if values.size != expected:
        raise GridError(
            f"map file has {values.size} values, grid needs {expected}"
        )
    return box, values.reshape(box.shape)


def write_fld_file(maps: GridMaps) -> str:
    """Serialize the .maps.fld AVS field header."""
    box = maps.box
    lines = [
        "# AVS field file: AutoDock Atomic Affinity and Electrostatic Grids",
        f"ndim=3",
        f"dim1={box.shape[0]}",
        f"dim2={box.shape[1]}",
        f"dim3={box.shape[2]}",
        "nspace=3",
        f"veclen={len(maps.affinity) + 2}",
        "data=float",
        "field=uniform",
    ]
    for i, t in enumerate(maps.atom_types, start=1):
        lines.append(f"variable {i} file={maps.receptor_name}.{t}.map filetype=ascii")
    lines.append(
        f"variable {len(maps.atom_types) + 1} file={maps.receptor_name}.e.map filetype=ascii"
    )
    lines.append(
        f"variable {len(maps.atom_types) + 2} file={maps.receptor_name}.d.map filetype=ascii"
    )
    return "\n".join(lines) + "\n"
