"""Calibrate the simulation cost model against the real engines.

The paper's authors profiled every program on a single VM before scaling
out ("we first measure the performance of all programs on a single VM").
This module does the same: run the real SciDock activities on a small
pair sample, measure per-activity wall times from provenance, and return
an :class:`~repro.perf.cost_model.ActivityCostModel` whose per-activity
means are the measured ones (optionally rescaled so totals match a
target, e.g. the paper's EC2-era runtimes). Measured duration *stddevs*
calibrate the model's log-normal shape parameters too, so the simulated
heavy tail tracks the machine that was profiled, not just the paper's.
"""

from __future__ import annotations

from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.perf.cost_model import PAPER_ACTIVITY_MEANS, ActivityCostModel
from repro.perf.online_cost import sigma_from_moments
from repro.provenance.queries import ActivityStats, query1_activity_statistics

#: Shape parameter assigned to measured activities the paper never
#: profiled (no entry in the paper's sigma table, no measured stddev).
DEFAULT_SIGMA = 0.5


def measure_activity_seconds(
    receptors: list[str],
    ligands: list[str],
    config: SciDockConfig | None = None,
) -> dict[str, float]:
    """Run the real workflow on a sample; return per-activity mean seconds.

    The passed ``config`` governs the measurement run entirely — worker
    count included (historically this helper forced ``workers=2``
    regardless of what the caller configured).
    """
    stats = measure_activity_statistics(receptors, ligands, config)
    return {tag: s.avg for tag, s in stats.items()}


def measure_activity_statistics(
    receptors: list[str],
    ligands: list[str],
    config: SciDockConfig | None = None,
) -> dict[str, ActivityStats]:
    """Full Query-1 statistics (mean *and* stddev) from a measurement run."""
    pairs = pair_relation(receptors=receptors, ligands=ligands)
    report, store = run_scidock(pairs, config or SciDockConfig())
    stats = query1_activity_statistics(store, report.wkfid)
    return {s.tag: s for s in stats}


def _split_docking(value: float, ratio: float) -> tuple[float, float]:
    """Split a measured docking aggregate into (vina, ad4) preserving ratio."""
    vina = 2.0 * value / (1.0 + ratio)
    return vina, vina * ratio


def calibrate_cost_model(
    measured: dict[str, float],
    target_total_per_pair: float | None = None,
    measured_stddevs: dict[str, float] | None = None,
) -> ActivityCostModel:
    """Build a cost model from measured activity means (and stddevs).

    ``measured`` uses workflow tags (one ``docking`` entry); the model
    keeps separate AD4/Vina docking means by preserving the paper's
    AD4:Vina ratio around the measured docking mean. Measured tags the
    paper never profiled are *added* to the model (with
    :data:`DEFAULT_SIGMA`), not dropped — custom workflows calibrate
    too. When ``target_total_per_pair`` is given, all means are rescaled
    so the per-pair total matches it — this is how laptop measurements
    are projected onto the paper's EC2 hardware. ``measured_stddevs``
    (same tag keys) converts each activity's duration stddev into its
    log-normal sigma via the moment identity, replacing the paper's
    shape for that activity.
    """
    if not measured:
        raise ValueError("measured activity means are empty")
    means = dict(PAPER_ACTIVITY_MEANS)
    ratio = PAPER_ACTIVITY_MEANS["docking_ad4"] / PAPER_ACTIVITY_MEANS[
        "docking_vina"
    ]
    for tag, avg in measured.items():
        if avg is None or avg <= 0:
            continue
        if tag == "docking":
            # Split the measured mean back into engine-specific means,
            # preserving the paper's relative speed.
            means["docking_vina"], means["docking_ad4"] = _split_docking(
                avg, ratio
            )
        else:
            means[tag] = avg
    model = ActivityCostModel(means=means)
    for tag in means:
        model.sigmas.setdefault(tag, DEFAULT_SIGMA)
    for tag, std in (measured_stddevs or {}).items():
        if std is None or std < 0:
            continue
        if tag == "docking":
            mean = measured.get("docking")
            if mean is None or mean <= 0:
                continue
            # The shape parameter is scale-invariant, so the measured
            # docking CV applies to both engine splits.
            sigma = sigma_from_moments(mean, std)
            model.sigmas["docking_vina"] = sigma
            model.sigmas["docking_ad4"] = sigma
        else:
            mean = measured.get(tag)
            if mean is None or mean <= 0:
                continue
            model.sigmas[tag] = sigma_from_moments(mean, std)
    if target_total_per_pair is not None:
        if target_total_per_pair <= 0:
            raise ValueError("target_total_per_pair must be positive")
        current = model.expected_total_per_pair("autodock4")
        model.scale = target_total_per_pair / current
    return model


def calibrate_from_statistics(
    stats: dict[str, ActivityStats],
    target_total_per_pair: float | None = None,
) -> ActivityCostModel:
    """Calibrate means *and* sigmas straight from Query-1 statistics."""
    if not stats:
        raise ValueError("activity statistics are empty")
    return calibrate_cost_model(
        {tag: s.avg for tag, s in stats.items()},
        target_total_per_pair=target_total_per_pair,
        measured_stddevs={tag: s.stddev for tag, s in stats.items()},
    )
