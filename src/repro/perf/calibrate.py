"""Calibrate the simulation cost model against the real engines.

The paper's authors profiled every program on a single VM before scaling
out ("we first measure the performance of all programs on a single VM").
This module does the same: run the real SciDock activities on a small
pair sample, measure per-activity wall times from provenance, and return
an :class:`~repro.perf.cost_model.ActivityCostModel` whose per-activity
means are the measured ones (optionally rescaled so totals match a
target, e.g. the paper's EC2-era runtimes).
"""

from __future__ import annotations

from repro.core.datasets import pair_relation
from repro.core.scidock import SciDockConfig, run_scidock
from repro.perf.cost_model import PAPER_ACTIVITY_MEANS, ActivityCostModel
from repro.provenance.queries import query1_activity_statistics


def measure_activity_seconds(
    receptors: list[str],
    ligands: list[str],
    config: SciDockConfig | None = None,
) -> dict[str, float]:
    """Run the real workflow on a sample; return per-activity mean seconds."""
    pairs = pair_relation(receptors=receptors, ligands=ligands)
    report, store = run_scidock(pairs, config or SciDockConfig(workers=2))
    stats = query1_activity_statistics(store, report.wkfid)
    return {s.tag: s.avg for s in stats}


def calibrate_cost_model(
    measured: dict[str, float],
    target_total_per_pair: float | None = None,
) -> ActivityCostModel:
    """Build a cost model from measured activity means.

    ``measured`` uses workflow tags (one ``docking`` entry); the model
    keeps separate AD4/Vina docking means by preserving the paper's
    AD4:Vina ratio around the measured docking mean. When
    ``target_total_per_pair`` is given, all means are rescaled so the
    per-pair total matches it — this is how laptop measurements are
    projected onto the paper's EC2 hardware.
    """
    if not measured:
        raise ValueError("measured activity means are empty")
    means = dict(PAPER_ACTIVITY_MEANS)
    for tag, avg in measured.items():
        if avg is None or avg <= 0:
            continue
        if tag == "docking":
            ratio = PAPER_ACTIVITY_MEANS["docking_ad4"] / PAPER_ACTIVITY_MEANS[
                "docking_vina"
            ]
            # Split the measured mean back into engine-specific means,
            # preserving the paper's relative speed.
            means["docking_vina"] = 2.0 * avg / (1.0 + ratio)
            means["docking_ad4"] = means["docking_vina"] * ratio
        elif tag in means:
            means[tag] = avg
    model = ActivityCostModel(means=means)
    if target_total_per_pair is not None:
        if target_total_per_pair <= 0:
            raise ValueError("target_total_per_pair must be positive")
        current = model.expected_total_per_pair("autodock4")
        model.scale = target_total_per_pair / current
    return model
