"""Performance modeling and the paper's evaluation harness.

* :mod:`repro.perf.cost_model` — per-activity service-time distributions
  (calibratable against real engine runs).
* :mod:`repro.perf.calibrate` — measure the real engines on a sample and
  rescale the cost model.
* :mod:`repro.perf.online_cost` — online per-activity/per-size-class
  service-time estimation feeding placement, straggler speculation and
  elasticity in the real engine.
* :mod:`repro.perf.metrics` — TET, speedup, efficiency.
* :mod:`repro.perf.experiments` — scenario runners behind Figs 5-9.
"""

from repro.perf.cost_model import ActivityCostModel, PAPER_ACTIVITY_MEANS
from repro.perf.calibrate import (
    calibrate_cost_model,
    calibrate_from_statistics,
    measure_activity_seconds,
    measure_activity_statistics,
)
from repro.perf.online_cost import OnlineCostService, sigma_from_moments
from repro.perf.metrics import efficiency, improvement_percent, speedup
from repro.perf.experiments import (
    CoreSweepResult,
    run_core_sweep,
    run_single_scale,
)

__all__ = [
    "ActivityCostModel",
    "PAPER_ACTIVITY_MEANS",
    "calibrate_cost_model",
    "calibrate_from_statistics",
    "measure_activity_seconds",
    "measure_activity_statistics",
    "OnlineCostService",
    "sigma_from_moments",
    "speedup",
    "efficiency",
    "improvement_percent",
    "run_core_sweep",
    "run_single_scale",
    "CoreSweepResult",
]
