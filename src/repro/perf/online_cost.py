"""Online per-activity service-time estimation for the real engine.

The simulated sweeps draw service times from a calibrated model
(:mod:`repro.perf.cost_model`); the *real* engine historically had no
feedback at all — dispatch order used static paper means and a running
straggler looked exactly like a normal activation until its watchdog
deadline. This module closes that loop with an :class:`OnlineCostService`
that every completed attempt streams its duration into, keyed by
(activity, receptor size class):

* **mean estimates** feed predictive placement: the engines' ready-queue
  ordering asks :meth:`OnlineCostService.expected_seconds` so the greedy
  scheduler dispatches longest-*learned*-first instead of
  longest-*assumed*-first;
* **tail quantiles** feed straggler detection: a running attempt that
  outlives :meth:`OnlineCostService.straggler_threshold` (the learned
  ``speculation_quantile``, default p95) is a speculation candidate —
  the engine may launch a duplicate attempt on an idle worker;
* **priors** make the service useful from the first activation:
  ``prior="paper"`` falls back to the paper's Query-1 means for
  placement (never for speculation — paper numbers say nothing about
  *this* machine's tail), while :meth:`seed_from_store` loads
  mean/stddev/count per activity from provenance history of earlier
  runs, which both informs placement and, with enough history, enables
  speculation via a parametric log-normal tail before the live window
  warms up.

Quantiles use a bounded-window estimator (sorted interpolation over the
last ``window`` observations) rather than P-squared: the windows are
small, the arithmetic is exact and deterministic, and a sliding window
tracks drift (a worker slowing down mid-run) better than an all-history
summary. All methods are thread-safe — bookkeeping threads observe
concurrently while the coordinator reads estimates.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from statistics import NormalDist

from repro.chem.generate import receptor_size_class
from repro.perf.cost_model import PAPER_ACTIVITY_MEANS

#: Cost-prior modes: "paper" backstops estimates with the paper's
#: Query-1 means; "provenance" trusts only seeded history + live samples.
COST_PRIORS = ("paper", "provenance")


def sigma_from_moments(mean: float, std: float) -> float:
    """Log-normal shape parameter from a sample mean and stddev.

    For X ~ LogNormal(mu, sigma): Var[X]/E[X]^2 = exp(sigma^2) - 1, so
    sigma = sqrt(ln(1 + (std/mean)^2)).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if std < 0:
        raise ValueError("std cannot be negative")
    return math.sqrt(math.log(1.0 + (std / mean) ** 2))


@dataclass(frozen=True)
class _Prior:
    """Seeded knowledge about one activity: mean, stddev, sample count."""

    mean: float
    std: float
    count: int


class _Stream:
    """One observation stream: bounded quantile window + all-time mean."""

    __slots__ = ("window", "count", "total")

    def __init__(self, maxlen: int) -> None:
        self.window: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def add(self, seconds: float) -> None:
        self.window.append(seconds)
        self.count += 1
        self.total += seconds

    def mean(self) -> float | None:
        if not self.count:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated windowed percentile (None when empty)."""
        if not self.window:
            return None
        data = sorted(self.window)
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac


class OnlineCostService:
    """Learns per-(activity, size-class) service times from live attempts.

    ``speculation_quantile`` in (0, 1) enables straggler detection at
    that learned quantile; 1.0 disables speculation entirely (thresholds
    are always ``None``), which is the engine's bit-for-bit-parity
    default. ``min_samples`` gates both windowed and parametric
    thresholds — a cold distribution must never trigger duplicates.
    """

    def __init__(
        self,
        *,
        prior: str = "paper",
        speculation_quantile: float = 0.95,
        window: int = 128,
        min_samples: int = 8,
    ) -> None:
        if prior not in COST_PRIORS:
            raise ValueError(
                f"unknown cost prior {prior!r}; expected one of {COST_PRIORS}"
            )
        if not 0.0 < speculation_quantile <= 1.0:
            raise ValueError("speculation_quantile must be in (0, 1]")
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.prior = prior
        self.speculation_quantile = speculation_quantile
        self.window = window
        self.min_samples = min_samples
        #: Total observations streamed in (the report's ``cost_samples``).
        self.samples = 0
        self._lock = threading.Lock()
        #: Live streams: fine-grained by (tag, size class) plus a per-tag
        #: aggregate that answers for still-cold size classes.
        self._by_class: dict[tuple[str, str], _Stream] = {}
        self._by_tag: dict[str, _Stream] = {}
        #: Seeded knowledge keyed by the tag as stored (a real run's
        #: provenance says "docking", not "docking_vina").
        self._priors: dict[str, _Prior] = {}
        if prior == "paper":
            for tag, mean in PAPER_ACTIVITY_MEANS.items():
                # count=0: a placement fallback with no evidentiary
                # weight — it never outvotes live samples and never
                # enables speculation.
                self._priors[tag] = _Prior(mean=mean, std=0.0, count=0)

    # -- keying --------------------------------------------------------------
    @staticmethod
    def _normalize(tag: str, tup: dict) -> str:
        """Split the generic ``docking`` tag by engine, like the cost model."""
        if tag == "docking" and isinstance(tup, dict):
            engine = tup.get("engine", "autodock4")
            return "docking_vina" if engine == "vina" else "docking_ad4"
        return tag

    @staticmethod
    def _size_class(tup: dict) -> str:
        rec = tup.get("receptor_id") if isinstance(tup, dict) else None
        if rec:
            return receptor_size_class(str(rec))
        return "-"

    def _prior_for(self, norm: str, raw: str) -> _Prior | None:
        return self._priors.get(norm) or self._priors.get(raw)

    # -- ingestion -----------------------------------------------------------
    def observe(self, tag: str, tup: dict, seconds: float) -> None:
        """Stream one completed attempt's wall-clock duration."""
        if seconds < 0:
            return
        norm = self._normalize(tag, tup)
        cls = self._size_class(tup)
        with self._lock:
            by_class = self._by_class.get((norm, cls))
            if by_class is None:
                by_class = self._by_class[(norm, cls)] = _Stream(self.window)
            by_tag = self._by_tag.get(norm)
            if by_tag is None:
                by_tag = self._by_tag[norm] = _Stream(self.window)
            by_class.add(seconds)
            by_tag.add(seconds)
            self.samples += 1

    def seed_from_store(self, store, wkfid: int | None = None) -> int:
        """Load per-activity priors from provenance history (Query 1).

        With ``wkfid`` the seed covers one prior run; without it, every
        FINISHED activation in the store. Returns the number of
        activities seeded. Seeded priors carry their real sample count,
        so enough history enables parametric straggler thresholds
        before any live sample arrives.
        """
        from repro.provenance.queries import activity_history_statistics

        stats = activity_history_statistics(store, wkfid)
        seeded = 0
        with self._lock:
            for s in stats:
                if s.avg is None or s.avg <= 0 or not s.count:
                    continue
                self._priors[s.tag] = _Prior(
                    mean=float(s.avg), std=float(s.stddev), count=int(s.count)
                )
                seeded += 1
        return seeded

    # -- consumers -----------------------------------------------------------
    @property
    def speculation_enabled(self) -> bool:
        return self.speculation_quantile < 1.0

    def expected_seconds(self, tag: str, tup: dict) -> float | None:
        """Blended mean estimate for placement; None when fully unknown."""
        norm = self._normalize(tag, tup)
        cls = self._size_class(tup)
        with self._lock:
            stream = self._by_class.get((norm, cls))
            if stream is None or not stream.count:
                stream = self._by_tag.get(norm)
            live = stream.mean() if stream is not None else None
            live_n = stream.count if stream is not None else 0
            prior = self._prior_for(norm, tag)
        if live is None and prior is None:
            return None
        if live is None:
            return prior.mean
        if prior is None or prior.count == 0:
            return live
        # Blend as pseudo-counts, capping the prior's weight at one
        # window so live samples eventually dominate stale history.
        w = min(prior.count, self.window)
        return (prior.mean * w + live * live_n) / (w + live_n)

    def straggler_threshold(self, tag: str, tup: dict) -> float | None:
        """Duration beyond which a running attempt counts as a straggler.

        ``None`` means "do not speculate": the quantile is disabled
        (``speculation_quantile == 1.0``) or the distribution is still
        cold (fewer than ``min_samples`` observations in both the
        size-class and tag windows, and no seeded prior with enough
        history for a parametric tail).
        """
        if not self.speculation_enabled:
            return None
        q = self.speculation_quantile
        norm = self._normalize(tag, tup)
        cls = self._size_class(tup)
        with self._lock:
            stream = self._by_class.get((norm, cls))
            if stream is None or len(stream.window) < self.min_samples:
                stream = self._by_tag.get(norm)
            if stream is not None and len(stream.window) >= self.min_samples:
                return stream.quantile(q)
            prior = self._prior_for(norm, tag)
        if prior is None or prior.count < self.min_samples or prior.mean <= 0:
            return None
        # Parametric log-normal tail from the seeded moments.
        sigma = sigma_from_moments(prior.mean, prior.std)
        if sigma <= 0.0:
            return prior.mean
        mu = math.log(prior.mean) - sigma * sigma / 2.0
        z = NormalDist().inv_cdf(q)
        return math.exp(mu + sigma * z)
