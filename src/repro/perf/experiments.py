"""Scenario runners behind the paper's performance figures (Figs 5-9).

``run_single_scale`` simulates one SciDock execution at a fixed core
count; ``run_core_sweep`` repeats it over the paper's 2..128-core range
and derives TET / speedup / efficiency series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cluster import VirtualCluster
from repro.cloud.failures import ActivityFailureModel
from repro.cloud.provider import CloudProvider
from repro.cloud.simclock import SimClock
from repro.core.datasets import pair_relation
from repro.core.scidock import build_scidock_sim_workflow
from repro.perf.cost_model import ActivityCostModel
from repro.perf.metrics import efficiency, improvement_percent, speedup
from repro.provenance.store import ProvenanceStore
from repro.workflow.engine import ExecutionReport, SimulatedEngine
from repro.workflow.fault import RetryPolicy, Watchdog
from repro.workflow.relation import Relation
from repro.workflow.scheduler import GreedyCostScheduler, Scheduler

#: The paper's virtual-core ladder (Figs 7-9).
PAPER_CORE_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)


@dataclass
class ScaleResult:
    """One point of the sweep."""

    cores: int
    tet_seconds: float
    report: ExecutionReport
    store: ProvenanceStore


@dataclass
class CoreSweepResult:
    """The full sweep for one scenario (engine)."""

    scenario: str
    points: list[ScaleResult] = field(default_factory=list)

    @property
    def core_counts(self) -> list[int]:
        return [p.cores for p in self.points]

    @property
    def tets(self) -> list[float]:
        return [p.tet_seconds for p in self.points]

    def baseline(self) -> ScaleResult:
        return min(self.points, key=lambda p: p.cores)

    def speedups(self) -> list[float]:
        base = self.baseline()
        return [
            speedup(base.tet_seconds, p.tet_seconds, baseline_cores=base.cores)
            for p in self.points
        ]

    def efficiencies(self) -> list[float]:
        base = self.baseline()
        return [
            efficiency(
                base.tet_seconds, p.tet_seconds, p.cores, baseline_cores=base.cores
            )
            for p in self.points
        ]

    def improvements(self) -> list[float]:
        base = self.baseline()
        return [
            improvement_percent(base.tet_seconds, p.tet_seconds)
            for p in self.points
        ]


def run_single_scale(
    cores: int,
    *,
    scenario: str = "ad4",
    n_pairs: int = 1000,
    cost_model: ActivityCostModel | None = None,
    scheduler: Scheduler | None = None,
    failure_rate: float = 0.10,
    seed: int = 0,
    pairs: Relation | None = None,
    store: ProvenanceStore | None = None,
    elasticity=None,
    block_known_loopers: bool = True,
) -> ScaleResult:
    """Simulate one SciDock execution at ``cores`` virtual cores."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    cost_model = cost_model or ActivityCostModel(seed=seed)
    store = store or ProvenanceStore()
    clock = SimClock()
    cluster = VirtualCluster(CloudProvider(clock, max_instances=4096))
    cluster.scale_to(max(cores, 4))
    engine = SimulatedEngine(
        store,
        cluster,
        scheduler or GreedyCostScheduler(),
        retry=RetryPolicy(max_attempts=4, retry_delay=1.0),
        watchdog=Watchdog(timeout=600.0),
        failure_model=ActivityFailureModel(rate=failure_rate, seed=seed),
        elasticity=elasticity,
        core_limit=cores,
        block_known_loopers=block_known_loopers,
        data_model=cost_model.output_bytes,
    )
    workflow = build_scidock_sim_workflow(cost_model, scenario=scenario)
    relation = pairs if pairs is not None else pair_relation(limit=n_pairs)
    report = engine.run(workflow, relation)
    return ScaleResult(
        cores=cores, tet_seconds=report.tet_seconds, report=report, store=store
    )


def run_core_sweep(
    *,
    scenario: str = "ad4",
    core_counts: tuple[int, ...] = PAPER_CORE_COUNTS,
    n_pairs: int = 1000,
    cost_model: ActivityCostModel | None = None,
    scheduler: Scheduler | None = None,
    failure_rate: float = 0.10,
    seed: int = 0,
) -> CoreSweepResult:
    """The paper's scalability experiment for one engine scenario."""
    result = CoreSweepResult(scenario=scenario)
    pairs = pair_relation(limit=n_pairs)
    for cores in core_counts:
        result.points.append(
            run_single_scale(
                cores,
                scenario=scenario,
                cost_model=cost_model,
                scheduler=scheduler,
                failure_rate=failure_rate,
                seed=seed,
                pairs=pairs.copy(),
            )
        )
    return result
