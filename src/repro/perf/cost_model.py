"""Activity service-time model for the simulated sweeps.

Mean service times follow the paper's provenance statistics (Fig. 10's
Query-1 output and the headline TET figures): preparation activities run
seconds-to-a-minute, docking dominates, AD4 docking is several times
slower than Vina. Each activation's service time is a deterministic
log-normal draw seeded by its tuple, scaled by structure size — giving
the heterogeneous distribution of Fig. 5 and the per-activity breakdown
of Fig. 6.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.chem.generate import receptor_size_class

#: Mean service seconds per activity, from the paper's Query-1 numbers
#: (Fig. 10) with docking set so 10,000-pair totals land near the
#: reported TETs (12.5 days x 2 cores AD4, ~9 days x 2 cores Vina).
PAPER_ACTIVITY_MEANS: dict[str, float] = {
    "babel": 2.4,
    "prepare_ligand": 27.5,
    "prepare_receptor": 23.1,
    "prepare_gpf": 20.0,
    "autogrid": 18.5,
    "docking_filter": 2.0,
    "prepare_docking": 42.9,
    "docking_ad4": 80.0,
    "docking_vina": 20.0,
}

#: Log-normal shape parameter per activity (docking is the heavy tail).
_SIGMAS: dict[str, float] = {
    "babel": 0.5,
    "prepare_ligand": 0.9,
    "prepare_receptor": 0.8,
    "prepare_gpf": 0.4,
    "autogrid": 0.6,
    "docking_filter": 0.3,
    "prepare_docking": 0.3,
    "docking_ad4": 0.7,
    "docking_vina": 0.7,
}


#: Mean bytes each activation writes to the shared FS. Calibrated so a
#: full 9,996-pair execution produces ~600 GB — the paper's "600 GB for
#: each workflow execution" (maps dominate, docking logs follow).
PAPER_ACTIVITY_BYTES: dict[str, float] = {
    "babel": 60e3,  # SDF + MOL2
    "prepare_ligand": 40e3,  # ligand PDBQT
    "prepare_receptor": 900e3,  # receptor PDBQT
    "prepare_gpf": 4e3,
    "autogrid": 55e6,  # one map per atom type + e/d maps + fld
    "docking_filter": 1e3,
    "prepare_docking": 6e3,
    "docking_ad4": 4e6,  # DLG with all conformations
    "docking_vina": 2e6,  # modes PDBQT + log
}


def _unit_normal(key: str) -> float:
    """Deterministic standard-normal deviate from a string key."""
    digest = hashlib.sha256(key.encode()).digest()
    u1 = (int.from_bytes(digest[:8], "little") + 1) / (2**64 + 2)
    u2 = int.from_bytes(digest[8:16], "little") / 2**64
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def _size_factor(tup: dict) -> float:
    """Structure-size scaling: large receptors / ligands cost more."""
    factor = 1.0
    rec = tup.get("receptor_id")
    if rec:
        factor *= 1.25 if receptor_size_class(rec) == "large" else 0.85
    lig = tup.get("ligand_id")
    if lig:
        digest = hashlib.sha256(f"ligsize:{lig}".encode()).digest()
        factor *= 0.75 + 0.5 * (int.from_bytes(digest[:4], "little") / 2**32)
    return factor


@dataclass
class ActivityCostModel:
    """Deterministic per-activation service times.

    ``scale`` rescales every mean uniformly (used by calibration);
    ``means`` can override individual activities; ``sigmas`` carries the
    per-activity log-normal shape parameters — the paper's shapes by
    default, measured ones after calibration against a real run's
    duration stddevs.
    """

    scale: float = 1.0
    means: dict[str, float] = field(default_factory=lambda: dict(PAPER_ACTIVITY_MEANS))
    seed: int = 0
    sigmas: dict[str, float] = field(default_factory=lambda: dict(_SIGMAS))

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def service_seconds(self, activity_tag: str, tup: dict) -> float:
        """Service time for one activation (deterministic)."""
        tag = activity_tag
        if tag == "docking":
            engine = tup.get("engine", "autodock4")
            tag = "docking_vina" if engine == "vina" else "docking_ad4"
        try:
            mean = self.means[tag]
        except KeyError:
            raise KeyError(
                f"no cost entry for activity {activity_tag!r}; "
                f"known: {sorted(self.means)}"
            ) from None
        sigma = self.sigmas.get(tag, 0.5)
        key = f"{self.seed}|{tag}|{tup.get('ligand_id')}|{tup.get('receptor_id')}"
        z = _unit_normal(key)
        # Log-normal with the requested mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(mean) - sigma * sigma / 2.0
        draw = math.exp(mu + sigma * z)
        return self.scale * draw * _size_factor(tup)

    def output_bytes(self, activity_tag: str, tup: dict) -> float:
        """Bytes this activation writes to the shared file system."""
        tag = activity_tag
        if tag == "docking":
            engine = tup.get("engine", "autodock4")
            tag = "docking_vina" if engine == "vina" else "docking_ad4"
        mean = PAPER_ACTIVITY_BYTES.get(tag, 10e3)
        return mean * _size_factor(tup)

    def cost_fn(self, activity_tag: str) -> Callable[[dict], float]:
        """Bind an activity tag for use as an ``Activity.cost_fn``."""

        def fn(tup: dict) -> float:
            return self.service_seconds(activity_tag, tup)

        return fn

    def expected_total_per_pair(self, engine: str = "autodock4") -> float:
        """Mean core-seconds one pair consumes across all 8 activities."""
        total = 0.0
        for tag, mean in self.means.items():
            if tag == "docking_ad4" and engine != "autodock4":
                continue
            if tag == "docking_vina" and engine != "vina":
                continue
            total += mean
        return self.scale * total
