"""Scalability metrics: TET-derived speedup, efficiency, improvement."""

from __future__ import annotations


def speedup(tet_baseline: float, tet: float, *, baseline_cores: int = 1) -> float:
    """Speedup versus the baseline execution.

    The paper computes speedup "relative to the best-performing workflow
    execution on a single core"; when only a 2-core measurement exists,
    ``baseline_cores=2`` extrapolates the 1-core time linearly.
    """
    if tet <= 0 or tet_baseline <= 0:
        raise ValueError("execution times must be positive")
    if baseline_cores < 1:
        raise ValueError("baseline_cores must be >= 1")
    return (tet_baseline * baseline_cores) / tet


def efficiency(tet_baseline: float, tet: float, cores: int, *, baseline_cores: int = 1) -> float:
    """Parallel efficiency = speedup / cores."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return speedup(tet_baseline, tet, baseline_cores=baseline_cores) / cores


def improvement_percent(tet_baseline: float, tet: float) -> float:
    """The paper's "% improvement": (TET_base - TET) / TET_base * 100."""
    if tet_baseline <= 0:
        raise ValueError("baseline TET must be positive")
    return (tet_baseline - tet) / tet_baseline * 100.0
