"""The transport-agnostic coordinator core.

:class:`LocalEngine`'s run loop used to be a monolith that knew it was
talking to an in-process thread pool. This module is the split: the
:class:`Coordinator` owns everything about *what* runs — the
scheduler-ordered ready queue over the activation DAG, journal-replay
satisfaction on resume, steering/looping dispatch checks, straggler
speculation twins, elasticity decisions, journal emission and the
settlement of completions back into the dataflow — while an
:class:`ExecutionPlane` owns everything about *where* it runs.

A plane is deliberately small: report capacity, accept a dispatched
item, hand back completions, and say where an item would land. The
in-process thread/process backends implement it
(:class:`~repro.workflow.planes.LocalExecutionPlane`), and so does the
socket-transport director/worker backend
(:class:`~repro.workflow.distributed.DirectorPlane`) — the coordinator
cannot tell them apart, which is the point: fault machinery (watchdog
deadlines, infra budgets, quarantine) and journal semantics (terminal
flush barriers, dispatch placement records) behave identically whether
an activation dies on a local worker process or on a node across the
network.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.dataflow import DataflowState, ReadyQueue, WorkItem
from repro.workflow.dispatch import AttemptAbortHandle, AttemptOutcome
from repro.workflow.fault import Watchdog
from repro.workflow.journal import JournalReplay, RunJournal
from repro.workflow.relation import Relation


class CoordinatorError(RuntimeError):
    """Raised when the coordinator cannot make progress."""


@dataclass
class Completion:
    """One attempt's terminal report, relayed from a plane's bookkeeping."""

    item: WorkItem
    outs: list
    outcome: AttemptOutcome
    exc: BaseException | None = None
    role: str = "primary"


@dataclass
class Flight:
    """One in-flight activation and its (possible) speculative twin.

    ``pending`` counts attempts still running (1 or 2); ``settled``
    flips once a twin's outcome has been accepted — everything the
    other twin reports afterwards is bookkeeping only.
    """

    item: WorkItem
    activity: Activity
    actid: int
    wall_start: float
    primary_handle: AttemptAbortHandle | None
    spec_handle: AttemptAbortHandle | None = None
    pending: int = 1
    settled: bool = False


class ExecutionPlane(ABC):
    """Where activations execute: the contract the coordinator drives.

    Implementations wrap a pool of execution slots (threads, worker
    processes behind an affinity router, or remote worker nodes behind
    a director) plus the bookkeeping needed to turn an attempt's fate
    into a :class:`Completion`. All methods are called from the single
    coordinator thread except the implementation's own internals.

    The contract is strictly per-item: :meth:`submit` takes one work
    item, and the coordinator journals one ``dispatched`` event (with
    per-tuple node placement) per item. Any aggregation of items into
    larger transport units — e.g. the distributed plane packing K tasks
    into one TASK_BATCH wire frame — is a *transport* concern below this
    seam, invisible to dispatch, journaling, speculation and abort,
    which keep addressing individual tuples.
    """

    #: Whether the coordinator may launch straggler-speculation twins
    #: on this plane (requires an abort lever for the losing twin).
    supports_speculation: bool = False
    #: Whether :meth:`resize` actually moves live capacity (elasticity).
    elastic: bool = False

    @abstractmethod
    def capacity(self) -> int:
        """Current dispatch cap: how many items may be in flight."""

    @abstractmethod
    def submit(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle | None,
    ) -> None:
        """Launch an item's primary attempt chain."""

    def submit_speculative(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle,
    ) -> None:
        """Launch a duplicate attempt of a suspected straggler."""
        raise NotImplementedError("plane does not support speculation")

    @abstractmethod
    def next_completion(self, timeout: float | None = None) -> Completion | None:
        """Block for the next completion; ``None`` on timeout."""

    def placement(self, item: WorkItem) -> str | None:
        """Where ``item`` would land (node id), if the plane knows."""
        return None

    def resize(self, target: int) -> bool:
        """Move live capacity to ``target``; ``True`` if applied."""
        return False

    def wait_for_capacity(self, timeout: float) -> bool:
        """Block until at least one slot exists (distributed planes:
        until a worker node is connected); ``True`` when capacity > 0."""
        return self.capacity() > 0

    def finish(self) -> dict:
        """Post-run plane statistics (steals, nodes, cleanup results)."""
        return {}

    @abstractmethod
    def shutdown(self) -> None:
        """Tear the plane down; idempotent."""


@dataclass
class CoordinatorTotals:
    """Run-loop accounting folded into the engine's ExecutionReport."""

    retried: int = 0
    blocked: int = 0
    aborted: int = 0
    timeouts: int = 0
    infra_retries: int = 0
    speculative_launched: int = 0
    speculative_won: int = 0
    pool_resizes: int = 0
    replayed: int = 0
    peak_inflight: int = 0


class Coordinator:
    """Drives one run's dataflow over any :class:`ExecutionPlane`."""

    #: Completion-wait granularity while watching for stragglers.
    speculation_poll = 0.05
    #: How long to wait for the plane to regain capacity (distributed:
    #: for any worker node to be connected) before declaring deadlock.
    capacity_timeout = 60.0

    def __init__(
        self,
        workflow: Workflow,
        state: DataflowState,
        ready: ReadyQueue,
        plane: ExecutionPlane,
        *,
        store: ProvenanceStore,
        journal: RunJournal,
        actids: dict[str, int],
        watchdog: Watchdog,
        t0: float,
        steering=None,
        cost_service=None,
        elasticity=None,
        block_known_loopers: bool = True,
        replay: JournalReplay | None = None,
    ) -> None:
        self.workflow = workflow
        self.state = state
        self.ready = ready
        self.plane = plane
        self.store = store
        self.journal = journal
        self.actids = actids
        self.watchdog = watchdog
        self.t0 = t0
        self.steering = steering
        self.service = cost_service
        self.elasticity = elasticity
        self.block_known_loopers = block_known_loopers
        self.replay = replay
        self.totals = CoordinatorTotals()
        self._inflight = 0
        #: In-flight activations by item identity (twin accounting).
        self._flights: dict[int, Flight] = {}

    # -- helpers -------------------------------------------------------------
    def _expected_cost(self, item: WorkItem) -> float:
        if self.ready.cost_fn is not None:
            return self.ready.cost_fn(item)
        return self.workflow.activities[item.stage].cost(item.tup)

    def _enqueue(self, items: list[WorkItem]) -> None:
        for item in items:
            self.ready.push(item)

    def _apply_elasticity(self, hard_max: int) -> None:
        """Let the policy move the dispatch cap before a scheduling round."""
        ready = self.ready
        active = self.plane.capacity()
        if ready:
            mean_cost = sum(
                self._expected_cost(j) for j in ready.items()
            ) / len(ready)
        else:
            mean_cost = 0.0
        utilization = self._inflight / active if active else 0.0
        target = self.elasticity.target_cores(
            len(ready), self._inflight, mean_cost, utilization=utilization,
        )
        target = max(1, min(hard_max, int(target)))
        if target != active and self.plane.resize(target):
            self.journal.resized(target, active)
            self.totals.pool_resizes += 1

    def _maybe_speculate(self) -> None:
        """Duplicate attempts running past their learned tail quantile."""
        now = time.perf_counter()
        active = self.plane.capacity()
        for flight in list(self._flights.values()):
            if self._inflight >= active:
                break
            if flight.settled or flight.spec_handle is not None:
                continue
            if flight.activity.operator is Operator.REDUCE:
                continue
            threshold = self.service.straggler_threshold(
                flight.activity.tag, flight.item.tup
            )
            if threshold is None or now - flight.wall_start <= threshold:
                continue
            handle = AttemptAbortHandle()
            flight.spec_handle = handle
            flight.pending += 1
            self._inflight += 1
            self.totals.peak_inflight = max(
                self.totals.peak_inflight, self._inflight
            )
            self.totals.speculative_launched += 1
            self.plane.submit_speculative(
                flight.item, flight.activity, flight.actid, handle
            )

    def _dispatch_one(self, item: WorkItem, spec_enabled: bool) -> bool:
        """Dispatch checks + submission for one popped item.

        Returns ``True`` when the item went in flight, ``False`` when it
        was satisfied/retired without touching a worker (replay hit,
        steering abort, looping predicate).
        """
        totals = self.totals
        if self.replay is not None:
            cached = self.replay.outputs_for(item.stage, item.key)
            if cached is not None:
                # The ancestor run completed this item durably (journal
                # flush barrier): satisfy it from the logged outputs —
                # lineage-stable keys make the match exact — and never
                # touch a worker.
                totals.replayed += 1
                self.journal.replayed(item.stage, item.key)
                self._enqueue(
                    self.state.complete(item, [dict(t) for t in cached])
                )
                return False
        activity = self.workflow.activities[item.stage]
        actid = self.actids[activity.tag]
        if activity.operator is not Operator.REDUCE:
            if self.steering is not None and self.steering.should_abort(
                activity.tag, item.key
            ):
                self.store.record_blocked(
                    actid, item.key, time.perf_counter() - self.t0,
                    "aborted by user steering",
                )
                self.journal.steered(item.stage, item.key, "abort")
                self.journal.blocked(
                    item.stage, item.key, "aborted by user steering",
                )
                totals.blocked += 1
                self._enqueue(self.state.retire(item))
                return False
            if activity.would_loop(item.tup):
                if self.block_known_loopers:
                    self.store.record_blocked(
                        actid, item.key, time.perf_counter() - self.t0,
                        "known looping input (Hg routine)",
                    )
                    self.journal.blocked(
                        item.stage, item.key,
                        "known looping input (Hg routine)",
                    )
                    totals.blocked += 1
                else:
                    # Predicate-known looper with the Hg routine
                    # disabled: abort at decision time rather than
                    # burning the real deadline. End time is the actual
                    # wall clock of the decision — a fabricated ``start
                    # + deadline`` would skew per-activity duration
                    # queries; the deadline it *would* have received is
                    # kept in errormsg.
                    start = time.perf_counter() - self.t0
                    tid = self.store.begin_activation(
                        actid, item.key, start,
                        workdir=self.state_workdir(),
                    )
                    deadline = self.watchdog.deadline(
                        activity.cost(item.tup)
                    )
                    self.store.end_activation(
                        tid, time.perf_counter() - self.t0,
                        ActivationStatus.ABORTED, 137,
                        "looping state killed by watchdog "
                        f"(deadline {deadline:.3f}s)",
                    )
                    self.journal.aborted(
                        item.stage, item.key,
                        "looping state killed by watchdog",
                    )
                    totals.aborted += 1
                self._enqueue(self.state.retire(item))
                return False
        self.journal.dispatched(
            item.stage, item.key, node=self.plane.placement(item)
        )
        handle = AttemptAbortHandle() if spec_enabled else None
        self._flights[id(item)] = Flight(
            item=item,
            activity=activity,
            actid=actid,
            wall_start=time.perf_counter(),
            primary_handle=handle,
        )
        self._inflight += 1
        totals.peak_inflight = max(totals.peak_inflight, self._inflight)
        self.plane.submit(item, activity, actid, handle)
        return True

    def state_workdir(self) -> str:
        """Workdir recorded on coordinator-side provenance rows."""
        context = getattr(self.plane, "context", None)
        return context.get("workdir", "") if isinstance(context, dict) else ""

    def _settle(self, record: Completion) -> None:
        """Fold one attempt completion back into the dataflow."""
        totals = self.totals
        item, outcome, role = record.item, record.outcome, record.role
        self._inflight -= 1
        flight = self._flights[id(item)]
        flight.pending -= 1
        if flight.settled:
            # The twin already settled this tuple; this is the loser
            # draining. Count its bookkeeping but do not touch the
            # dataflow again.
            totals.retried += outcome.retried
            totals.infra_retries += outcome.infra_retries
            if flight.pending == 0:
                self._flights.pop(id(item), None)
            return
        if record.exc is not None:
            raise record.exc
        totals.retried += outcome.retried
        totals.infra_retries += outcome.infra_retries
        if outcome.timed_out:
            totals.aborted += 1
            totals.timeouts += 1
        if not outcome.succeeded and flight.pending > 0:
            # This twin failed/timed out but the other is still
            # running — let it decide the tuple.
            return
        flight.settled = True
        if flight.pending == 0:
            self._flights.pop(id(item), None)
        else:
            # First completion wins: cancel the other twin.
            other = (
                flight.spec_handle
                if role == "primary"
                else flight.primary_handle
            )
            if other is not None:
                other.abort()
        if role == "speculative" and outcome.succeeded:
            totals.speculative_won += 1
        if (
            self.service is not None
            and outcome.succeeded
            and outcome.duration is not None
        ):
            self.service.observe(
                flight.activity.tag, item.tup, outcome.duration
            )
        if outcome.succeeded:
            self._enqueue(self.state.complete(item, record.outs))
        else:
            # Terminal non-success: journal the reason (the retire path
            # does not log a completed event) so replay knows this item
            # must re-execute.
            if outcome.timed_out:
                self.journal.aborted(item.stage, item.key, "watchdog timeout")
            elif outcome.cancelled:
                self.journal.aborted(item.stage, item.key, "speculation loss")
            else:
                self.journal.failed(item.stage, item.key, "attempts exhausted")
            self._enqueue(self.state.retire(item))

    # -- the loop ------------------------------------------------------------
    def run(self, relation: Relation, *, hard_max: int | None = None) -> CoordinatorTotals:
        """Drive ``relation`` through the workflow to completion.

        The loop fills free plane slots from the ready queue (keeping
        the backlog coordinator-side — what lets the scheduler order
        dispatch and steering cancel still-queued work), waits for
        completions, and settles them back into the dataflow. On a
        plane whose capacity can drop to zero (all worker nodes lost),
        it blocks up to :attr:`capacity_timeout` for capacity to return
        before declaring the run stuck.
        """
        spec_enabled = (
            self.service is not None
            and self.service.speculation_enabled
            and self.plane.supports_speculation
        )
        if hard_max is None:
            hard_max = self.plane.capacity()
        self._enqueue(self.state.seed(relation))
        while True:
            if self.elasticity is not None and self.plane.elastic:
                self._apply_elasticity(hard_max)
            # Fill free plane slots from the ready queue.
            while self.ready and self._inflight < self.plane.capacity():
                self._dispatch_one(self.ready.pop(), spec_enabled)
            if self._inflight == 0:
                if self.ready:
                    # Ready work but zero capacity: every node is gone
                    # (or none has joined yet). Wait for the plane to
                    # heal instead of dropping work on the floor.
                    if not self.plane.wait_for_capacity(self.capacity_timeout):
                        raise CoordinatorError(
                            f"{len(self.ready)} activation(s) ready but the "
                            "execution plane has no capacity (no live "
                            "worker nodes?)"
                        )
                    continue
                break
            # With speculation on and idle capacity, wait in short
            # slices so stragglers are noticed promptly; otherwise
            # block until something completes.
            if spec_enabled and self._inflight < self.plane.capacity():
                record = self.plane.next_completion(
                    timeout=self.speculation_poll
                )
                if record is None:
                    self._maybe_speculate()
                    continue
            else:
                record = self.plane.next_completion()
                if record is None:  # pragma: no cover - defensive
                    continue
            self._settle(record)
        return self.totals
