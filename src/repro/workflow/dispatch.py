"""Attempt lifecycle for real execution: watchdog, retries, budgets.

Extracted from the LocalEngine monolith so the engine proper is only a
dataflow coordinator (see :mod:`repro.workflow.dataflow`) and the
per-activation machinery — wall-clock watchdog enforcement on both
backends, exponential-backoff retries, the infrastructure-failure
budget, reserved-field stripping and provenance bookkeeping — lives in
one place with no knowledge of dispatch order or barriers.

An :class:`AttemptRunner` is constructed once per engine run (it closes
over the run's router, shipped context, fault injector and cancellation
handle) and is safe to call from many bookkeeping threads concurrently:
every method touches only per-call state plus thread-safe collaborators
(the provenance store serializes internally, the affinity router locks
its own slots).

Straggler speculation adds a second dispatch entry point,
:meth:`AttemptRunner.run_speculative` (one attempt, no retry budget,
provenance rows flagged ``speculative=True``), and an
:class:`AttemptAbortHandle` through which the engine cancels whichever
twin loses the race — cooperative token cancellation on the threads
backend, :meth:`AffinityRouter.abort` (dequeue or SIGKILL) on
processes. A losing attempt is recorded ABORTED with an errormsg
starting with :data:`SPECULATION_ERRMSG_PREFIX`, which the recovery
analyzer treats as "not real work lost".
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, run_activation
from repro.workflow.affinity import AffinityRouter, RouterError
from repro.workflow.extractor import run_extractors
from repro.workflow.fault import (
    CancellationToken,
    CancelTokenHandle,
    FaultInjector,
    InjectedWorkerCrash,
    RetryPolicy,
    Watchdog,
    WatchdogTimeout,
    run_activation_with_faults,
)

#: Context entries that never cross a process boundary: live caches
#: (rebuilt per worker via the cache token), the in-memory shared FS and
#: the steering controller (both hold parent-side state/locks), and the
#: thread-backend cancellation handle (thread-local, meaningless in a
#: worker process — hung workers are killed, not cancelled).
PARENT_ONLY_CONTEXT_KEYS = ("caches", "fs", "steering", "cancel_token")

#: Exceptions that mean the *infrastructure* failed, not the activation:
#: they retry on a separate budget without consuming activation attempts.
INFRA_ERRORS = (BrokenProcessPool, RouterError, InjectedWorkerCrash)

#: Errormsg prefix on ABORTED rows of speculation losers (either twin).
SPECULATION_ERRMSG_PREFIX = "speculation"

#: Full errormsg written for a superseded attempt.
SPECULATION_LOSS_ERRMSG = "speculation: superseded by twin attempt"

#: Polling granularity while an attempt waits under an abort handle.
_ABORT_POLL_S = 0.05


def strip_reserved(tup: dict) -> tuple[dict, list, str | None]:
    """Pop the engine-reserved fields off an output tuple."""
    files = tup.pop("_files", [])
    payload = tup.pop("_extract_payload", None)
    return tup, files, payload


class AttemptSuperseded(RuntimeError):
    """The twin attempt won the race; this attempt was cancelled."""


class AttemptAbortHandle:
    """One flight's cancellation fan-out, usable from any thread.

    The bookkeeping thread running an attempt *binds* whatever
    cancellation lever its backend offers (the cooperative token on
    threads, the router future on processes); the coordinator calls
    :meth:`abort` when the twin attempt wins. Binding after the abort
    fires the lever immediately, so the race between "twin finished"
    and "attempt just started executing" cannot leak an orphan.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aborted = False
        self._token: CancellationToken | None = None
        self._router: AffinityRouter | None = None
        self._future: Future | None = None

    @property
    def aborted(self) -> bool:
        return self._aborted

    def bind_token(self, token: CancellationToken) -> None:
        with self._lock:
            self._token = token
            fire = self._aborted
        if fire:
            token.cancel()

    def bind_future(self, router: AffinityRouter, future: Future) -> None:
        with self._lock:
            self._router = router
            self._future = future
            fire = self._aborted
        if fire:
            router.abort(future)

    def abort(self) -> None:
        with self._lock:
            if self._aborted:
                return
            self._aborted = True
            token = self._token
            router = self._router
            future = self._future
        if token is not None:
            token.cancel()
        if router is not None and future is not None:
            router.abort(future)


@dataclass
class AttemptOutcome:
    """Per-activation retry/abort accounting returned by the runners."""

    retried: int = 0
    infra_retries: int = 0
    timed_out: bool = False
    #: The attempt chain ended in a FINISHED activation.
    succeeded: bool = False
    #: The attempt lost a speculation race and was cancelled.
    cancelled: bool = False
    #: Wall-clock seconds of the *successful* attempt (None otherwise) —
    #: the online cost service's observation unit.
    duration: float | None = None
    #: This outcome came from a speculative duplicate attempt.
    speculative: bool = False


class AttemptRunner:
    """Drives one activation from first attempt to terminal outcome."""

    def __init__(
        self,
        store: ProvenanceStore,
        retry: RetryPolicy,
        watchdog: Watchdog,
        *,
        router: AffinityRouter | None = None,
        shipped_context: dict | None = None,
        fault_injector: FaultInjector | None = None,
        cancel_handle: CancelTokenHandle | None = None,
        journal=None,
    ) -> None:
        self.store = store
        self.retry = retry
        self.watchdog = watchdog
        self.router = router
        self.shipped_context = shipped_context
        self.fault_injector = fault_injector
        self.cancel_handle = cancel_handle
        #: Optional :class:`~repro.workflow.journal.RunJournal`: each
        #: dispatched attempt logs an ``attempt-start`` event.
        self.journal = journal

    # -- execution ----------------------------------------------------------
    def _call_with_watchdog(
        self,
        call,
        deadline: float,
        key: str,
        abort_handle: AttemptAbortHandle | None = None,
    ):
        """Threads backend: run ``call(token)`` under a wall-clock deadline.

        The activation runs on a dedicated daemon thread while this
        bookkeeping thread does a timed wait. At the deadline the
        cooperative token is cancelled and the activation gets
        ``watchdog.grace`` seconds to notice; threads cannot be killed,
        so a non-cooperative activation is then *abandoned* — its
        provenance says ABORTED and the run moves on, but the thread
        itself survives until its code returns (document long hangs to
        chaos tests; the daemon flag keeps them from pinning exit).

        With an ``abort_handle`` the wait polls so a speculation loss
        lands promptly: the token is cancelled, the activation gets the
        same grace window, and :class:`AttemptSuperseded` is raised.
        """
        token = CancellationToken()
        done = threading.Event()
        box: dict = {}

        def runner() -> None:
            if self.cancel_handle is not None:
                self.cancel_handle.bind(token)
            try:
                box["result"] = call(token)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name=f"activation-{key}", daemon=True
        )
        if abort_handle is not None:
            abort_handle.bind_token(token)
        thread.start()
        if abort_handle is None:
            finished = done.wait(deadline)
        else:
            deadline_at = time.monotonic() + deadline
            finished = False
            while not finished:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0 or abort_handle.aborted:
                    break
                finished = done.wait(min(_ABORT_POLL_S, remaining))
            if not finished and abort_handle.aborted:
                token.cancel()
                done.wait(self.watchdog.grace)
                raise AttemptSuperseded(key)
        if not finished:
            token.cancel()
            cooperative = done.wait(self.watchdog.grace)
            detail = (
                "cancelled cooperatively"
                if cooperative
                else "non-cooperative activation abandoned"
            )
            raise WatchdogTimeout(deadline, detail)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute_activation(
        self,
        activity: Activity,
        tup: dict,
        key: str,
        tries: int,
        context: dict,
        deadline: float,
        abort_handle: AttemptAbortHandle | None = None,
    ) -> list[dict]:
        """Run one activation on the configured backend, under a deadline.

        Threads backend (no router): run the activity on a
        watchdog-supervised thread (cooperative cancellation; see
        ``_call_with_watchdog``). Processes backend: route ``(fn,
        operator, tag, tuple, sanitized context)`` through the affinity
        router — sticky by ``receptor_id`` so each receptor's
        activations revisit the worker holding its artifacts — with a
        timed wait on the result; a deadline miss SIGKILLs the worker
        (``router.abort``) and the router heals the slot. Raises
        :class:`WatchdogTimeout` either way, so the retry/provenance
        flow above is backend-agnostic.
        """
        injector = self.fault_injector
        if self.router is None:

            def call(token: CancellationToken) -> list[dict]:
                if injector is not None:
                    return run_activation_with_faults(
                        injector, key, tries, activity.fn, activity.operator,
                        activity.tag, tup, context,
                    )
                return activity.run(tup, context)

            return self._call_with_watchdog(
                call, deadline, key, abort_handle=abort_handle
            )
        affinity = tup.get("receptor_id") if isinstance(tup, dict) else None
        affinity_key = str(affinity) if affinity is not None else None
        if injector is not None:
            future = self.router.submit(
                affinity_key, run_activation_with_faults,
                injector, key, tries, activity.fn, activity.operator,
                activity.tag, tup, self.shipped_context,
            )
        else:
            future = self.router.submit(
                affinity_key, run_activation,
                activity.fn, activity.operator, activity.tag, tup,
                self.shipped_context,
            )
        if abort_handle is not None:
            # Bind after submit: a speculation loss dequeues a queued
            # task or SIGKILLs the worker running it.
            abort_handle.bind_future(self.router, future)
        try:
            return future.result(timeout=deadline)
        except FuturesTimeout:
            outcome = self.router.abort(future)
            if outcome == "finished":
                # Completed in the race window between the timed wait
                # expiring and the abort landing; the deadline was still
                # missed, so it is a timeout either way.
                pass
            raise WatchdogTimeout(deadline, f"worker {outcome}") from None

    def _collect_outputs(
        self, activity: Activity, raw: list[dict], tid: int
    ) -> list[dict]:
        """Strip reserved fields; record file/extract provenance."""
        outs = []
        for out in raw:
            clean, files, payload = strip_reserved(dict(out))
            for fname, fsize, fdir in files:
                self.store.record_file(tid, fname, int(fsize), fdir)
            if payload is not None and activity.extractors:
                self.store.record_extracts(
                    tid, run_extractors(activity.extractors, payload)
                )
            outs.append(clean)
        return outs

    def run_with_retry(
        self,
        activity: Activity,
        actid: int,
        tup: dict,
        key: str,
        context: dict,
        t0: float,
        abort_handle: AttemptAbortHandle | None = None,
    ) -> tuple[list[dict], AttemptOutcome]:
        """Execute one activation with watchdog, retries and backoff.

        Three failure classes, three budgets:

        * **Activation failures** (the callable raised): retried up to
          ``retry.max_attempts`` with exponential backoff, each attempt
          recorded as a FAILED activation.
        * **Infrastructure failures** (worker death, router errors):
          retried up to ``retry.max_infra_retries`` *without* consuming
          the activation's attempt budget — the input wasn't at fault.
        * **Watchdog timeouts**: terminal. A hung activation is aborted
          at its wall-clock deadline (worker killed on the processes
          backend, thread cancelled/abandoned on threads) and recorded
          ABORTED with the real abort timestamp; retrying a looping
          input would loop again.

        With an ``abort_handle`` (speculation enabled), a fourth exit
        exists at any point in the chain: the twin attempt won, this
        one is cancelled, and the current attempt (if any) is recorded
        ABORTED with the speculation-loss errormsg.
        """
        attempt = 0
        infra_failures = 0
        tries = 0  # total dispatches; fault injection re-rolls per try
        outcome = AttemptOutcome()
        while True:
            if abort_handle is not None and abort_handle.aborted:
                # Superseded before this attempt even began: nothing to
                # record — the twin's FINISHED row is the tuple's truth.
                outcome.cancelled = True
                return [], outcome
            start = time.perf_counter() - t0
            tid = self.store.begin_activation(
                actid, key, start, workdir=context.get("workdir", ""), attempt=attempt
            )
            if self.journal is not None:
                self.journal.attempt_started(
                    key, activity.tag, attempt, ts=start
                )
            deadline = self.watchdog.deadline(activity.cost(tup))
            try:
                raw = self._execute_activation(
                    activity, tup, key, tries, context, deadline,
                    abort_handle=abort_handle,
                )
            except AttemptSuperseded:
                self._record_loss(tid, t0)
                outcome.cancelled = True
                return [], outcome
            except WatchdogTimeout as exc:
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.ABORTED, 137,
                    f"watchdog timeout after {now - start:.3f}s "
                    f"(deadline {deadline:.3f}s; {exc.detail})",
                )
                outcome.timed_out = True
                return [], outcome
            except INFRA_ERRORS as exc:
                if abort_handle is not None and abort_handle.aborted:
                    # The router.abort that cancelled this attempt
                    # surfaces as a worker death — a speculation loss,
                    # not an infrastructure strike.
                    self._record_loss(tid, t0)
                    outcome.cancelled = True
                    return [], outcome
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.FAILED, 137,
                    f"infrastructure failure: {type(exc).__name__}: {exc}",
                )
                infra_failures += 1
                tries += 1
                if infra_failures > self.retry.max_infra_retries:
                    return [], outcome
                outcome.infra_retries += 1
                time.sleep(self.retry.delay(infra_failures - 1, key))
                continue
            except Exception as exc:  # noqa: BLE001 - activation errors are data
                if abort_handle is not None and abort_handle.aborted:
                    self._record_loss(tid, t0)
                    outcome.cancelled = True
                    return [], outcome
                self.store.end_activation(
                    tid,
                    time.perf_counter() - t0,
                    ActivationStatus.FAILED,
                    1,
                    f"{type(exc).__name__}: {exc}",
                )
                if self.retry.should_retry(attempt):
                    time.sleep(self.retry.delay(attempt, key))
                    attempt += 1
                    tries += 1
                    outcome.retried += 1
                    continue
                return [], outcome
            outs = self._collect_outputs(activity, raw, tid)
            now = time.perf_counter() - t0
            self.store.end_activation(tid, now)
            outcome.succeeded = True
            outcome.duration = now - start
            return outs, outcome

    def run_speculative(
        self,
        activity: Activity,
        actid: int,
        tup: dict,
        key: str,
        context: dict,
        t0: float,
        abort_handle: AttemptAbortHandle,
    ) -> tuple[list[dict], AttemptOutcome]:
        """One duplicate attempt of a suspected straggler, no retries.

        The duplicate is a hedge, not a recovery path: it gets a single
        attempt (the primary still holds the retry budget), its
        provenance row carries ``speculative=True``, and whichever twin
        loses the first-completion race is recorded ABORTED with the
        speculation-loss errormsg.
        """
        outcome = AttemptOutcome(speculative=True)
        if abort_handle.aborted:
            outcome.cancelled = True
            return [], outcome
        start = time.perf_counter() - t0
        tid = self.store.begin_activation(
            actid, key, start, workdir=context.get("workdir", ""),
            attempt=0, speculative=True,
        )
        if self.journal is not None:
            self.journal.attempt_started(
                key, activity.tag, 0, speculative=True, ts=start
            )
        deadline = self.watchdog.deadline(activity.cost(tup))
        try:
            # tries=1: deterministic first-try fault plans (the usual
            # chaos setup) have already fired on the primary; the
            # duplicate models a re-execution, not a replay.
            raw = self._execute_activation(
                activity, tup, key, 1, context, deadline,
                abort_handle=abort_handle,
            )
        except AttemptSuperseded:
            self._record_loss(tid, t0)
            outcome.cancelled = True
            return [], outcome
        except WatchdogTimeout as exc:
            now = time.perf_counter() - t0
            self.store.end_activation(
                tid, now, ActivationStatus.ABORTED, 137,
                f"watchdog timeout after {now - start:.3f}s "
                f"(deadline {deadline:.3f}s; {exc.detail})",
            )
            outcome.timed_out = True
            return [], outcome
        except Exception as exc:  # noqa: BLE001 - single-attempt duplicate
            if abort_handle.aborted:
                self._record_loss(tid, t0)
                outcome.cancelled = True
                return [], outcome
            self.store.end_activation(
                tid,
                time.perf_counter() - t0,
                ActivationStatus.FAILED,
                1,
                f"{type(exc).__name__}: {exc}",
            )
            return [], outcome
        outs = self._collect_outputs(activity, raw, tid)
        now = time.perf_counter() - t0
        self.store.end_activation(tid, now)
        outcome.succeeded = True
        outcome.duration = now - start
        return outs, outcome

    def _record_loss(self, tid: int, t0: float) -> None:
        """Close a superseded attempt's provenance row."""
        self.store.end_activation(
            tid,
            time.perf_counter() - t0,
            ActivationStatus.ABORTED,
            137,
            SPECULATION_LOSS_ERRMSG,
        )
