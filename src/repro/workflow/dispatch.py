"""Attempt lifecycle for real execution: watchdog, retries, budgets.

Extracted from the LocalEngine monolith so the engine proper is only a
dataflow coordinator (see :mod:`repro.workflow.dataflow`) and the
per-activation machinery — wall-clock watchdog enforcement on both
backends, exponential-backoff retries, the infrastructure-failure
budget, reserved-field stripping and provenance bookkeeping — lives in
one place with no knowledge of dispatch order or barriers.

An :class:`AttemptRunner` is constructed once per engine run (it closes
over the run's router, shipped context, fault injector and cancellation
handle) and is safe to call from many bookkeeping threads concurrently:
every method touches only per-call state plus thread-safe collaborators
(the provenance store serializes internally, the affinity router locks
its own slots).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, run_activation
from repro.workflow.affinity import AffinityRouter, RouterError
from repro.workflow.extractor import run_extractors
from repro.workflow.fault import (
    CancellationToken,
    CancelTokenHandle,
    FaultInjector,
    InjectedWorkerCrash,
    RetryPolicy,
    Watchdog,
    WatchdogTimeout,
    run_activation_with_faults,
)

#: Context entries that never cross a process boundary: live caches
#: (rebuilt per worker via the cache token), the in-memory shared FS and
#: the steering controller (both hold parent-side state/locks), and the
#: thread-backend cancellation handle (thread-local, meaningless in a
#: worker process — hung workers are killed, not cancelled).
PARENT_ONLY_CONTEXT_KEYS = ("caches", "fs", "steering", "cancel_token")

#: Exceptions that mean the *infrastructure* failed, not the activation:
#: they retry on a separate budget without consuming activation attempts.
INFRA_ERRORS = (BrokenProcessPool, RouterError, InjectedWorkerCrash)


def strip_reserved(tup: dict) -> tuple[dict, list, str | None]:
    """Pop the engine-reserved fields off an output tuple."""
    files = tup.pop("_files", [])
    payload = tup.pop("_extract_payload", None)
    return tup, files, payload


@dataclass
class AttemptOutcome:
    """Per-activation retry/abort accounting returned by ``run_with_retry``."""

    retried: int = 0
    infra_retries: int = 0
    timed_out: bool = False


class AttemptRunner:
    """Drives one activation from first attempt to terminal outcome."""

    def __init__(
        self,
        store: ProvenanceStore,
        retry: RetryPolicy,
        watchdog: Watchdog,
        *,
        router: AffinityRouter | None = None,
        shipped_context: dict | None = None,
        fault_injector: FaultInjector | None = None,
        cancel_handle: CancelTokenHandle | None = None,
    ) -> None:
        self.store = store
        self.retry = retry
        self.watchdog = watchdog
        self.router = router
        self.shipped_context = shipped_context
        self.fault_injector = fault_injector
        self.cancel_handle = cancel_handle

    # -- execution ----------------------------------------------------------
    def _call_with_watchdog(self, call, deadline: float, key: str):
        """Threads backend: run ``call(token)`` under a wall-clock deadline.

        The activation runs on a dedicated daemon thread while this
        bookkeeping thread does a timed wait. At the deadline the
        cooperative token is cancelled and the activation gets
        ``watchdog.grace`` seconds to notice; threads cannot be killed,
        so a non-cooperative activation is then *abandoned* — its
        provenance says ABORTED and the run moves on, but the thread
        itself survives until its code returns (document long hangs to
        chaos tests; the daemon flag keeps them from pinning exit).
        """
        token = CancellationToken()
        done = threading.Event()
        box: dict = {}

        def runner() -> None:
            if self.cancel_handle is not None:
                self.cancel_handle.bind(token)
            try:
                box["result"] = call(token)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name=f"activation-{key}", daemon=True
        )
        thread.start()
        finished = done.wait(deadline)
        if not finished:
            token.cancel()
            cooperative = done.wait(self.watchdog.grace)
            detail = (
                "cancelled cooperatively"
                if cooperative
                else "non-cooperative activation abandoned"
            )
            raise WatchdogTimeout(deadline, detail)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute_activation(
        self,
        activity: Activity,
        tup: dict,
        key: str,
        tries: int,
        context: dict,
        deadline: float,
    ) -> list[dict]:
        """Run one activation on the configured backend, under a deadline.

        Threads backend (no router): run the activity on a
        watchdog-supervised thread (cooperative cancellation; see
        ``_call_with_watchdog``). Processes backend: route ``(fn,
        operator, tag, tuple, sanitized context)`` through the affinity
        router — sticky by ``receptor_id`` so each receptor's
        activations revisit the worker holding its artifacts — with a
        timed wait on the result; a deadline miss SIGKILLs the worker
        (``router.abort``) and the router heals the slot. Raises
        :class:`WatchdogTimeout` either way, so the retry/provenance
        flow above is backend-agnostic.
        """
        injector = self.fault_injector
        if self.router is None:

            def call(token: CancellationToken) -> list[dict]:
                if injector is not None:
                    return run_activation_with_faults(
                        injector, key, tries, activity.fn, activity.operator,
                        activity.tag, tup, context,
                    )
                return activity.run(tup, context)

            return self._call_with_watchdog(call, deadline, key)
        affinity = tup.get("receptor_id") if isinstance(tup, dict) else None
        affinity_key = str(affinity) if affinity is not None else None
        if injector is not None:
            future = self.router.submit(
                affinity_key, run_activation_with_faults,
                injector, key, tries, activity.fn, activity.operator,
                activity.tag, tup, self.shipped_context,
            )
        else:
            future = self.router.submit(
                affinity_key, run_activation,
                activity.fn, activity.operator, activity.tag, tup,
                self.shipped_context,
            )
        try:
            return future.result(timeout=deadline)
        except FuturesTimeout:
            outcome = self.router.abort(future)
            if outcome == "finished":
                # Completed in the race window between the timed wait
                # expiring and the abort landing; the deadline was still
                # missed, so it is a timeout either way.
                pass
            raise WatchdogTimeout(deadline, f"worker {outcome}") from None

    def run_with_retry(
        self,
        activity: Activity,
        actid: int,
        tup: dict,
        key: str,
        context: dict,
        t0: float,
    ) -> tuple[list[dict], AttemptOutcome]:
        """Execute one activation with watchdog, retries and backoff.

        Three failure classes, three budgets:

        * **Activation failures** (the callable raised): retried up to
          ``retry.max_attempts`` with exponential backoff, each attempt
          recorded as a FAILED activation.
        * **Infrastructure failures** (worker death, router errors):
          retried up to ``retry.max_infra_retries`` *without* consuming
          the activation's attempt budget — the input wasn't at fault.
        * **Watchdog timeouts**: terminal. A hung activation is aborted
          at its wall-clock deadline (worker killed on the processes
          backend, thread cancelled/abandoned on threads) and recorded
          ABORTED with the real abort timestamp; retrying a looping
          input would loop again.
        """
        attempt = 0
        infra_failures = 0
        tries = 0  # total dispatches; fault injection re-rolls per try
        outcome = AttemptOutcome()
        while True:
            start = time.perf_counter() - t0
            tid = self.store.begin_activation(
                actid, key, start, workdir=context.get("workdir", ""), attempt=attempt
            )
            deadline = self.watchdog.deadline(activity.cost(tup))
            try:
                raw = self._execute_activation(
                    activity, tup, key, tries, context, deadline
                )
            except WatchdogTimeout as exc:
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.ABORTED, 137,
                    f"watchdog timeout after {now - start:.3f}s "
                    f"(deadline {deadline:.3f}s; {exc.detail})",
                )
                outcome.timed_out = True
                return [], outcome
            except INFRA_ERRORS as exc:
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.FAILED, 137,
                    f"infrastructure failure: {type(exc).__name__}: {exc}",
                )
                infra_failures += 1
                tries += 1
                if infra_failures > self.retry.max_infra_retries:
                    return [], outcome
                outcome.infra_retries += 1
                time.sleep(self.retry.delay(infra_failures - 1, key))
                continue
            except Exception as exc:  # noqa: BLE001 - activation errors are data
                self.store.end_activation(
                    tid,
                    time.perf_counter() - t0,
                    ActivationStatus.FAILED,
                    1,
                    f"{type(exc).__name__}: {exc}",
                )
                if self.retry.should_retry(attempt):
                    time.sleep(self.retry.delay(attempt, key))
                    attempt += 1
                    tries += 1
                    outcome.retried += 1
                    continue
                return [], outcome
            outs = []
            for out in raw:
                clean, files, payload = strip_reserved(dict(out))
                for fname, fsize, fdir in files:
                    self.store.record_file(tid, fname, int(fsize), fdir)
                if payload is not None and activity.extractors:
                    self.store.record_extracts(
                        tid, run_extractors(activity.extractors, payload)
                    )
                outs.append(clean)
            self.store.end_activation(tid, time.perf_counter() - t0)
            return outs, outcome
