"""Instrumented command templates.

SciCumulus activities are *instrumented*: the XML points at a template
directory containing an ``experiment.cmd`` whose tags (``%=NAME%``) are
substituted with each tuple's values at dispatch time (paper Figs 2-3).
The engine records the fully instantiated command line in provenance so
every parameter of every activation is queryable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_TAG = re.compile(r"%=([A-Za-z_][A-Za-z0-9_]*)%")


class TemplateError(ValueError):
    """Raised for unresolved or malformed templates."""


@dataclass
class ActivityTemplate:
    """One activity's command template + relation file wiring."""

    command: str
    templatedir: str = ""
    input_relation: str = "input.txt"
    output_relation: str = "output.txt"
    extra_files: dict[str, str] = field(default_factory=dict)

    def tags(self) -> list[str]:
        """Tag names appearing in the command, in order of appearance."""
        seen: list[str] = []
        for m in _TAG.finditer(self.command):
            if m.group(1) not in seen:
                seen.append(m.group(1))
        return seen

    def instantiate(self, values: dict) -> str:
        """Replace every ``%=TAG%`` with the tuple's value.

        Raises :class:`TemplateError` when a tag has no value — the
        engine treats that as a configuration error, not a runtime
        failure, exactly like SciCumulus refusing to dispatch.
        """

        def sub(m: re.Match) -> str:
            name = m.group(1)
            if name not in values:
                raise TemplateError(
                    f"template tag %={name}% has no value; tuple provides "
                    f"{sorted(values)}"
                )
            return str(values[name])

        return _TAG.sub(sub, self.command)

    def validate_against(self, fields: tuple[str, ...]) -> list[str]:
        """Tags not satisfiable by the given tuple fields."""
        return [t for t in self.tags() if t not in fields]
