"""Whole-relation application of the workflow algebra.

The engines stream tuple-by-tuple; this module provides the equivalent
bulk semantics (used by tests, by REDUCE barriers and by the SR/MR query
operators, which are relational rather than per-tuple).
"""

from __future__ import annotations

from typing import Callable

from repro.workflow.activity import Activity, ActivityError, Operator
from repro.workflow.relation import Relation


def apply_operator(
    activity: Activity, relation: Relation, context: dict | None = None
) -> Relation:
    """Apply one activity to a whole relation, honoring its operator."""
    context = context or {}
    out = Relation(f"{relation.name}->{activity.tag}")
    op = activity.operator
    if op in (Operator.MAP, Operator.SPLIT_MAP, Operator.FILTER):
        for tup in relation:
            for result in activity.run(tup, context):
                out.append(result)
    elif op is Operator.REDUCE:
        if activity.fn is None:
            raise ActivityError(f"REDUCE activity {activity.tag!r} has no callable")
        results = activity.fn({"__tuples__": list(relation)}, context)
        for result in results or []:
            out.append(result)
    elif op is Operator.SR_QUERY:
        if activity.fn is None:
            raise ActivityError(f"SR_QUERY activity {activity.tag!r} has no callable")
        for result in activity.fn({"__relation__": list(relation)}, context) or []:
            out.append(result)
    else:
        raise ActivityError(f"operator {op} needs apply_multi (multiple relations)")
    return out


def apply_multi(
    activity: Activity,
    relations: dict[str, Relation],
    context: dict | None = None,
) -> Relation:
    """MR_QUERY: a relational query over several named relations."""
    if activity.operator is not Operator.MR_QUERY:
        raise ActivityError(
            f"apply_multi expects an MR_QUERY activity, got {activity.operator}"
        )
    if activity.fn is None:
        raise ActivityError(f"MR_QUERY activity {activity.tag!r} has no callable")
    context = context or {}
    payload = {"__relations__": {k: list(v) for k, v in relations.items()}}
    out = Relation(f"mr->{activity.tag}")
    for result in activity.fn(payload, context) or []:
        out.append(result)
    return out


def make_filter(tag: str, predicate: Callable[[dict], bool], **kw) -> Activity:
    """Convenience constructor for FILTER activities."""

    def fn(tup: dict, _ctx: dict) -> list[dict]:
        return [dict(tup)] if predicate(tup) else []

    return Activity(tag=tag, operator=Operator.FILTER, fn=fn, **kw)


def make_map(tag: str, transform: Callable[[dict], dict], **kw) -> Activity:
    """Convenience constructor for MAP activities."""

    def fn(tup: dict, _ctx: dict) -> list[dict]:
        return [transform(dict(tup))]

    return Activity(tag=tag, operator=Operator.MAP, fn=fn, **kw)
