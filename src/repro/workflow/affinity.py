"""Receptor-affinity routing for the process backend.

SciCumulus places activations on VMs so that tasks sharing input data
land together; our equivalent is routing every activation for a given
receptor to the same worker process, so that worker's per-run caches
(receptor prep, attached grid-map segments) hit instead of rebuild.

A single ``ProcessPoolExecutor`` offers no placement control, so the
router keeps N *single-worker* pools — task-to-process placement is then
exact — fed by parent-side deques and one dispatcher thread per worker.
Routing is hash-affinity: ``stable_hash(key) % workers``. When a
worker's own queue runs dry its dispatcher steals from the longest
queue, trading a cache miss for idle time; the stolen task still
attaches the shared artifact plane, so the miss costs an attach, not a
rebuild.

A worker that dies (``BrokenProcessPool``) is replaced with a fresh
single-worker pool and the in-flight task fails over to the engine's
retry policy, which resubmits onto the healed worker.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable


class RouterError(RuntimeError):
    """Raised for tasks rejected or orphaned by router shutdown."""


def stable_hash(key: str) -> int:
    """Process-stable hash (builtin ``hash`` is salted per process)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def probe_worker(*_args: Any) -> int:
    """Identity probe: returns the executing worker's pid."""
    return os.getpid()


def sleepy_probe(seconds: float, *_args: Any) -> int:
    """Slow identity probe, for exercising work-stealing in tests."""
    time.sleep(seconds)
    return os.getpid()


class _Task:
    __slots__ = ("fn", "args", "future", "home")

    def __init__(self, fn: Callable, args: tuple, home: int) -> None:
        self.fn = fn
        self.args = args
        self.home = home
        self.future: Future = Future()


class AffinityRouter:
    """Sticky-by-key task routing over N single-process pools."""

    def __init__(self, workers: int, mp_context: Any, initializer: Callable | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._mp_context = mp_context
        self._initializer = initializer
        self._pools: list[ProcessPoolExecutor] = [
            self._new_pool() for _ in range(workers)
        ]
        self._queues: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._busy: list[bool] = [False] * workers
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._shutdown = False
        self.routed = 0
        self.steals = 0
        self._dispatchers = [
            threading.Thread(target=self._dispatch, args=(i,), daemon=True)
            for i in range(workers)
        ]
        for thread in self._dispatchers:
            thread.start()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=self._initializer,
        )

    # -- submission ----------------------------------------------------------
    def submit(self, affinity_key: str | None, fn: Callable, *args: Any) -> Future:
        """Queue a task for the key's home worker (least-loaded if keyless)."""
        with self._lock:
            if self._shutdown:
                raise RouterError("router is shut down")
            if affinity_key is None:
                home = min(range(self.workers), key=lambda i: len(self._queues[i]))
            else:
                home = stable_hash(affinity_key) % self.workers
            task = _Task(fn, args, home)
            self._queues[home].append(task)
            self.routed += 1
            self._work_ready.notify_all()
        return task.future

    def broadcast(self, fn: Callable, *args: Any) -> list[Any]:
        """Run ``fn`` once on every worker, returning per-worker results.

        Bypasses the queues (each pool has exactly one process, so
        pool-level submission already pins placement). Worker failures
        surface as exception objects in the result list rather than
        raising, so end-of-run cleanup can't be derailed by one dead
        worker.
        """
        with self._lock:
            if self._shutdown:
                raise RouterError("router is shut down")
            pools = list(self._pools)
        results: list[Any] = []
        for pool in pools:
            try:
                results.append(pool.submit(fn, *args).result())
            except Exception as exc:  # noqa: BLE001 - cleanup is best-effort
                results.append(exc)
        return results

    # -- dispatch ------------------------------------------------------------
    def _take_task(self, worker: int) -> _Task | None:
        """Own queue first; when dry, steal the longest *busy* backlog.

        Stealing is restricted to queues whose home worker is currently
        executing — an idle home worker is about to drain its own queue,
        and grabbing its task would break stickiness for nothing.
        """
        own = self._queues[worker]
        if own:
            return own.popleft()
        victims = [
            i
            for i in range(self.workers)
            if i != worker and self._busy[i] and self._queues[i]
        ]
        if victims:
            victim = max(victims, key=lambda i: len(self._queues[i]))
            self.steals += 1
            return self._queues[victim].popleft()
        return None

    def _dispatch(self, worker: int) -> None:
        while True:
            with self._lock:
                task = self._take_task(worker)
                while task is None and not self._shutdown:
                    self._work_ready.wait()
                    task = self._take_task(worker)
                if task is None:
                    return
                self._busy[worker] = True
                pool = self._pools[worker]
            error: BaseException | None = None
            result = None
            try:
                result = pool.submit(task.fn, *task.args).result()
            except BrokenProcessPool as exc:
                self._heal(worker, pool)
                error = exc
            except BaseException as exc:  # noqa: BLE001 - relay to waiter
                error = exc
            # Go idle *before* unblocking the submitter: a follow-up
            # submission must see this worker as a sticky home again,
            # not as a steal victim.
            with self._lock:
                self._busy[worker] = False
                self._work_ready.notify_all()
            if error is not None:
                task.future.set_exception(error)
            else:
                task.future.set_result(result)

    def _heal(self, worker: int, dead: ProcessPoolExecutor) -> None:
        """Replace a broken pool so retries land on a live process."""
        dead.shutdown(wait=False)
        with self._lock:
            if not self._shutdown and self._pools[worker] is dead:
                self._pools[worker] = self._new_pool()

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pending = [task for queue in self._queues for task in queue]
            for queue in self._queues:
                queue.clear()
            self._work_ready.notify_all()
        for task in pending:
            task.future.set_exception(RouterError("router shut down with task queued"))
        for thread in self._dispatchers:
            thread.join()
        for pool in self._pools:
            pool.shutdown(wait=True)
