"""Receptor-affinity routing for the process backend.

SciCumulus places activations on VMs so that tasks sharing input data
land together; our equivalent is routing every activation for a given
receptor to the same worker process, so that worker's per-run caches
(receptor prep, attached grid-map segments) hit instead of rebuild.

A single ``ProcessPoolExecutor`` offers no placement control, so the
router keeps N *single-worker* pools — task-to-process placement is then
exact — fed by parent-side deques and one dispatcher thread per worker.
Routing is hash-affinity: ``stable_hash(key) % workers``. When a
worker's own queue runs dry its dispatcher steals from the longest
queue, trading a cache miss for idle time; the stolen task still
attaches the shared artifact plane, so the miss costs an attach, not a
rebuild.

Fault machinery (driven by the engine's watchdog and retry policy):

* A worker that dies (``BrokenProcessPool``) is replaced with a fresh
  single-worker pool and the in-flight task fails over to the engine's
  retry policy, which resubmits onto the healed worker.
* :meth:`AffinityRouter.abort` lets the engine enforce a wall-clock
  deadline: a still-queued task is dequeued; a running task's worker is
  killed with SIGKILL (the only way to stop a hung activation) and the
  healing path replaces it. Deliberate watchdog kills do not count
  against the worker's health.
* A slot that accumulates ``quarantine_after`` *consecutive* unexpected
  deaths is quarantined instead of endlessly healed: its backlog is
  redistributed, new submissions re-hash over the surviving slots, and
  the run degrades gracefully on fewer workers. The last live slot is
  never quarantined.

Elasticity: :meth:`AffinityRouter.resize` grows or shrinks the live
slot count mid-run. Growth appends fresh single-worker pools (each with
its own dispatcher thread); shrinkage *retires* slots through the same
drain path quarantine uses — no new work, backlog redistributed, the
process shut down once its in-flight task finishes.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable


class RouterError(RuntimeError):
    """Raised for tasks rejected or orphaned by router shutdown."""


def stable_hash(key: str) -> int:
    """Process-stable hash (builtin ``hash`` is salted per process)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def sticky_index(key: str, n: int) -> int:
    """Deterministic home index for ``key`` among ``n`` candidates.

    The one placement rule used at every granularity: slot-level by the
    :class:`AffinityRouter` (which worker process a receptor's
    activations revisit) and node-level by the distributed director
    (which worker *node* holds a receptor's shared-memory map plane).
    Same key + same candidate count = same home, in any process.
    """
    if n < 1:
        raise ValueError("need at least one placement candidate")
    return stable_hash(key) % n


def probe_worker(*_args: Any) -> int:
    """Identity probe: returns the executing worker's pid."""
    return os.getpid()


def sleepy_probe(seconds: float, *_args: Any) -> int:
    """Slow identity probe, for exercising work-stealing in tests."""
    time.sleep(seconds)
    return os.getpid()


class _Task:
    __slots__ = ("fn", "args", "future", "home")

    def __init__(self, fn: Callable, args: tuple, home: int) -> None:
        self.fn = fn
        self.args = args
        self.home = home
        self.future: Future = Future()


class AffinityRouter:
    """Sticky-by-key task routing over N single-process pools."""

    def __init__(
        self,
        workers: int,
        mp_context: Any,
        initializer: Callable | None = None,
        *,
        quarantine_after: int = 3,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.workers = workers
        self.quarantine_after = quarantine_after
        self._mp_context = mp_context
        self._initializer = initializer
        self._pools: list[ProcessPoolExecutor] = []
        #: Pid of each slot's worker process, resolved from an eager
        #: probe submitted at pool creation (single-worker pools execute
        #: FIFO, so the probe resolves before any real task runs).
        self._pid_futures: list[Future] = []
        for _ in range(workers):
            pool, pid_future = self._new_pool()
            self._pools.append(pool)
            self._pid_futures.append(pid_future)
        self._queues: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._busy: list[bool] = [False] * workers
        #: Task currently executing on each slot (for abort targeting).
        self._running: list[_Task | None] = [None] * workers
        #: Slots the engine's watchdog killed on purpose — their next
        #: BrokenProcessPool is expected and not a health strike.
        self._expected_kills: set[int] = set()
        self._consecutive_failures: list[int] = [0] * workers
        self._quarantined: list[bool] = [False] * workers
        #: Slots drained by an elastic scale-down; like quarantined
        #: slots they take no new work, but retirement is deliberate and
        #: carries no health stigma.
        self._retired: list[bool] = [False] * workers
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._shutdown = False
        self.routed = 0
        self.steals = 0
        self.quarantined_workers = 0
        self._dispatchers = [
            threading.Thread(target=self._dispatch, args=(i,), daemon=True)
            for i in range(workers)
        ]
        for thread in self._dispatchers:
            thread.start()

    def _new_pool(self) -> tuple[ProcessPoolExecutor, Future]:
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=self._initializer,
        )
        return pool, pool.submit(probe_worker)

    def _live_slots(self) -> list[int]:
        return [
            i
            for i in range(self.workers)
            if not self._quarantined[i] and not self._retired[i]
        ]

    # -- submission ----------------------------------------------------------
    def submit(self, affinity_key: str | None, fn: Callable, *args: Any) -> Future:
        """Queue a task for the key's home worker (least-loaded if keyless).

        Quarantined slots are skipped: keyed tasks re-hash over the live
        slots (still deterministic per key), keyless tasks consider only
        live queues.
        """
        with self._lock:
            if self._shutdown:
                raise RouterError("router is shut down")
            live = self._live_slots()
            if affinity_key is None:
                home = min(live, key=lambda i: len(self._queues[i]))
            else:
                home = sticky_index(affinity_key, self.workers)
                if self._quarantined[home] or self._retired[home]:
                    home = live[sticky_index(affinity_key, len(live))]
            task = _Task(fn, args, home)
            self._queues[home].append(task)
            self.routed += 1
            self._work_ready.notify_all()
        return task.future

    def broadcast(self, fn: Callable, *args: Any) -> list[Any]:
        """Run ``fn`` once on every live worker, returning per-worker results.

        Bypasses the queues (each pool has exactly one process, so
        pool-level submission already pins placement). Worker failures
        surface as exception objects in the result list rather than
        raising, so end-of-run cleanup can't be derailed by one dead
        worker. Quarantined slots are skipped — their processes are gone.
        """
        with self._lock:
            if self._shutdown:
                raise RouterError("router is shut down")
            pools = [self._pools[i] for i in self._live_slots()]
        results: list[Any] = []
        for pool in pools:
            try:
                results.append(pool.submit(fn, *args).result())
            except Exception as exc:  # noqa: BLE001 - cleanup is best-effort
                results.append(exc)
        return results

    # -- watchdog abort ------------------------------------------------------
    def abort(self, future: Future) -> str:
        """Abort a submitted task whose deadline expired.

        Returns how the abort landed: ``"dequeued"`` (never started —
        removed from its queue, :class:`RouterError` set), ``"killed"``
        (running — its worker process got SIGKILL; the dispatcher's
        healing path replaces the pool and fails the future), or
        ``"finished"`` (completed in the race window; the result is
        still on the future). Deliberate kills are flagged so they do
        not count toward quarantine.
        """
        with self._lock:
            for queue in self._queues:
                for task in queue:
                    if task.future is future:
                        queue.remove(task)
                        future.set_exception(
                            RouterError("aborted by watchdog while queued")
                        )
                        return "dequeued"
            worker = next(
                (
                    i
                    for i, task in enumerate(self._running)
                    if task is not None and task.future is future
                ),
                None,
            )
            if worker is None:
                return "finished"
            self._expected_kills.add(worker)
            pid_future = self._pid_futures[worker]
            # Kill under the lock: the dispatcher cannot swap in another
            # task on this slot until the lock is released, so the
            # SIGKILL cannot hit an innocent successor task.
            try:
                pid = pid_future.result(timeout=5.0)
                os.kill(pid, signal.SIGKILL)
            except Exception:  # noqa: BLE001 - worker already dead
                pass
            return "killed"

    # -- dispatch ------------------------------------------------------------
    def _take_task(self, worker: int) -> _Task | None:
        """Own queue first; when dry, steal the longest *busy* backlog.

        Stealing is restricted to queues whose home worker is currently
        executing — an idle home worker is about to drain its own queue,
        and grabbing its task would break stickiness for nothing.
        Quarantined slots neither execute nor get stolen from (their
        queues were redistributed at quarantine time).
        """
        if self._quarantined[worker] or self._retired[worker]:
            return None
        own = self._queues[worker]
        if own:
            return own.popleft()
        victims = [
            i
            for i in range(self.workers)
            if i != worker
            and self._busy[i]
            and self._queues[i]
            and not self._quarantined[i]
            and not self._retired[i]
        ]
        if victims:
            victim = max(victims, key=lambda i: len(self._queues[i]))
            self.steals += 1
            return self._queues[victim].popleft()
        return None

    def _dispatch(self, worker: int) -> None:
        while True:
            with self._lock:
                task = self._take_task(worker)
                while task is None and not self._shutdown:
                    self._work_ready.wait()
                    task = self._take_task(worker)
                if task is None:
                    return
                self._busy[worker] = True
                self._running[worker] = task
                pool = self._pools[worker]
            error: BaseException | None = None
            result = None
            try:
                result = pool.submit(task.fn, *task.args).result()
            except BrokenProcessPool as exc:
                self._heal(worker, pool)
                error = exc
            except BaseException as exc:  # noqa: BLE001 - relay to waiter
                error = exc
            # Go idle *before* unblocking the submitter: a follow-up
            # submission must see this worker as a sticky home again,
            # not as a steal victim.
            with self._lock:
                self._busy[worker] = False
                self._running[worker] = None
                if error is None:
                    self._consecutive_failures[worker] = 0
                retired_pool = (
                    pool
                    if self._retired[worker] and self._pools[worker] is pool
                    else None
                )
                self._work_ready.notify_all()
            if retired_pool is not None:
                # The slot was retired while this task ran; its process
                # drains now that the in-flight work is done.
                retired_pool.shutdown(wait=False)
            if error is not None:
                if not task.future.done():
                    task.future.set_exception(error)
            elif not task.future.done():
                task.future.set_result(result)

    def _heal(self, worker: int, dead: ProcessPoolExecutor) -> None:
        """Replace a broken pool so retries land on a live process.

        An *unexpected* death (not a watchdog kill) is a health strike;
        ``quarantine_after`` consecutive strikes quarantine the slot
        instead — unless it is the last one standing.
        """
        dead.shutdown(wait=False)
        with self._lock:
            if self._shutdown or self._pools[worker] is not dead:
                return
            expected = worker in self._expected_kills
            self._expected_kills.discard(worker)
            if expected:
                self._consecutive_failures[worker] = 0
            if self._retired[worker]:
                # A retired slot was on its way out anyway: no
                # replacement, no health strike.
                return
            if not expected:
                self._consecutive_failures[worker] += 1
                if (
                    self._consecutive_failures[worker] >= self.quarantine_after
                    and len(self._live_slots()) > 1
                ):
                    self._quarantine_locked(worker)
                    return
            self._pools[worker], self._pid_futures[worker] = self._new_pool()

    def _quarantine_locked(self, worker: int) -> None:
        """Retire a chronically dying slot; redistribute its backlog."""
        self._quarantined[worker] = True
        self.quarantined_workers += 1
        backlog = list(self._queues[worker])
        self._queues[worker].clear()
        live = self._live_slots()
        for task in backlog:
            target = min(live, key=lambda i: len(self._queues[i]))
            self._queues[target].append(task)
        self._work_ready.notify_all()

    # -- elasticity ----------------------------------------------------------
    def resize(self, target: int) -> int:
        """Grow or shrink the live slot count to ``target`` mid-run.

        Growth appends fresh single-worker pools, each with its own
        dispatcher thread. Shrinkage retires slots — idle ones first,
        then highest index — through the quarantine drain path: a
        retired slot takes no new work, its backlog is redistributed to
        the least-loaded live queues, and its process shuts down as soon
        as any in-flight task completes. The last live slot is never
        retired. Returns the resulting live slot count.
        """
        idle_pools: list[ProcessPoolExecutor] = []
        with self._lock:
            if self._shutdown:
                raise RouterError("router is shut down")
            target = max(1, int(target))
            live = self._live_slots()
            if target > len(live):
                for _ in range(target - len(live)):
                    pool, pid_future = self._new_pool()
                    self._pools.append(pool)
                    self._pid_futures.append(pid_future)
                    self._queues.append(deque())
                    self._busy.append(False)
                    self._running.append(None)
                    self._consecutive_failures.append(0)
                    self._quarantined.append(False)
                    self._retired.append(False)
                    slot = self.workers
                    self.workers += 1
                    thread = threading.Thread(
                        target=self._dispatch, args=(slot,), daemon=True
                    )
                    self._dispatchers.append(thread)
                    thread.start()
            elif target < len(live):
                # Idle slots first (their processes can drop right now),
                # then newest; sort key is (busy, -index).
                victims = sorted(live, key=lambda i: (self._busy[i], -i))
                for worker in victims[: len(live) - target]:
                    self._retired[worker] = True
                    backlog = list(self._queues[worker])
                    self._queues[worker].clear()
                    remaining = self._live_slots()
                    for task in backlog:
                        dest = min(
                            remaining, key=lambda i: len(self._queues[i])
                        )
                        self._queues[dest].append(task)
                    if not self._busy[worker]:
                        idle_pools.append(self._pools[worker])
            self._work_ready.notify_all()
            survivors = len(self._live_slots())
        for pool in idle_pools:
            pool.shutdown(wait=False)
        return survivors

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pending = [task for queue in self._queues for task in queue]
            for queue in self._queues:
                queue.clear()
            self._work_ready.notify_all()
        for task in pending:
            if not task.future.done():
                task.future.set_exception(
                    RouterError("router shut down with task queued")
                )
        for thread in self._dispatchers:
            thread.join()
        for pool in self._pools:
            pool.shutdown(wait=True)
