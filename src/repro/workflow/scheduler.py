"""Activation scheduling over heterogeneous VM cores.

SciCumulus uses a *weighted cost model with a greedy algorithm*: long
activations go to more powerful cores, short ones to weaker cores. The
paper observes that the greedy plan computation itself becomes expensive
as activations x VMs grows — the cause of the 32 -> 128-core efficiency
decay (Fig. 9) — so the scheduler models that overhead explicitly.

The engine consumes schedulers through a priority interface (job
priority + core priority + per-round overhead), which keeps the
discrete-event loop at O(log n) per dispatch; :meth:`Scheduler.assign`
offers the equivalent batch semantics for tests and offline planning.

A round-robin baseline is provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.cloud.cluster import CoreHandle


@dataclass(frozen=True)
class PendingActivation:
    """What the scheduler sees: a key, an expected cost, an arrival index."""

    key: str
    expected_cost: float
    arrival: int = 0


class Scheduler(Protocol):
    """Assigns pending activations to free cores."""

    def job_priority(self, pending: PendingActivation) -> float:
        """Higher dispatches first."""
        ...  # pragma: no cover

    def core_priority(self, core: CoreHandle) -> float:
        """Higher receives the highest-priority job."""
        ...  # pragma: no cover

    def overhead_seconds(self, n_ready: int, n_total_cores: int) -> float:
        """Plan-computation cost charged per scheduling round."""
        ...  # pragma: no cover


class _AssignMixin:
    """Batch assignment derived from the priority interface."""

    def assign(
        self,
        ready: Sequence[PendingActivation],
        free_cores: Sequence[CoreHandle],
    ) -> list[tuple[PendingActivation, CoreHandle]]:
        jobs = sorted(ready, key=self.job_priority, reverse=True)  # type: ignore[attr-defined]
        cores = sorted(free_cores, key=self.core_priority, reverse=True)  # type: ignore[attr-defined]
        return list(zip(jobs, cores))


@dataclass
class GreedyCostScheduler(_AssignMixin):
    """SciCumulus' native scheduler.

    Assignment: the longest-expected activation goes to the fastest free
    core ("short-term activities to less powerful VMs, long-term
    activities to more powerful VMs"). The expected cost may come from
    the static activity table or — when the engine runs with an
    :class:`~repro.perf.online_cost.OnlineCostService` — from learned
    per-activity, per-size-class service-time estimates.

    Overhead: each scheduling round costs
    ``base + per_pair * n_ready * n_total_cores`` seconds, reflecting the
    greedy plan search whose space grows with (queue x VMs); the
    bilinear term reproduces the paper's efficiency decay from 32 to
    128 cores while staying cheap to simulate.
    """

    base_overhead: float = 0.02
    per_pair_overhead: float = 1.0e-4

    def job_priority(self, pending: PendingActivation) -> float:
        return pending.expected_cost

    def core_priority(self, core: CoreHandle) -> float:
        return core.speed

    def overhead_seconds(self, n_ready: int, n_total_cores: int) -> float:
        return self.base_overhead + self.per_pair_overhead * n_ready * n_total_cores


@dataclass
class RoundRobinScheduler(_AssignMixin):
    """Naive baseline: FIFO activations onto cores in listed order."""

    base_overhead: float = 0.002

    def job_priority(self, pending: PendingActivation) -> float:
        return -float(pending.arrival)  # earliest arrival first

    def core_priority(self, core: CoreHandle) -> float:
        return 0.0  # any core

    def overhead_seconds(self, n_ready: int, n_total_cores: int) -> float:
        return self.base_overhead
