"""Execution engines: real (thread pool) and simulated (discrete event).

Both engines run the same :class:`~repro.workflow.activity.Workflow`
against an input :class:`~repro.workflow.relation.Relation`, record full
PROV-Wf provenance, re-execute failed activations, and handle
looping-state activations (pre-dispatch blocking when the Hg routine is
enabled, watchdog aborts otherwise).

* :class:`LocalEngine` actually executes the activation callables on a
  thread pool — used for the biology-side results (Table 3) and the
  provenance queries (Figs 10-12).
* :class:`SimulatedEngine` replaces execution with a calibrated service
  -time model and schedules activations onto simulated VM cores through
  a pluggable :class:`~repro.workflow.scheduler.Scheduler` — used for
  the 2..128-core sweeps (Figs 5-9), which would take CPU-days to run
  for real.

Activation functions may attach two reserved fields to their output
tuples: ``_files`` (list of ``(fname, fsize, fdir)`` records) and
``_extract_payload`` (a string fed to the activity's extractors). The
engine strips both before the tuple continues downstream.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.cloud.cluster import CoreHandle, VirtualCluster
from repro.cloud.failures import ActivityFailureModel
from repro.cloud.provider import VMState
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Activity, Operator, Workflow, run_activation
from repro.workflow.affinity import AffinityRouter, RouterError
from repro.workflow.artifacts import ArtifactPlane, drop_run_state, release_cached
from repro.workflow.extractor import run_extractors
from repro.workflow.fault import (
    CancellationToken,
    CancelTokenHandle,
    FaultInjector,
    InjectedWorkerCrash,
    RetryPolicy,
    Watchdog,
    WatchdogTimeout,
    run_activation_with_faults,
)
from repro.workflow.relation import Relation, tuple_key
from repro.workflow.scheduler import (
    GreedyCostScheduler,
    PendingActivation,
    Scheduler,
)


class EngineError(RuntimeError):
    """Raised for unrecoverable engine conditions."""


@dataclass
class ExecutionReport:
    """Summary of one workflow run."""

    wkfid: int
    workflow_tag: str
    tet_seconds: float
    output: Relation
    counts: dict[str, int] = field(default_factory=dict)
    total_activations: int = 0
    retried: int = 0
    blocked: int = 0
    aborted: int = 0
    cost_usd: float = 0.0
    peak_cores: int = 0
    bytes_written: float = 0.0
    #: Artifact-plane accounting for the run (builds / shm hits / disk
    #: hits / builds-per-artifact), empty when no plane was active.
    artifact_stats: dict = field(default_factory=dict)
    #: Activations the affinity router handed to a non-home worker.
    steals: int = 0
    #: Activations aborted by the wall-clock watchdog (real timeouts;
    #: a subset of ``aborted``, which also counts predicate-blocked
    #: looping kills).
    timeouts: int = 0
    #: Re-dispatches caused by infrastructure failures (worker death,
    #: router errors) — these never consume an activation's attempt
    #: budget, unlike ``retried``.
    infra_retries: int = 0
    #: Worker slots the router quarantined after repeated deaths.
    quarantined_workers: int = 0

    @property
    def succeeded(self) -> bool:
        return self.counts.get("FAILED", 0) == 0


def _strip_reserved(tup: dict) -> tuple[dict, list, str | None]:
    """Pop the engine-reserved fields off an output tuple."""
    files = tup.pop("_files", [])
    payload = tup.pop("_extract_payload", None)
    return tup, files, payload


#: Executor backends LocalEngine can run activations on.
BACKENDS = ("threads", "processes")

#: Context entries that never cross a process boundary: live caches
#: (rebuilt per worker via the cache token), the in-memory shared FS and
#: the steering controller (both hold parent-side state/locks), and the
#: thread-backend cancellation handle (thread-local, meaningless in a
#: worker process — hung workers are killed, not cancelled).
_PARENT_ONLY_CONTEXT_KEYS = ("caches", "fs", "steering", "cancel_token")

#: Exceptions that mean the *infrastructure* failed, not the activation:
#: they retry on a separate budget without consuming activation attempts.
_INFRA_ERRORS = (BrokenProcessPool, RouterError, InjectedWorkerCrash)


@dataclass
class _AttemptOutcome:
    """Per-activation retry/abort accounting returned by ``_run_with_retry``."""

    retried: int = 0
    infra_retries: int = 0
    timed_out: bool = False


class LocalEngine:
    """Real execution on a pluggable executor backend.

    ``backend="threads"`` (default) runs activation callables on a
    thread pool — fine for activations that release the GIL or are
    I/O-bound, and required when the run context carries non-picklable
    state (an in-memory shared FS, a steering controller).

    ``backend="processes"`` executes activations in spawn-context worker
    processes, sidestepping the GIL for CPU-bound activations (the
    docking hot path). Bookkeeping threads still drive provenance —
    begin/end activation, file and extractor records all happen in the
    parent, so the provenance store never crosses a process boundary.
    Activation callables and their tuples/context must be picklable; the
    engine ships a sanitized context (parent-only entries stripped) plus
    a per-run ``cache_token`` that workers use to build and reuse
    receptor/ligand artifacts once per process.

    The processes backend routes activations through an
    :class:`~repro.workflow.affinity.AffinityRouter` — sticky-by-receptor
    placement with work stealing — and (unless ``shared_maps`` is
    disabled in the context) publishes receptor grid maps into a shared
    :class:`~repro.workflow.artifacts.ArtifactPlane` so each receptor's
    maps are built once per run, not once per worker. The engine owns
    plane lifecycle: segments are unlinked and worker-side run caches
    dropped when the run ends, even after a worker crash.

    Fault tolerance is *enforced*, not simulated: every activation runs
    under a wall-clock :class:`~repro.workflow.fault.Watchdog` deadline
    (hung workers are SIGKILLed and their pool healed; hung threads are
    cancelled cooperatively or abandoned), failed activations retry
    with exponential backoff, infrastructure failures retry on a
    separate budget, and chronically dying worker slots are
    quarantined. A ``fault_injector`` context entry
    (:class:`~repro.workflow.fault.FaultInjector`) forces these paths
    deterministically for chaos tests.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        workers: int = 4,
        retry: RetryPolicy | None = None,
        watchdog: Watchdog | None = None,
        *,
        backend: str = "threads",
        block_known_loopers: bool = True,
    ) -> None:
        if workers < 1:
            raise EngineError("need at least one worker")
        if backend not in BACKENDS:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.store = store
        self.workers = workers
        self.backend = backend
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.block_known_loopers = block_known_loopers
        self._router: AffinityRouter | None = None
        self._shipped_context: dict | None = None
        self._fault_injector: FaultInjector | None = None
        self._cancel_handle: CancelTokenHandle | None = None
        #: Per-worker results of the end-of-run cache-cleanup broadcast
        #: (True where a worker dropped a run-state entry); for tests.
        self.last_cache_cleanup: list = []

    def run(
        self,
        workflow: Workflow,
        relation: Relation,
        context: dict | None = None,
    ) -> ExecutionReport:
        context = dict(context or {})
        t0 = time.perf_counter()
        wkfid = self.store.begin_workflow(
            workflow.tag,
            workflow.description,
            workflow.exectag,
            workflow.expdir,
            starttime=0.0,
        )
        actids = {
            a.tag: self.store.register_activity(
                wkfid,
                a.tag,
                a.description,
                a.template.templatedir if a.template else "",
                a.template.command if a.template else "",
                a.operator.value,
            )
            for a in workflow.activities
        }
        context["wkfid"] = wkfid

        retried = blocked = aborted = total = 0
        timeouts = infra_retries = quarantined = 0
        current = [(dict(t), tuple_key(t, i)) for i, t in enumerate(relation)]
        final = Relation(f"{workflow.tag}:output")

        # Fault injection: chaos tests force crashes/hangs/failures via
        # this context entry; it ships to workers so faults fire where
        # real ones would. Never visible to activations.
        self._fault_injector: FaultInjector | None = context.pop(
            "fault_injector", None
        )
        # Cooperative cancellation for the threads backend: one handle
        # per run in the *shared* context (activations setdefault caches
        # there, so no per-activation copies); each activation-runner
        # thread binds its private token into the handle.
        self._cancel_handle = CancelTokenHandle()
        context["cancel_token"] = self._cancel_handle

        # Artifact-plane policy: ``shared_maps`` tristate (None = auto,
        # on for the processes backend where workers cannot see each
        # other's in-process caches); ``map_cache`` names a persistent
        # content-addressed map directory shared across runs.
        shared_maps = context.pop("shared_maps", None)
        map_cache = context.pop("map_cache", None)
        use_plane = (
            shared_maps if shared_maps is not None else self.backend == "processes"
        )
        plane: ArtifactPlane | None = None
        artifact_stats: dict = {}
        steals = 0
        if use_plane:
            plane = ArtifactPlane.create(map_cache_dir=map_cache)
            context["artifact_plane"] = plane.handle
        elif map_cache:
            context["map_cache_dir"] = map_cache

        if self.backend == "processes":
            # Spawn (not fork): the parent runs bookkeeping threads and an
            # open SQLite handle, neither of which survives a fork safely.
            self._router = AffinityRouter(
                self.workers,
                multiprocessing.get_context("spawn"),
                quarantine_after=self.retry.quarantine_after,
            )
            shipped = {
                k: v
                for k, v in context.items()
                if k not in _PARENT_ONLY_CONTEXT_KEYS
            }
            # Workers key their build-once artifact caches on this token,
            # so one engine run never reuses another run's receptors/maps
            # (grid spacing or preparation settings may differ).
            shipped["cache_token"] = uuid.uuid4().hex
            # Lets injected crashes know there is a real process to kill.
            shipped["worker_process"] = True
            self._shipped_context = shipped
        try:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                for idx, activity in enumerate(workflow.activities):
                    actid = actids[activity.tag]
                    if activity.operator is Operator.REDUCE:
                        tuples = [t for t, _ in current]
                        out, outcome = self._run_one(
                            pool, activity, actid,
                            {"__tuples__": tuples}, f"reduce-{activity.tag}",
                            context, t0,
                        )
                        retried += outcome.retried
                        infra_retries += outcome.infra_retries
                        if outcome.timed_out:
                            aborted += 1
                            timeouts += 1
                        next_tuples = [(t, tuple_key(t, k)) for k, t in enumerate(out)]
                        total += 1
                    else:
                        steering = context.get("steering")
                        futures = []
                        next_tuples = []
                        for tup, key in current:
                            total += 1
                            if steering is not None and steering.should_abort(
                                activity.tag, key
                            ):
                                self.store.record_blocked(
                                    actid, key, time.perf_counter() - t0,
                                    "aborted by user steering",
                                )
                                blocked += 1
                                continue
                            if activity.would_loop(tup):
                                if self.block_known_loopers:
                                    self.store.record_blocked(
                                        actid, key, time.perf_counter() - t0,
                                        "known looping input (Hg routine)",
                                    )
                                    blocked += 1
                                else:
                                    # Predicate-known looper with the Hg
                                    # routine disabled: abort at decision
                                    # time rather than burning the real
                                    # deadline. End time is the actual
                                    # wall clock of the decision — a
                                    # fabricated ``start + deadline``
                                    # would skew per-activity duration
                                    # queries; the deadline it *would*
                                    # have received is kept in errormsg.
                                    start = time.perf_counter() - t0
                                    tid = self.store.begin_activation(
                                        actid, key, start,
                                        workdir=context.get("workdir", ""),
                                    )
                                    deadline = self.watchdog.deadline(
                                        activity.cost(tup)
                                    )
                                    self.store.end_activation(
                                        tid, time.perf_counter() - t0,
                                        ActivationStatus.ABORTED, 137,
                                        "looping state killed by watchdog "
                                        f"(deadline {deadline:.3f}s)",
                                    )
                                    aborted += 1
                                continue
                            futures.append(
                                pool.submit(
                                    self._run_with_retry, activity, actid, tup,
                                    key, context, t0,
                                )
                            )
                        for fut in futures:
                            outs, outcome = fut.result()
                            retried += outcome.retried
                            infra_retries += outcome.infra_retries
                            if outcome.timed_out:
                                aborted += 1
                                timeouts += 1
                            for out_tup in outs:
                                next_tuples.append(
                                    (out_tup, tuple_key(out_tup, len(next_tuples)))
                                )
                    current = next_tuples
        finally:
            if self._router is not None:
                steals = self._router.steals
                quarantined = self._router.quarantined_workers
                # Broadcast end-of-run cleanup: every worker drops the
                # run's cache-token state and plane attachment, so a
                # long-lived pool never accumulates dead runs' artifacts.
                token = (self._shipped_context or {}).get("cache_token")
                scratch = plane.handle.scratch_dir if plane is not None else None
                try:
                    self.last_cache_cleanup = self._router.broadcast(
                        drop_run_state, token, scratch
                    )
                except RouterError:  # pragma: no cover - already shut down
                    self.last_cache_cleanup = []
                self._router.shutdown()
                self._router = None
                self._shipped_context = None
            if plane is not None:
                context.pop("artifact_plane", None)
                # The parent itself attaches in threads mode (or when a
                # REDUCE ran inline); drop that before unlinking.
                release_cached(plane.handle.scratch_dir)
                artifact_stats = plane.destroy()
            context.pop("cancel_token", None)
            self._fault_injector = None
            self._cancel_handle = None
        for tup, _ in current:
            final.append(tup)
        tet = time.perf_counter() - t0
        self.store.end_workflow(wkfid, tet)
        return ExecutionReport(
            wkfid=wkfid,
            workflow_tag=workflow.tag,
            tet_seconds=tet,
            output=final,
            counts=self.store.counts_by_status(wkfid),
            total_activations=total,
            retried=retried,
            blocked=blocked,
            aborted=aborted,
            peak_cores=self.workers,
            artifact_stats=artifact_stats,
            steals=steals,
            timeouts=timeouts,
            infra_retries=infra_retries,
            quarantined_workers=quarantined,
        )

    # -- helpers -------------------------------------------------------------
    def _run_one(self, pool, activity, actid, tup, key, context, t0):
        """Run a single (REDUCE) activation through the bookkeeping pool.

        Submitting instead of calling inline keeps the coordinator
        thread free for bookkeeping and gives the activation the same
        watchdog/retry treatment as every other one.
        """
        future = pool.submit(
            self._run_with_retry, activity, actid, tup, key, context, t0
        )
        return future.result()

    def _call_with_watchdog(self, call, deadline: float, key: str):
        """Threads backend: run ``call(token)`` under a wall-clock deadline.

        The activation runs on a dedicated daemon thread while this
        bookkeeping thread does a timed wait. At the deadline the
        cooperative token is cancelled and the activation gets
        ``watchdog.grace`` seconds to notice; threads cannot be killed,
        so a non-cooperative activation is then *abandoned* — its
        provenance says ABORTED and the run moves on, but the thread
        itself survives until its code returns (document long hangs to
        chaos tests; the daemon flag keeps them from pinning exit).
        """
        token = CancellationToken()
        done = threading.Event()
        box: dict = {}

        def runner() -> None:
            if self._cancel_handle is not None:
                self._cancel_handle.bind(token)
            try:
                box["result"] = call(token)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name=f"activation-{key}", daemon=True
        )
        thread.start()
        finished = done.wait(deadline)
        if not finished:
            token.cancel()
            cooperative = done.wait(self.watchdog.grace)
            detail = (
                "cancelled cooperatively"
                if cooperative
                else "non-cooperative activation abandoned"
            )
            raise WatchdogTimeout(deadline, detail)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute_activation(
        self,
        activity: Activity,
        tup: dict,
        key: str,
        tries: int,
        context: dict,
        deadline: float,
    ) -> list[dict]:
        """Run one activation on the configured backend, under a deadline.

        Threads backend: run the activity on a watchdog-supervised
        thread (cooperative cancellation; see ``_call_with_watchdog``).
        Processes backend: route ``(fn, operator, tag, tuple, sanitized
        context)`` through the affinity router — sticky by
        ``receptor_id`` so each receptor's activations revisit the
        worker holding its artifacts — with a timed wait on the result;
        a deadline miss SIGKILLs the worker (``router.abort``) and the
        router heals the slot. Raises :class:`WatchdogTimeout` either
        way, so the retry/provenance flow above is backend-agnostic.
        """
        injector = self._fault_injector
        if self._router is None:

            def call(token: CancellationToken) -> list[dict]:
                if injector is not None:
                    return run_activation_with_faults(
                        injector, key, tries, activity.fn, activity.operator,
                        activity.tag, tup, context,
                    )
                return activity.run(tup, context)

            return self._call_with_watchdog(call, deadline, key)
        affinity = tup.get("receptor_id") if isinstance(tup, dict) else None
        affinity_key = str(affinity) if affinity is not None else None
        if injector is not None:
            future = self._router.submit(
                affinity_key, run_activation_with_faults,
                injector, key, tries, activity.fn, activity.operator,
                activity.tag, tup, self._shipped_context,
            )
        else:
            future = self._router.submit(
                affinity_key, run_activation,
                activity.fn, activity.operator, activity.tag, tup,
                self._shipped_context,
            )
        try:
            return future.result(timeout=deadline)
        except FuturesTimeout:
            outcome = self._router.abort(future)
            if outcome == "finished":
                # Completed in the race window between the timed wait
                # expiring and the abort landing; the deadline was still
                # missed, so it is a timeout either way.
                pass
            raise WatchdogTimeout(deadline, f"worker {outcome}") from None

    def _run_with_retry(
        self,
        activity: Activity,
        actid: int,
        tup: dict,
        key: str,
        context: dict,
        t0: float,
    ) -> tuple[list[dict], _AttemptOutcome]:
        """Execute one activation with watchdog, retries and backoff.

        Three failure classes, three budgets:

        * **Activation failures** (the callable raised): retried up to
          ``retry.max_attempts`` with exponential backoff, each attempt
          recorded as a FAILED activation.
        * **Infrastructure failures** (worker death, router errors):
          retried up to ``retry.max_infra_retries`` *without* consuming
          the activation's attempt budget — the input wasn't at fault.
        * **Watchdog timeouts**: terminal. A hung activation is aborted
          at its wall-clock deadline (worker killed on the processes
          backend, thread cancelled/abandoned on threads) and recorded
          ABORTED with the real abort timestamp; retrying a looping
          input would loop again.
        """
        attempt = 0
        infra_failures = 0
        tries = 0  # total dispatches; fault injection re-rolls per try
        outcome = _AttemptOutcome()
        while True:
            start = time.perf_counter() - t0
            tid = self.store.begin_activation(
                actid, key, start, workdir=context.get("workdir", ""), attempt=attempt
            )
            deadline = self.watchdog.deadline(activity.cost(tup))
            try:
                raw = self._execute_activation(
                    activity, tup, key, tries, context, deadline
                )
            except WatchdogTimeout as exc:
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.ABORTED, 137,
                    f"watchdog timeout after {now - start:.3f}s "
                    f"(deadline {deadline:.3f}s; {exc.detail})",
                )
                outcome.timed_out = True
                return [], outcome
            except _INFRA_ERRORS as exc:
                now = time.perf_counter() - t0
                self.store.end_activation(
                    tid, now, ActivationStatus.FAILED, 137,
                    f"infrastructure failure: {type(exc).__name__}: {exc}",
                )
                infra_failures += 1
                tries += 1
                if infra_failures > self.retry.max_infra_retries:
                    return [], outcome
                outcome.infra_retries += 1
                time.sleep(self.retry.delay(infra_failures - 1, key))
                continue
            except Exception as exc:  # noqa: BLE001 - activation errors are data
                self.store.end_activation(
                    tid,
                    time.perf_counter() - t0,
                    ActivationStatus.FAILED,
                    1,
                    f"{type(exc).__name__}: {exc}",
                )
                if self.retry.should_retry(attempt):
                    time.sleep(self.retry.delay(attempt, key))
                    attempt += 1
                    tries += 1
                    outcome.retried += 1
                    continue
                return [], outcome
            outs = []
            for out in raw:
                clean, files, payload = _strip_reserved(dict(out))
                for fname, fsize, fdir in files:
                    self.store.record_file(tid, fname, int(fsize), fdir)
                if payload is not None and activity.extractors:
                    self.store.record_extracts(
                        tid, run_extractors(activity.extractors, payload)
                    )
                outs.append(clean)
            self.store.end_activation(tid, time.perf_counter() - t0)
            return outs, outcome


@dataclass
class _SimJob:
    """One activation inside the simulated engine."""

    activity_index: int
    tup: dict
    key: str
    attempt: int = 0
    ready_at: float = 0.0


class SimulatedEngine:
    """Discrete-event execution over a simulated virtual cluster.

    Service time of an activation = ``activity.cost(tuple) / core.speed``.
    Activation callables, when present, are executed *zero-cost* to
    propagate routing/filter decisions (they must be lightweight in
    simulation workflows). Failure injection, watchdog aborts, retries,
    scheduler overhead and (optional) elasticity are all modeled.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        cluster: VirtualCluster,
        scheduler: Scheduler | None = None,
        retry: RetryPolicy | None = None,
        watchdog: Watchdog | None = None,
        failure_model: ActivityFailureModel | None = None,
        elasticity=None,
        *,
        block_known_loopers: bool = True,
        core_limit: int | None = None,
        data_model=None,
    ) -> None:
        self.store = store
        self.cluster = cluster
        self.scheduler = scheduler or GreedyCostScheduler()
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.failure_model = failure_model or ActivityFailureModel(rate=0.0)
        self.elasticity = elasticity
        self.block_known_loopers = block_known_loopers
        #: Optional (activity_tag, tuple) -> bytes model: accumulates the
        #: shared-FS data volume the run would produce (the paper's
        #: "600 GB for each workflow execution").
        self.data_model = data_model
        # The paper's 2-core baseline uses half an m3.xlarge; core_limit
        # caps how many of the cluster's cores the engine may occupy.
        if core_limit is not None and core_limit < 1:
            raise EngineError("core_limit must be >= 1")
        self.core_limit = core_limit

    def _release_idle_vms(
        self, target_cores: int, busy_cores: set[tuple[str, int]]
    ) -> None:
        """Terminate idle VMs (newest first) down toward ``target_cores``."""
        busy_vms = {vm_id for vm_id, _ in busy_cores}
        for vm in sorted(
            self.cluster.active_vms, key=lambda v: v.launch_time, reverse=True
        ):
            if self.cluster.total_cores - vm.cores < target_cores:
                break
            if vm.vm_id in busy_vms:
                continue
            self.cluster.provider.terminate(vm.vm_id)

    # -- core loop ----------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        relation: Relation,
        context: dict | None = None,
    ) -> ExecutionReport:
        context = dict(context or {})
        clock = self.cluster.provider.clock
        start_time = clock.now
        wkfid = self.store.begin_workflow(
            workflow.tag, workflow.description, workflow.exectag,
            workflow.expdir, starttime=start_time,
        )
        actids = {
            a.tag: self.store.register_activity(
                wkfid, a.tag, a.description, "", "", a.operator.value
            )
            for a in workflow.activities
        }
        context["wkfid"] = wkfid

        now = start_time
        seq = itertools.count()
        arrivals = itertools.count()
        #: Dispatchable jobs, keyed by scheduler priority (max-heap).
        ready_heap: list[tuple[float, int, _SimJob]] = []
        #: Jobs waiting on a retry delay, keyed by eligibility time.
        waiting: list[tuple[float, int, _SimJob]] = []
        #: (finish_time, seq, job, core, outcome) — outcome in
        #: {"ok", "fail", "loop"}.
        running: list[tuple[float, int, _SimJob, CoreHandle, str]] = []
        busy_cores: set[tuple[str, int]] = set()
        retired_counts = {"retried": 0, "blocked": 0, "aborted": 0, "total": 0}
        bytes_written = 0.0
        final = Relation(f"{workflow.tag}:output")
        peak_cores = self.cluster.total_cores
        reduce_pending: dict[int, int] = {}
        reduce_buffer: dict[int, list[dict]] = {}
        # Track in-flight work per activity index for REDUCE barriers.
        inflight: dict[int, int] = {i: 0 for i in range(len(workflow.activities))}

        def priority_of(job: _SimJob) -> float:
            activity = workflow.activities[job.activity_index]
            return self.scheduler.job_priority(
                PendingActivation(
                    key=job.key,
                    expected_cost=activity.cost(job.tup),
                    arrival=next(arrivals),
                )
            )

        def enqueue(job: _SimJob, when: float) -> None:
            if job.ready_at > when:
                heapq.heappush(waiting, (job.ready_at, next(seq), job))
            else:
                heapq.heappush(ready_heap, (-priority_of(job), next(seq), job))

        steering = context.get("steering")

        def emit(index: int, tup: dict, key: str, when: float) -> None:
            """Queue an activation of activity ``index`` for ``tup``."""
            retired_counts["total"] += 1
            activity = workflow.activities[index]
            if steering is not None and steering.should_abort(activity.tag, key):
                self.store.record_blocked(
                    actids[activity.tag], key, when, "aborted by user steering"
                )
                retired_counts["blocked"] += 1
                return
            if activity.would_loop(tup) and self.block_known_loopers:
                self.store.record_blocked(
                    actids[activity.tag], key, when, "known looping input (Hg routine)"
                )
                retired_counts["blocked"] += 1
                return
            inflight[index] += 1
            enqueue(_SimJob(index, tup, key, ready_at=when), when)

        def downstream(index: int, outputs: list[dict], when: float) -> None:
            """Feed an activation's outputs to the next activity."""
            nxt = index + 1
            if nxt >= len(workflow.activities):
                for out in outputs:
                    final.append(out)
                return
            nxt_activity = workflow.activities[nxt]
            if nxt_activity.operator is Operator.REDUCE:
                reduce_buffer.setdefault(nxt, []).extend(outputs)
                return
            for k, out in enumerate(outputs):
                emit(nxt, out, tuple_key(out, retired_counts["total"] + k), when)

        def maybe_release_reduce(when: float) -> None:
            """Fire REDUCE activations whose upstream fully drained."""
            for idx, activity in enumerate(workflow.activities):
                if activity.operator is not Operator.REDUCE:
                    continue
                if idx in reduce_pending:
                    continue  # already fired
                upstream_busy = any(inflight.get(i, 0) for i in range(idx))
                if idx == 0 or not upstream_busy:
                    reduce_pending[idx] = 1
                    tuples = reduce_buffer.get(idx, [])
                    emit(idx, {"__tuples__": tuples}, f"reduce-{activity.tag}", when)

        # Seed stage 0.
        for i, tup in enumerate(relation):
            emit(0, dict(tup), tuple_key(tup, i), now)

        while ready_heap or waiting or running:
            # Promote retry-delayed jobs that became eligible.
            while waiting and waiting[0][0] <= now:
                _, _, job = heapq.heappop(waiting)
                heapq.heappush(ready_heap, (-priority_of(job), next(seq), job))

            # Elasticity: consult the policy before each scheduling round.
            if self.elasticity is not None:
                if ready_heap:
                    mean_cost = sum(
                        workflow.activities[j.activity_index].cost(j.tup)
                        for _, _, j in ready_heap
                    ) / len(ready_heap)
                else:
                    mean_cost = 0.0
                cap = self.cluster.total_cores
                if self.core_limit is not None:
                    cap = min(cap, self.core_limit)
                utilization = len(busy_cores) / cap if cap else 0.0
                target = self.elasticity.target_cores(
                    len(ready_heap), len(running), mean_cost,
                    utilization=utilization,
                )
                if target > self.cluster.total_cores:
                    clock.advance_to(max(clock.now, now))
                    self.cluster.scale_to(target)
                elif target < self.cluster.total_cores:
                    # Release only *idle* VMs (no busy core), newest first
                    # — the paper's scale-down as the tail drains.
                    clock.advance_to(max(clock.now, now))
                    self._release_idle_vms(target, busy_cores)
            # Make provider boot events catch up to engine time.
            clock.run(until=max(clock.now, now))
            peak_cores = max(peak_cores, self.cluster.total_cores)

            usable = self.cluster.cores()
            if self.core_limit is not None:
                usable = usable[: self.core_limit]
            free = [
                h
                for h in usable
                if (h.vm_id, h.core_index) not in busy_cores
                and self.cluster.provider.describe(h.vm_id).state == VMState.RUNNING
            ]
            if free and ready_heap:
                free.sort(key=self.scheduler.core_priority, reverse=True)
                n_round = min(len(free), len(ready_heap))
                effective_cores = self.cluster.total_cores
                if self.core_limit is not None:
                    effective_cores = min(effective_cores, self.core_limit)
                overhead = self.scheduler.overhead_seconds(
                    len(ready_heap), effective_cores
                )
                start = now + overhead
                for core in free[:n_round]:
                    _, _, job = heapq.heappop(ready_heap)
                    activity = workflow.activities[job.activity_index]
                    cost = activity.cost(job.tup)
                    loops = activity.would_loop(job.tup)
                    fails = self.failure_model.fails(
                        f"{activity.tag}:{job.key}", job.attempt
                    )
                    if loops:
                        service = self.watchdog.deadline(cost)
                        outcome = "loop"
                    else:
                        service = cost / core.speed
                        outcome = "fail" if fails else "ok"
                    job.tid = self.store.begin_activation(  # type: ignore[attr-defined]
                        actids[activity.tag],
                        job.key,
                        start,
                        vm_id=core.vm_id,
                        core_index=core.core_index,
                        attempt=job.attempt,
                    )
                    busy_cores.add((core.vm_id, core.core_index))
                    heapq.heappush(
                        running, (start + service, next(seq), job, core, outcome)
                    )
                continue

            if not running:
                if ready_heap:
                    # Cores exist but are still booting: advance to next boot.
                    if self.cluster.provider.clock.pending:
                        self.cluster.provider.clock.step()
                        now = max(now, self.cluster.provider.clock.now)
                        continue
                    raise EngineError(
                        "deadlock: ready activations but no cores available"
                    )
                if waiting:
                    # Jobs waiting on retry delay: jump to the earliest.
                    now = waiting[0][0]
                    maybe_release_reduce(now)
                    continue
                maybe_release_reduce(now)
                if not (ready_heap or waiting or running):
                    break
                continue

            finish, _, job, core, outcome = heapq.heappop(running)
            now = max(now, finish)
            busy_cores.discard((core.vm_id, core.core_index))
            activity = workflow.activities[job.activity_index]
            inflight[job.activity_index] -= 1
            if outcome == "loop":
                self.store.end_activation(
                    job.tid, finish, ActivationStatus.ABORTED, 137,
                    "looping state killed by watchdog",
                )
                retired_counts["aborted"] += 1
            elif outcome == "fail":
                self.store.end_activation(
                    job.tid, finish, ActivationStatus.FAILED, 1, "injected failure"
                )
                if self.retry.should_retry(job.attempt):
                    retired_counts["retried"] += 1
                    inflight[job.activity_index] += 1
                    retry_job = _SimJob(
                        job.activity_index,
                        job.tup,
                        job.key,
                        attempt=job.attempt + 1,
                        ready_at=finish + self.retry.delay(job.attempt, job.key),
                    )
                    enqueue(retry_job, now)
            else:
                self.store.end_activation(job.tid, finish)
                if self.data_model is not None:
                    bytes_written += self.data_model(activity.tag, job.tup)
                if activity.fn is not None:
                    raw = activity.run(job.tup, context)
                else:
                    raw = [dict(job.tup)]
                outputs = []
                for out in raw:
                    clean, files, payload = _strip_reserved(dict(out))
                    for fname, fsize, fdir in files:
                        self.store.record_file(job.tid, fname, int(fsize), fdir)
                    if payload is not None and activity.extractors:
                        self.store.record_extracts(
                            job.tid, run_extractors(activity.extractors, payload)
                        )
                    outputs.append(clean)
                downstream(job.activity_index, outputs, now)
            maybe_release_reduce(now)

        tet = now - start_time
        self.store.end_workflow(wkfid, now)
        return ExecutionReport(
            wkfid=wkfid,
            workflow_tag=workflow.tag,
            tet_seconds=tet,
            output=final,
            counts=self.store.counts_by_status(wkfid),
            total_activations=retired_counts["total"],
            retried=retired_counts["retried"],
            blocked=retired_counts["blocked"],
            aborted=retired_counts["aborted"],
            timeouts=retired_counts["aborted"],
            cost_usd=self.cluster.cost(),
            peak_cores=peak_cores,
            bytes_written=bytes_written,
        )
