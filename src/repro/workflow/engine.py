"""Execution engines: real (thread pool) and simulated (discrete event).

Both engines run the same :class:`~repro.workflow.activity.Workflow`
against an input :class:`~repro.workflow.relation.Relation` through the
shared dataflow dispatch core (:mod:`repro.workflow.dataflow`): an
event-driven ready queue over the activation DAG, where every
MAP/FILTER/SPLIT_MAP output tuple immediately spawns its downstream
activation and barriers exist only at REDUCE (or at every stage with
``pipeline=False``, the historical activity-by-activity mode). Both
record full PROV-Wf provenance — including activation-dependency edges
for lineage queries — re-execute failed activations, and handle
looping-state activations (dispatch-time blocking when the Hg routine
is enabled, watchdog aborts otherwise).

* :class:`LocalEngine` actually executes the activation callables on a
  pluggable executor backend — used for the biology-side results
  (Table 3) and the provenance queries (Figs 10-12). The per-activation
  watchdog/retry machinery lives in :mod:`repro.workflow.dispatch`.
* :class:`SimulatedEngine` replaces execution with a calibrated service
  -time model and schedules activations onto simulated VM cores through
  a pluggable :class:`~repro.workflow.scheduler.Scheduler` — used for
  the 2..128-core sweeps (Figs 5-9), which would take CPU-days to run
  for real.

Scheduling vs placement: a :class:`~repro.workflow.scheduler.Scheduler`
orders *dispatch* (which ready activation runs next) in both engines;
receptor-affinity routing (:mod:`repro.workflow.affinity`) remains the
*placement* layer beneath it, deciding which worker process a dispatched
activation lands on.

Activation functions may attach two reserved fields to their output
tuples: ``_files`` (list of ``(fname, fsize, fdir)`` records) and
``_extract_payload`` (a string fed to the activity's extractors). The
engine strips both before the tuple continues downstream.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import time
import uuid
from dataclasses import dataclass, field

from repro.cloud.cluster import CoreHandle, VirtualCluster
from repro.cloud.failures import ActivityFailureModel
from repro.cloud.provider import VMState
from repro.provenance.store import ActivationStatus, ProvenanceStore
from repro.workflow.activity import Operator, Workflow
from repro.workflow.affinity import AffinityRouter
from repro.workflow.artifacts import (
    ArtifactPlane,
    DiskMapCache,
    release_cached,
)
from repro.workflow.coordinator import Coordinator
from repro.workflow.dataflow import DataflowState, ReadyQueue, WorkItem
from repro.workflow.dispatch import (
    AttemptRunner,
    PARENT_ONLY_CONTEXT_KEYS,
    strip_reserved,
)
from repro.workflow.distributed import Director, DirectorPlane
from repro.workflow.extractor import run_extractors
from repro.workflow.fault import (
    CancelTokenHandle,
    FaultInjector,
    HeartbeatPolicy,
    RetryPolicy,
    Watchdog,
)
from repro.workflow.journal import JournalReplay, RunJournal, replay_journal
from repro.workflow.planes import LocalExecutionPlane
from repro.workflow.relation import Relation
from repro.workflow.scheduler import GreedyCostScheduler, Scheduler


class EngineError(RuntimeError):
    """Raised for unrecoverable engine conditions."""


@dataclass
class ExecutionReport:
    """Summary of one workflow run."""

    wkfid: int
    workflow_tag: str
    tet_seconds: float
    output: Relation
    counts: dict[str, int] = field(default_factory=dict)
    total_activations: int = 0
    retried: int = 0
    blocked: int = 0
    aborted: int = 0
    cost_usd: float = 0.0
    #: Peak concurrency actually observed: the maximum number of
    #: simultaneously in-flight activations (LocalEngine) or the peak
    #: usable core count after elasticity and ``core_limit`` clamping
    #: (SimulatedEngine) — not the configured worker count.
    peak_cores: int = 0
    bytes_written: float = 0.0
    #: Artifact-plane accounting for the run (builds / shm hits / disk
    #: hits / builds-per-artifact), empty when no plane was active.
    artifact_stats: dict = field(default_factory=dict)
    #: Activations the affinity router handed to a non-home worker.
    steals: int = 0
    #: Activations aborted by the wall-clock watchdog (real timeouts;
    #: a subset of ``aborted``, which also counts predicate-blocked
    #: looping kills).
    timeouts: int = 0
    #: Re-dispatches caused by infrastructure failures (worker death,
    #: router errors) — these never consume an activation's attempt
    #: budget, unlike ``retried``.
    infra_retries: int = 0
    #: Worker slots the router quarantined after repeated deaths.
    quarantined_workers: int = 0
    #: Duplicate attempts launched by straggler speculation.
    speculative_launched: int = 0
    #: Speculative duplicates that finished first and won their race.
    speculative_won: int = 0
    #: Live worker-pool resizes the elasticity policy applied mid-run.
    pool_resizes: int = 0
    #: Activations satisfied from an ancestor run's journal by
    #: :meth:`LocalEngine.resume` — completed durably before the crash,
    #: so the resumed run never re-executed them.
    replayed: int = 0
    #: Attempt durations fed into the online cost service this run.
    cost_samples: int = 0
    #: Energy-kernel mode the run executed with ("analytic"|"tables").
    kernel_mode: str = "analytic"
    #: Wall time spent building energy lookup tables in this process
    #: (parent only for the processes backend; workers build their own
    #: copies from the same shared registry design).
    etable_build_s: float = 0.0
    #: Distributed-plane accounting (zero/empty on local backends):
    #: worker nodes that joined / were declared dead during the run,
    #: completed tuples per node id, and total framed bytes the director
    #: put on / took off the wire (headers included).
    nodes_joined: int = 0
    nodes_lost: int = 0
    tuples_per_node: dict = field(default_factory=dict)
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    #: Frame-compression accounting: bytes the negotiated zlib layer
    #: kept off the wire, and raw/wire ratio (1.0 = compression off or
    #: nothing compressible).
    wire_bytes_saved: int = 0
    compression_ratio: float = 1.0
    #: Task-batching accounting: TASK_BATCH frames shipped (>= 2
    #: members) and mean tasks per task-carrying frame (0.0 = no
    #: distributed dispatch happened).
    batches_sent: int = 0
    avg_batch_fill: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.counts.get("FAILED", 0) == 0


#: Executor backends LocalEngine can run activations on.
BACKENDS = ("threads", "processes", "distributed")


class LocalEngine:
    """Real execution on a pluggable executor backend.

    The run loop is an event-driven dataflow coordinator: work items pop
    off a scheduler-ordered :class:`~repro.workflow.dataflow.ReadyQueue`
    and are submitted to bookkeeping threads the moment a worker slot is
    free; each completion immediately spawns the tuple's downstream
    activation (no cohort barrier except at REDUCE). ``pipeline=False``
    restores the historical activity-by-activity barriers for A/B runs.
    Steering aborts and looping-predicate checks happen at *dispatch*
    time, so a rule installed mid-run stops tuples that were already
    enumerated but not yet dispatched.

    ``backend="threads"`` (default) runs activation callables on a
    thread pool — fine for activations that release the GIL or are
    I/O-bound, and required when the run context carries non-picklable
    state (an in-memory shared FS, a steering controller).

    ``backend="distributed"`` executes activations on remote worker
    nodes (``scidock worker --join HOST:PORT``) behind a
    :class:`~repro.workflow.distributed.Director` speaking the framed
    TCP protocol in :mod:`repro.workflow.messaging`. The director binds
    at engine construction (``engine.director_address``), implements the
    affinity-router duck-type so the attempt lifecycle is unchanged, and
    generalizes receptor-sticky placement to node granularity — each
    node builds its shared-memory map plane once and fetches missing
    receptor bundles from the director's content-addressed artifact
    exchange. Dead or silent nodes (heartbeat loss) surface their
    in-flight activations as infrastructure failures, re-placed on the
    survivors; ``engine.shutdown()`` releases the node pool.

    ``backend="processes"`` executes activations in spawn-context worker
    processes, sidestepping the GIL for CPU-bound activations (the
    docking hot path). Bookkeeping threads still drive provenance —
    begin/end activation, file and extractor records all happen in the
    parent, so the provenance store never crosses a process boundary.
    Activation callables and their tuples/context must be picklable; the
    engine ships a sanitized context (parent-only entries stripped) plus
    a per-run ``cache_token`` that workers use to build and reuse
    receptor/ligand artifacts once per process.

    The processes backend routes activations through an
    :class:`~repro.workflow.affinity.AffinityRouter` — sticky-by-receptor
    placement with work stealing — and (unless ``shared_maps`` is
    disabled in the context) publishes receptor grid maps into a shared
    :class:`~repro.workflow.artifacts.ArtifactPlane` so each receptor's
    maps are built once per run, not once per worker. The engine owns
    plane lifecycle: segments are unlinked and worker-side run caches
    dropped when the run ends, even after a worker crash.

    Fault tolerance is *enforced*, not simulated (see
    :class:`~repro.workflow.dispatch.AttemptRunner`): every activation
    runs under a wall-clock :class:`~repro.workflow.fault.Watchdog`
    deadline (hung workers are SIGKILLed and their pool healed; hung
    threads are cancelled cooperatively or abandoned), failed
    activations retry with exponential backoff, infrastructure failures
    retry on a separate budget, and chronically dying worker slots are
    quarantined. A ``fault_injector`` context entry
    (:class:`~repro.workflow.fault.FaultInjector`) forces these paths
    deterministically for chaos tests.

    With a ``cost_service``
    (:class:`~repro.perf.online_cost.OnlineCostService`), the engine
    becomes self-calibrating: ready-queue ordering uses learned
    per-activity/per-size-class service-time estimates instead of the
    static cost table, every successful attempt's duration is observed
    back into the service, and — when the service's speculation
    quantile is below 1.0 — an attempt running past the learned tail
    quantile gets a duplicate launched on an idle slot
    (first-completion-wins, loser cancelled and recorded ABORTED with
    the speculation errormsg, duplicate rows flagged
    ``speculative=True`` in provenance). An ``elasticity`` policy
    additionally grows/shrinks the live worker pool mid-run: the
    dispatch cap moves on the threads backend, and router slots are
    added/retired (the quarantine drain path) on processes.
    """

    #: Completion-wait granularity while watching for stragglers.
    _speculation_poll = 0.05

    def __init__(
        self,
        store: ProvenanceStore,
        workers: int = 4,
        retry: RetryPolicy | None = None,
        watchdog: Watchdog | None = None,
        *,
        backend: str = "threads",
        block_known_loopers: bool = True,
        scheduler: Scheduler | None = None,
        pipeline: bool = True,
        cost_service=None,
        elasticity=None,
        director: tuple[str, int] | None = None,
        min_nodes: int = 1,
        join_timeout: float = 60.0,
        heartbeat: HeartbeatPolicy | None = None,
        batch_size: int = 1,
        batch_linger: float = 0.005,
        compress_frames: bool = False,
    ) -> None:
        if workers < 1:
            raise EngineError("need at least one worker")
        if backend not in BACKENDS:
            raise EngineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.store = store
        self.workers = workers
        self.backend = backend
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.block_known_loopers = block_known_loopers
        #: Dispatch-order policy; ``None`` = FIFO arrival order.
        self.scheduler = scheduler
        #: Per-tuple pipelining (barriers only at REDUCE) vs historical
        #: full per-activity barriers.
        self.pipeline = pipeline
        #: Online service-time estimator (placement + speculation).
        self.cost_service = cost_service
        #: Live pool-resizing policy (None = fixed worker count).
        self.elasticity = elasticity
        self._router: AffinityRouter | None = None
        self._shipped_context: dict | None = None
        #: Per-worker results of the end-of-run cache-cleanup broadcast
        #: (True where a worker dropped a run-state entry); for tests.
        self.last_cache_cleanup: list = []
        #: Worker nodes a distributed run must see before dispatching.
        self.min_nodes = min_nodes
        self.join_timeout = join_timeout
        self._director: Director | None = None
        if backend == "distributed":
            # Bind immediately so workers can join before run() starts.
            self._director = Director(
                director or ("127.0.0.1", 0),
                min_nodes=min_nodes,
                join_timeout=join_timeout,
                heartbeat=heartbeat,
                batch_size=batch_size,
                batch_linger=batch_linger,
                compress=compress_frames,
            )

    @property
    def director_address(self) -> tuple[str, int] | None:
        """Where workers join (``None`` outside the distributed backend)."""
        return self._director.address if self._director is not None else None

    def shutdown(self) -> None:
        """Release the distributed node pool (no-op on local backends)."""
        if self._director is not None:
            self._director.shutdown()
            self._director = None

    def run(
        self,
        workflow: Workflow,
        relation: Relation,
        context: dict | None = None,
        *,
        _replay: JournalReplay | None = None,
        _resumed_from: int | None = None,
    ) -> ExecutionReport:
        context = dict(context or {})
        t0 = time.perf_counter()
        wkfid = self.store.begin_workflow(
            workflow.tag,
            workflow.description,
            workflow.exectag,
            workflow.expdir,
            starttime=0.0,
        )
        actids = {
            a.tag: self.store.register_activity(
                wkfid,
                a.tag,
                a.description,
                a.template.templatedir if a.template else "",
                a.template.command if a.template else "",
                a.operator.value,
            )
            for a in workflow.activities
        }
        context["wkfid"] = wkfid
        # Run journal: every coordinator state transition below appends
        # an event; terminal events flush synchronously so a SIGKILL'd
        # coordinator resumes from here with zero recomputation of
        # FINISHED tuples (see repro.workflow.journal). The run-started
        # header snapshots the picklable context before engine-internal
        # entries are popped, so a resume re-runs under the same
        # kernel/etable/fault-injection configuration.
        journal = RunJournal(
            self.store, wkfid, clock=lambda: time.perf_counter() - t0
        )
        journal.run_started(
            workflow.tag,
            pipeline=self.pipeline,
            context=context,
            relation_size=len(relation),
            resumed_from=_resumed_from,
        )

        final = Relation(f"{workflow.tag}:output")

        # Fault injection: chaos tests force crashes/hangs/failures via
        # this context entry; it ships to workers so faults fire where
        # real ones would. Never visible to activations.
        fault_injector: FaultInjector | None = context.pop(
            "fault_injector", None
        )
        # Cooperative cancellation for the threads backend: one handle
        # per run in the *shared* context (activations setdefault caches
        # there, so no per-activation copies); each activation-runner
        # thread binds its private token into the handle.
        cancel_handle = CancelTokenHandle()
        context["cancel_token"] = cancel_handle

        # Artifact-plane policy: ``shared_maps`` tristate (None = auto,
        # on for the processes backend where workers cannot see each
        # other's in-process caches); ``map_cache`` names a persistent
        # content-addressed map directory shared across runs.
        shared_maps = context.pop("shared_maps", None)
        map_cache = context.pop("map_cache", None)
        # Kernel provenance: note the mode and, in tables mode, how much
        # wall time this run spends building lookup rows. The kernel/
        # etable_* keys stay in the context — workers read them.
        kernel_mode = str(context.get("kernel", "analytic"))
        etable_t0 = 0.0
        if kernel_mode == "tables":
            from repro.docking.etables import build_seconds

            etable_t0 = build_seconds()
        use_plane = (
            shared_maps if shared_maps is not None else self.backend == "processes"
        )
        plane: ArtifactPlane | None = None
        artifact_stats: dict = {}
        if use_plane:
            plane = ArtifactPlane.create(map_cache_dir=map_cache)
            context["artifact_plane"] = plane.handle
        elif map_cache:
            context["map_cache_dir"] = map_cache

        shipped: dict | None = None
        if self.backend in ("processes", "distributed"):
            shipped = {
                k: v
                for k, v in context.items()
                if k not in PARENT_ONLY_CONTEXT_KEYS
            }
            # Workers key their build-once artifact caches on this token,
            # so one engine run never reuses another run's receptors/maps
            # (grid spacing or preparation settings may differ).
            shipped["cache_token"] = uuid.uuid4().hex
            # Lets injected crashes know there is a real process to kill.
            shipped["worker_process"] = True
            self._shipped_context = shipped

        if self.backend == "processes":
            # Spawn (not fork): the parent runs bookkeeping threads and an
            # open SQLite handle, neither of which survives a fork safely.
            self._router = AffinityRouter(
                self.workers,
                multiprocessing.get_context("spawn"),
                quarantine_after=self.retry.quarantine_after,
            )
        elif self.backend == "distributed":
            # The director serves the artifact exchange out of the
            # persistent map cache when one is configured.
            if map_cache and self._director.cache is None:
                self._director.cache = DiskMapCache(map_cache)
            self._director.start_run(shipped, journal=journal)
            self._director.wait_for_nodes(self.min_nodes, self.join_timeout)

        runner = AttemptRunner(
            self.store,
            self.retry,
            self.watchdog,
            router=self._director
            if self.backend == "distributed"
            else self._router,
            shipped_context=self._shipped_context,
            fault_injector=fault_injector,
            cancel_handle=cancel_handle,
            journal=journal,
        )
        state = DataflowState(
            workflow,
            pipeline=self.pipeline,
            store=self.store,
            wkfid=wkfid,
            actids=actids,
            journal=journal,
        )
        service = self.cost_service

        def expected_cost(item: WorkItem) -> float:
            """Learned service-time estimate, static table as fallback."""
            activity = workflow.activities[item.stage]
            if service is not None:
                est = service.expected_seconds(activity.tag, item.tup)
                if est is not None:
                    return est
            return activity.cost(item.tup)

        ready = ReadyQueue(self.scheduler, cost_fn=expected_cost)
        #: Dispatch cap the elasticity policy moves; the plane's thread
        #: pool is sized to the ceiling so a grow needs no new pool.
        hard_max = self.workers
        if self.elasticity is not None:
            hard_max = max(
                hard_max, int(getattr(self.elasticity, "max_cores", 0))
            )
        if self.backend == "distributed":
            exec_plane = DirectorPlane(runner, context, t0, self._director)
            hard_max = exec_plane.hard_max
        else:
            exec_plane = LocalExecutionPlane(
                runner,
                context,
                t0,
                self.workers,
                hard_max,
                router=self._router,
                cache_token=(shipped or {}).get("cache_token"),
                scratch_dir=(
                    plane.handle.scratch_dir if plane is not None else None
                ),
            )
        coordinator = Coordinator(
            workflow,
            state,
            ready,
            exec_plane,
            store=self.store,
            journal=journal,
            actids=actids,
            watchdog=self.watchdog,
            t0=t0,
            steering=context.get("steering"),
            cost_service=service,
            elasticity=self.elasticity,
            block_known_loopers=self.block_known_loopers,
            replay=_replay,
        )
        plane_stats: dict = {}
        try:
            totals = coordinator.run(relation, hard_max=hard_max)
        finally:
            # The plane quiesces its bookkeeping threads, reports its
            # statistics (router steals/quarantine + the end-of-run
            # cache-cleanup broadcast locally; per-node NODE_STATS
            # collection on the distributed plane) and tears down its
            # transport (the director itself outlives the run).
            try:
                plane_stats = exec_plane.finish()
            finally:
                exec_plane.shutdown()
                self.last_cache_cleanup = getattr(
                    exec_plane, "last_cache_cleanup", []
                )
                self._router = None
                self._shipped_context = None
                if plane is not None:
                    context.pop("artifact_plane", None)
                    # The parent itself attaches in threads mode (or when
                    # a REDUCE ran inline); drop that before unlinking.
                    release_cached(plane.handle.scratch_dir)
                    artifact_stats = plane.destroy()
                context.pop("cancel_token", None)
        steals = int(plane_stats.get("steals", 0))
        quarantined = int(plane_stats.get("quarantined_workers", 0))
        nodes_joined = nodes_lost = 0
        tuples_per_node: dict = {}
        wire_sent = wire_received = 0
        wire_saved = batches_sent = 0
        compression_ratio = 1.0
        avg_batch_fill = 0.0
        run_stats = None
        if self.backend == "distributed":
            nodes_joined = int(plane_stats.get("nodes_joined", 0))
            nodes_lost = int(plane_stats.get("nodes_lost", 0))
            quarantined = nodes_lost
            tuples_per_node = dict(plane_stats.get("tuples_per_node", {}))
            wire_sent = int(plane_stats.get("bytes_sent", 0))
            wire_received = int(plane_stats.get("bytes_received", 0))
            wire_saved = int(plane_stats.get("bytes_saved", 0))
            compression_ratio = float(
                plane_stats.get("compression_ratio", 1.0)
            )
            batches_sent = int(plane_stats.get("batches_sent", 0))
            avg_batch_fill = float(plane_stats.get("avg_batch_fill", 0.0))
            # Aggregate the node-local artifact planes plus the
            # director-side exchange counters into one stats block.
            agg = {
                "builds": 0,
                "shm_hits": 0,
                "disk_hits": 0,
                "requests": 0,
                "exchange_fetches": 0,
                "exchange_bytes": 0,
            }
            for node_report in plane_stats.get("node_stats", {}).values():
                node_plane = node_report.get("plane") or {}
                for field_name in agg:
                    agg[field_name] += int(node_plane.get(field_name, 0) or 0)
            agg["exchange_requests_served"] = int(
                plane_stats.get("artifact_requests", 0)
            )
            agg["exchange_hits_served"] = int(
                plane_stats.get("artifact_hits", 0)
            )
            agg["exchange_bytes_served"] = int(
                plane_stats.get("artifact_bytes", 0)
            )
            artifact_stats = agg
            run_stats = {
                "nodes_joined": nodes_joined,
                "nodes_lost": nodes_lost,
                "tuples_per_node": tuples_per_node,
                "bytes_sent": wire_sent,
                "bytes_received": wire_received,
                "bytes_saved": wire_saved,
                "compression_ratio": compression_ratio,
                "batches_sent": batches_sent,
                "avg_batch_fill": avg_batch_fill,
            }
        for tup in state.final:
            final.append(tup)
        tet = time.perf_counter() - t0
        journal.run_finished(ts=tet, stats=run_stats)
        self.store.end_workflow(wkfid, tet)
        etable_build = 0.0
        if kernel_mode == "tables":
            from repro.docking.etables import build_seconds

            etable_build = build_seconds() - etable_t0
        return ExecutionReport(
            wkfid=wkfid,
            workflow_tag=workflow.tag,
            tet_seconds=tet,
            output=final,
            counts=self.store.counts_by_status(wkfid),
            total_activations=state.spawned,
            retried=totals.retried,
            blocked=totals.blocked,
            aborted=totals.aborted,
            peak_cores=totals.peak_inflight,
            artifact_stats=artifact_stats,
            steals=steals,
            timeouts=totals.timeouts,
            infra_retries=totals.infra_retries,
            quarantined_workers=quarantined,
            speculative_launched=totals.speculative_launched,
            speculative_won=totals.speculative_won,
            pool_resizes=totals.pool_resizes,
            replayed=totals.replayed,
            cost_samples=service.samples if service is not None else 0,
            kernel_mode=kernel_mode,
            etable_build_s=etable_build,
            nodes_joined=nodes_joined,
            nodes_lost=nodes_lost,
            tuples_per_node=tuples_per_node,
            wire_bytes_sent=wire_sent,
            wire_bytes_received=wire_received,
            wire_bytes_saved=wire_saved,
            compression_ratio=compression_ratio,
            batches_sent=batches_sent,
            avg_batch_fill=avg_batch_fill,
        )

    def resume(
        self,
        wkfid: int,
        workflow: Workflow,
        relation: Relation | None = None,
        context: dict | None = None,
    ) -> ExecutionReport:
        """Continue a crashed or incomplete run from its journal.

        Replays run ``wkfid``'s journal, re-seeds the same relation
        (recovered from the journal's stage-0 scheduled events unless
        passed explicitly) under the journaled context (entries in
        ``context`` override), and runs the workflow normally — except
        that any item the ancestor run durably completed is satisfied
        from its logged outputs instead of executing
        (``ExecutionReport.replayed`` counts them). Items that were
        RUNNING, FAILED or timed out at the crash re-execute for real.

        The resumed run gets its own ``wkfid`` and journal (its
        run-started header records ``resumed_from``), so resumes chain:
        a resumed run that crashes can itself be resumed, because every
        replayed completion is re-journaled as a completed event.

        Raises :class:`~repro.workflow.journal.JournalError` for
        pre-journal runs — use
        :func:`repro.workflow.reexec.resume_failed` (the provenance-
        heuristics fallback) for those.
        """
        replay = replay_journal(self.store, wkfid)
        if relation is None:
            relation = replay.seed_relation()
        merged = dict(replay.context)
        merged.update(context or {})
        return self.run(
            workflow, relation, merged, _replay=replay, _resumed_from=wkfid
        )


class SimulatedEngine:
    """Discrete-event execution over a simulated virtual cluster.

    Service time of an activation = ``activity.cost(tuple) / core.speed``.
    Activation callables, when present, are executed *zero-cost* to
    propagate routing/filter decisions (they must be lightweight in
    simulation workflows). Failure injection, watchdog aborts, retries,
    scheduler overhead and (optional) elasticity are all modeled.
    Dataflow — per-tuple pipelining, REDUCE barriers, lineage keys and
    dependency edges — comes from the same
    :class:`~repro.workflow.dataflow.DataflowState` the LocalEngine
    uses, so the simulator no longer re-implements dispatch semantics.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        cluster: VirtualCluster,
        scheduler: Scheduler | None = None,
        retry: RetryPolicy | None = None,
        watchdog: Watchdog | None = None,
        failure_model: ActivityFailureModel | None = None,
        elasticity=None,
        *,
        block_known_loopers: bool = True,
        core_limit: int | None = None,
        data_model=None,
        pipeline: bool = True,
        cost_service=None,
    ) -> None:
        self.store = store
        self.cluster = cluster
        self.scheduler = scheduler or GreedyCostScheduler()
        self.retry = retry or RetryPolicy()
        self.watchdog = watchdog or Watchdog()
        self.failure_model = failure_model or ActivityFailureModel(rate=0.0)
        self.elasticity = elasticity
        self.block_known_loopers = block_known_loopers
        self.pipeline = pipeline
        #: Online estimator: orders the ready queue by learned costs
        #: (service *time* still comes from the calibrated model) and
        #: accumulates observed durations like the real engine does.
        self.cost_service = cost_service
        #: Optional (activity_tag, tuple) -> bytes model: accumulates the
        #: shared-FS data volume the run would produce (the paper's
        #: "600 GB for each workflow execution").
        self.data_model = data_model
        # The paper's 2-core baseline uses half an m3.xlarge; core_limit
        # caps how many of the cluster's cores the engine may occupy.
        if core_limit is not None and core_limit < 1:
            raise EngineError("core_limit must be >= 1")
        self.core_limit = core_limit

    def _release_idle_vms(
        self, target_cores: int, busy_cores: set[tuple[str, int]]
    ) -> None:
        """Terminate idle VMs (newest first) down toward ``target_cores``."""
        busy_vms = {vm_id for vm_id, _ in busy_cores}
        for vm in sorted(
            self.cluster.active_vms, key=lambda v: v.launch_time, reverse=True
        ):
            if self.cluster.total_cores - vm.cores < target_cores:
                break
            if vm.vm_id in busy_vms:
                continue
            self.cluster.provider.terminate(vm.vm_id)

    def _usable_cores(self) -> int:
        cores = self.cluster.total_cores
        if self.core_limit is not None:
            cores = min(cores, self.core_limit)
        return cores

    # -- core loop ----------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        relation: Relation,
        context: dict | None = None,
    ) -> ExecutionReport:
        context = dict(context or {})
        clock = self.cluster.provider.clock
        start_time = clock.now
        wkfid = self.store.begin_workflow(
            workflow.tag, workflow.description, workflow.exectag,
            workflow.expdir, starttime=start_time,
        )
        actids = {
            a.tag: self.store.register_activity(
                wkfid, a.tag, a.description, "", "", a.operator.value
            )
            for a in workflow.activities
        }
        context["wkfid"] = wkfid

        now = start_time
        seq = itertools.count()
        # Same journal the real engine writes (simulated timestamps are
        # passed explicitly where the loop knows them); a simulated run
        # is replayable/resumable exactly like a real one.
        journal = RunJournal(self.store, wkfid)
        journal.run_started(
            workflow.tag,
            pipeline=self.pipeline,
            context=context,
            relation_size=len(relation),
        )
        state = DataflowState(
            workflow,
            pipeline=self.pipeline,
            store=self.store,
            wkfid=wkfid,
            actids=actids,
            journal=journal,
        )
        #: Dispatchable work, ordered by scheduler priority.
        ready = ReadyQueue(self.scheduler)
        #: Items waiting on a retry delay, keyed by eligibility time.
        waiting: list[tuple[float, int, WorkItem]] = []
        #: (finish_time, seq, item, core, outcome) — outcome in
        #: {"ok", "fail", "loop"}.
        running: list[tuple[float, int, WorkItem, CoreHandle, str]] = []
        busy_cores: set[tuple[str, int]] = set()
        retired_counts = {"retried": 0, "blocked": 0, "aborted": 0}
        bytes_written = 0.0
        final = Relation(f"{workflow.tag}:output")
        peak_cores = self._usable_cores()
        steering = context.get("steering")

        def cost_of(item: WorkItem) -> float:
            return workflow.activities[item.stage].cost(item.tup)

        def queue_cost(item: WorkItem) -> float:
            """Learned estimate for ordering; static cost as fallback."""
            if self.cost_service is not None:
                est = self.cost_service.expected_seconds(
                    workflow.activities[item.stage].tag, item.tup
                )
                if est is not None:
                    return est
            return cost_of(item)

        ready.cost_fn = queue_cost

        def enqueue(items, when: float) -> None:
            for item in items:
                if item.ready_at > when:
                    heapq.heappush(waiting, (item.ready_at, next(seq), item))
                else:
                    ready.push(item)

        enqueue(state.seed(relation), now)

        while ready or waiting or running:
            # Promote retry-delayed items that became eligible.
            while waiting and waiting[0][0] <= now:
                _, _, item = heapq.heappop(waiting)
                ready.push(item)

            # Elasticity: consult the policy before each scheduling round.
            if self.elasticity is not None:
                if ready:
                    mean_cost = sum(cost_of(j) for j in ready.items()) / len(
                        ready
                    )
                else:
                    mean_cost = 0.0
                cap = self._usable_cores()
                utilization = len(busy_cores) / cap if cap else 0.0
                target = self.elasticity.target_cores(
                    len(ready), len(running), mean_cost,
                    utilization=utilization,
                )
                if target > self.cluster.total_cores:
                    clock.advance_to(max(clock.now, now))
                    self.cluster.scale_to(target)
                elif target < self.cluster.total_cores:
                    # Release only *idle* VMs (no busy core), newest first
                    # — the paper's scale-down as the tail drains.
                    clock.advance_to(max(clock.now, now))
                    self._release_idle_vms(target, busy_cores)
            # Make provider boot events catch up to engine time.
            clock.run(until=max(clock.now, now))
            peak_cores = max(peak_cores, self._usable_cores())

            usable = self.cluster.cores()
            if self.core_limit is not None:
                usable = usable[: self.core_limit]
            free = [
                h
                for h in usable
                if (h.vm_id, h.core_index) not in busy_cores
                and self.cluster.provider.describe(h.vm_id).state == VMState.RUNNING
            ]
            if free and ready:
                free.sort(key=self.scheduler.core_priority, reverse=True)
                overhead = self.scheduler.overhead_seconds(
                    len(ready), self._usable_cores()
                )
                start = now + overhead
                core_idx = 0
                while core_idx < len(free) and ready:
                    item = ready.pop()
                    activity = workflow.activities[item.stage]
                    actid = actids[activity.tag]
                    # Dispatch-time checks: a steering rule installed
                    # mid-run stops queued-but-undispatched tuples too.
                    if activity.operator is not Operator.REDUCE:
                        if steering is not None and steering.should_abort(
                            activity.tag, item.key
                        ):
                            self.store.record_blocked(
                                actid, item.key, now, "aborted by user steering"
                            )
                            journal.steered(item.stage, item.key, "abort")
                            journal.blocked(
                                item.stage, item.key,
                                "aborted by user steering", ts=now,
                            )
                            retired_counts["blocked"] += 1
                            enqueue(state.retire(item), now)
                            continue
                        if (
                            activity.would_loop(item.tup)
                            and self.block_known_loopers
                        ):
                            self.store.record_blocked(
                                actid, item.key, now,
                                "known looping input (Hg routine)",
                            )
                            journal.blocked(
                                item.stage, item.key,
                                "known looping input (Hg routine)", ts=now,
                            )
                            retired_counts["blocked"] += 1
                            enqueue(state.retire(item), now)
                            continue
                    core = free[core_idx]
                    core_idx += 1
                    cost = activity.cost(item.tup)
                    loops = activity.would_loop(item.tup)
                    fails = self.failure_model.fails(
                        f"{activity.tag}:{item.key}", item.attempt
                    )
                    if loops:
                        service = self.watchdog.deadline(cost)
                        outcome = "loop"
                    else:
                        service = cost / core.speed
                        outcome = "fail" if fails else "ok"
                    journal.dispatched(item.stage, item.key)
                    journal.attempt_started(
                        item.key, activity.tag, item.attempt, ts=start
                    )
                    item.tid = self.store.begin_activation(
                        actid,
                        item.key,
                        start,
                        vm_id=core.vm_id,
                        core_index=core.core_index,
                        attempt=item.attempt,
                    )
                    busy_cores.add((core.vm_id, core.core_index))
                    heapq.heappush(
                        running, (start + service, next(seq), item, core, outcome)
                    )
                continue

            if not running:
                if ready:
                    # Cores exist but are still booting: advance to next boot.
                    if self.cluster.provider.clock.pending:
                        self.cluster.provider.clock.step()
                        now = max(now, self.cluster.provider.clock.now)
                        continue
                    raise EngineError(
                        "deadlock: ready activations but no cores available"
                    )
                if waiting:
                    # Items waiting on retry delay: jump to the earliest.
                    now = waiting[0][0]
                continue

            finish, _, item, core, outcome = heapq.heappop(running)
            now = max(now, finish)
            busy_cores.discard((core.vm_id, core.core_index))
            activity = workflow.activities[item.stage]
            if outcome == "loop":
                self.store.end_activation(
                    item.tid, finish, ActivationStatus.ABORTED, 137,
                    "looping state killed by watchdog",
                )
                journal.aborted(
                    item.stage, item.key,
                    "looping state killed by watchdog", ts=finish,
                )
                retired_counts["aborted"] += 1
                enqueue(state.retire(item), now)
            elif outcome == "fail":
                self.store.end_activation(
                    item.tid, finish, ActivationStatus.FAILED, 1,
                    "injected failure",
                )
                if self.retry.should_retry(item.attempt):
                    retired_counts["retried"] += 1
                    # The item stays in flight (no dataflow transition):
                    # only its attempt counter and eligibility change.
                    item.attempt += 1
                    item.ready_at = finish + self.retry.delay(
                        item.attempt - 1, item.key
                    )
                    enqueue([item], now)
                else:
                    journal.failed(
                        item.stage, item.key, "attempts exhausted", ts=finish
                    )
                    enqueue(state.retire(item), now)
            else:
                self.store.end_activation(item.tid, finish)
                if self.cost_service is not None:
                    self.cost_service.observe(
                        activity.tag, item.tup, cost_of(item) / core.speed
                    )
                if self.data_model is not None:
                    bytes_written += self.data_model(activity.tag, item.tup)
                if activity.fn is not None:
                    raw = activity.run(item.tup, context)
                else:
                    raw = [dict(item.tup)]
                outputs = []
                for out in raw:
                    clean, files, payload = strip_reserved(dict(out))
                    for fname, fsize, fdir in files:
                        self.store.record_file(item.tid, fname, int(fsize), fdir)
                    if payload is not None and activity.extractors:
                        self.store.record_extracts(
                            item.tid, run_extractors(activity.extractors, payload)
                        )
                    outputs.append(clean)
                enqueue(state.complete(item, outputs), now)

        for tup in state.final:
            final.append(tup)
        tet = now - start_time
        journal.run_finished(ts=now)
        self.store.end_workflow(wkfid, now)
        return ExecutionReport(
            wkfid=wkfid,
            workflow_tag=workflow.tag,
            tet_seconds=tet,
            output=final,
            counts=self.store.counts_by_status(wkfid),
            total_activations=state.spawned,
            retried=retired_counts["retried"],
            blocked=retired_counts["blocked"],
            aborted=retired_counts["aborted"],
            timeouts=retired_counts["aborted"],
            cost_usd=self.cluster.cost(),
            peak_cores=peak_cores,
            bytes_written=bytes_written,
            cost_samples=(
                self.cost_service.samples
                if self.cost_service is not None
                else 0
            ),
        )
