"""Adaptive elasticity: SciCumulus' cloud-native scaling policy.

The engine periodically asks the policy for a core target given the
current backlog and activity profile; the simulated engine feeds the
target to :meth:`VirtualCluster.scale_to`, while the real
:class:`~repro.workflow.engine.LocalEngine` applies it to its actual
worker pool — raising/lowering its dispatch cap on the threads backend
and growing/retiring router slots (the quarantine drain path) on the
processes backend. The paper calls this *adaptive execution*: acquire
VMs while compute-heavy activities (Vina/AD4 docking) dominate the
queue, release them as the tail drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StaticPolicy:
    """No elasticity: hold the configured core count (ablation baseline)."""

    cores: int

    def target_cores(
        self,
        n_ready: int,
        n_running: int,
        mean_cost: float,
        utilization: float | None = None,
    ) -> int:
        return self.cores


@dataclass
class AdaptiveElasticityPolicy:
    """Queue-pressure policy bounded by [min_cores, max_cores].

    Target = enough cores to drain the current backlog within
    ``drain_horizon`` seconds, assuming the observed mean activation
    cost; clamped to bounds and quantized up to whole instances by the
    cluster's mix planner. Scale-down is gated by hysteresis: the
    policy only shrinks below its previous target while cluster
    utilization sits below ``scale_down_threshold`` — a busy cluster
    with a momentarily short queue holds its cores (hourly billing
    makes eager release wasteful, and re-acquiring a VM pays the boot
    latency again).
    """

    min_cores: int = 2
    max_cores: int = 128
    drain_horizon: float = 3600.0
    scale_down_threshold: float = 0.5
    #: Last target handed out — the hysteresis reference point.
    _last_target: int | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_cores < 1 or self.max_cores < self.min_cores:
            raise ValueError("need 1 <= min_cores <= max_cores")
        if self.drain_horizon <= 0:
            raise ValueError("drain_horizon must be positive")
        if not 0.0 <= self.scale_down_threshold <= 1.0:
            raise ValueError("scale_down_threshold must be in [0, 1]")

    def target_cores(
        self,
        n_ready: int,
        n_running: int,
        mean_cost: float,
        utilization: float | None = None,
    ) -> int:
        demand_seconds = max(0.0, mean_cost) * (n_ready + n_running)
        needed = int(demand_seconds / self.drain_horizon) + 1
        current_demand = n_ready + n_running
        if current_demand == 0:
            desired = self.min_cores
        else:
            desired = max(needed, min(current_demand, self.max_cores))
            desired = max(self.min_cores, min(self.max_cores, desired))
        if (
            self._last_target is not None
            and desired < self._last_target
            and utilization is not None
            and utilization >= self.scale_down_threshold
        ):
            # Hysteresis: the queue shrank but the cores are still busy.
            # Hold the previous target until utilization actually drops.
            desired = self._last_target
        self._last_target = desired
        return desired

    def reset(self) -> None:
        """Forget the hysteresis reference (fresh run, same policy)."""
        self._last_target = None
