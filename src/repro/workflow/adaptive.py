"""Adaptive elasticity: SciCumulus' cloud-native scaling policy.

The engine periodically asks the policy for a core target given the
current backlog and activity profile; the policy drives
:meth:`VirtualCluster.scale_to`. The paper calls this *adaptive
execution*: acquire VMs while compute-heavy activities (Vina/AD4
docking) dominate the queue, release them as the tail drains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StaticPolicy:
    """No elasticity: hold the configured core count (ablation baseline)."""

    cores: int

    def target_cores(self, n_ready: int, n_running: int, mean_cost: float) -> int:
        return self.cores


@dataclass
class AdaptiveElasticityPolicy:
    """Queue-pressure policy bounded by [min_cores, max_cores].

    Target = enough cores to drain the current backlog within
    ``drain_horizon`` seconds, assuming the observed mean activation
    cost; clamped to bounds and quantized up to whole instances by the
    cluster's mix planner. Scale-down happens only when utilization
    drops below ``scale_down_threshold`` to avoid thrash (hourly billing
    makes eager release wasteful).
    """

    min_cores: int = 2
    max_cores: int = 128
    drain_horizon: float = 3600.0
    scale_down_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.min_cores < 1 or self.max_cores < self.min_cores:
            raise ValueError("need 1 <= min_cores <= max_cores")
        if self.drain_horizon <= 0:
            raise ValueError("drain_horizon must be positive")

    def target_cores(self, n_ready: int, n_running: int, mean_cost: float) -> int:
        demand_seconds = max(0.0, mean_cost) * (n_ready + n_running)
        needed = int(demand_seconds / self.drain_horizon) + 1
        current_demand = n_ready + n_running
        if current_demand == 0:
            return self.min_cores
        target = max(needed, min(current_demand, self.max_cores))
        return max(self.min_cores, min(self.max_cores, target))
