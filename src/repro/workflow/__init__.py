"""SciCumulus-like cloud Scientific Workflow Management System.

Implements the engine features the paper leans on:

* the algebraic data-centric model (relations in, relations out, one
  *activation* per tuple) — :mod:`repro.workflow.relation`,
  :mod:`repro.workflow.algebra`;
* XML workflow specification with instrumented command templates and
  extractor components — :mod:`repro.workflow.spec`,
  :mod:`repro.workflow.template`, :mod:`repro.workflow.extractor`;
* a greedy weighted-cost-model scheduler over heterogeneous VM cores —
  :mod:`repro.workflow.scheduler`;
* adaptive elasticity (scale the virtual cluster with the load) —
  :mod:`repro.workflow.adaptive`;
* fault tolerance: failed-activation re-execution and the looping-state
  watchdog — :mod:`repro.workflow.fault`;
* an event-sourced run journal for crash-resumable coordinators —
  :mod:`repro.workflow.journal` — every state transition appended to
  provenance with a flush barrier at terminal events, replayed by
  ``LocalEngine.resume`` with zero recomputation of finished tuples;
* two execution engines — a real thread-pool engine and a discrete-event
  simulated engine for the 2..128-core sweeps —
  :mod:`repro.workflow.engine` — both built on the shared dataflow
  dispatch core (:mod:`repro.workflow.dataflow`,
  :mod:`repro.workflow.dispatch`): an event-driven ready queue over the
  activation DAG with lineage-stable tuple keys and barriers only at
  REDUCE.
"""

from repro.workflow.relation import Relation
from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.algebra import apply_operator
from repro.workflow.template import ActivityTemplate, TemplateError
from repro.workflow.extractor import Extractor, RegexExtractor, JsonExtractor
from repro.workflow.spec import parse_workflow_xml, workflow_to_xml
from repro.workflow.scheduler import (
    GreedyCostScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.workflow.adaptive import AdaptiveElasticityPolicy, StaticPolicy
from repro.workflow.fault import (
    ActivationCancelled,
    CancellationToken,
    FaultInjector,
    InjectedFailure,
    InjectedWorkerCrash,
    RetryPolicy,
    Watchdog,
    WatchdogTimeout,
)
from repro.workflow.dataflow import (
    DataflowState,
    ReadyQueue,
    WorkItem,
    lineage_key,
)
from repro.workflow.dispatch import (
    AttemptAbortHandle,
    AttemptOutcome,
    AttemptRunner,
    AttemptSuperseded,
    SPECULATION_ERRMSG_PREFIX,
)
from repro.workflow.engine import (
    EngineError,
    ExecutionReport,
    LocalEngine,
    SimulatedEngine,
)
from repro.workflow.journal import (
    JournalError,
    JournalEventType,
    JournalReplay,
    RunJournal,
    has_journal,
    recover_context,
    replay_journal,
)

__all__ = [
    "Relation",
    "Activity",
    "Operator",
    "Workflow",
    "apply_operator",
    "ActivityTemplate",
    "TemplateError",
    "Extractor",
    "RegexExtractor",
    "JsonExtractor",
    "parse_workflow_xml",
    "workflow_to_xml",
    "Scheduler",
    "GreedyCostScheduler",
    "RoundRobinScheduler",
    "AdaptiveElasticityPolicy",
    "StaticPolicy",
    "RetryPolicy",
    "Watchdog",
    "WatchdogTimeout",
    "CancellationToken",
    "ActivationCancelled",
    "FaultInjector",
    "InjectedFailure",
    "InjectedWorkerCrash",
    "DataflowState",
    "ReadyQueue",
    "WorkItem",
    "lineage_key",
    "AttemptRunner",
    "AttemptOutcome",
    "AttemptAbortHandle",
    "AttemptSuperseded",
    "SPECULATION_ERRMSG_PREFIX",
    "LocalEngine",
    "SimulatedEngine",
    "EngineError",
    "ExecutionReport",
    "RunJournal",
    "JournalEventType",
    "JournalReplay",
    "JournalError",
    "replay_journal",
    "recover_context",
    "has_journal",
]
