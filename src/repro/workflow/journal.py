"""Event-sourced run journal: crash-resumable coordinator state.

The provenance tables record *what happened* per activation; they do not
record what the coordinator had decided. Kill an engine process between
batch flushes and ``analyze_run`` must reverse-engineer the run frontier
from activation rows that are partially flushed and never marked
terminal. This module closes that gap the way durable workflow engines
(Temporal-style event sourcing; the prospective-vs-retrospective split
of the provenance literature) do: every coordinator state transition is
appended to an ``hjournal`` event log with a per-run monotonic sequence
number, and the log alone is enough to rebuild the run.

Event taxonomy (one row each, ``seq`` strictly monotonic per run):

=================  ==========================================================
``run-started``    run header: workflow tag, pipeline mode, relation size,
                   a picklable snapshot of the run context, and — for
                   resumed runs — the ``resumed_from`` ancestor wkfid
``scheduled``      a :class:`~repro.workflow.dataflow.WorkItem` became
                   ready (payload: its input tuple + parent key)
``dispatched``     the coordinator handed the item to a worker
``attempt-start``  one activation attempt began (payload: attempt number,
                   speculative flag)
``completed``      the item retired successfully (payload: its output
                   tuples) — **flush barrier**
``failed``         the item retired with a terminal failure — **barrier**
``aborted``        watchdog timeout / predicate or looper abort /
                   speculation loss — **barrier**
``blocked``        retired pre-dispatch (steering rule, Hg-style
                   predicate) — **barrier**
``replayed``       a resumed run satisfied the item from an ancestor's
                   journal instead of executing it
``resized``        the elastic pool changed size (payload: target)
``steered``        a runtime steering decision fired
``run-finished``   the coordinator loop drained — **barrier**
=================  ==========================================================

Flush-barrier semantics: terminal events ride the store's batched write
path but force a synchronous flush+commit (sharing the terminal-status
flush of ``end_activation``), so the instant the coordinator *acts* on a
completion the fact is durable. A SIGKILL can lose RUNNING noise, never
a completed tuple.

Replay: :func:`replay_journal` folds the log into a
:class:`JournalReplay` — completed outputs by ``(stage, key)``, terminal
states, the stage-0 seed relation, the recovered run context — and
:meth:`LocalEngine.resume <repro.workflow.engine.LocalEngine.resume>`
re-runs the workflow against it: because lineage keys are deterministic
functions of (parent key, activity tag, output ordinal), re-seeding the
same relation regenerates the same item keys, and every key the journal
marks ``completed`` is satisfied from the logged outputs with zero
re-execution. Items the crashed run never finished (RUNNING, FAILED,
timed-out) fall through and run for real. Pre-journal runs keep the
``analyze_run`` heuristics in :mod:`repro.workflow.reexec` as fallback.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.provenance.store import ProvenanceStore
from repro.workflow.relation import Relation


class JournalError(RuntimeError):
    """Raised for unreplayable or corrupt journals."""


class JournalEventType(str, Enum):
    RUN_STARTED = "run-started"
    SCHEDULED = "scheduled"
    DISPATCHED = "dispatched"
    ATTEMPT_STARTED = "attempt-start"
    COMPLETED = "completed"
    FAILED = "failed"
    ABORTED = "aborted"
    BLOCKED = "blocked"
    REPLAYED = "replayed"
    RESIZED = "resized"
    STEERED = "steered"
    #: Distributed plane only: a worker node joined the director
    #: (payload: rank, slots) or was declared lost (heartbeat loss /
    #: connection EOF; payload: reason, in-flight keys re-placed).
    NODE_JOINED = "node-joined"
    NODE_LOST = "node-lost"
    RUN_FINISHED = "run-finished"


#: Events written through the synchronous flush barrier: once recorded,
#: a crash cannot lose them. Everything else may ride the write buffer.
BARRIER_EVENTS = frozenset({
    JournalEventType.COMPLETED,
    JournalEventType.FAILED,
    JournalEventType.ABORTED,
    JournalEventType.BLOCKED,
    JournalEventType.RUN_FINISHED,
})

#: Terminal per-item events: an item with one of these never re-enters
#: the frontier of the run that logged it.
TERMINAL_EVENTS = frozenset({
    JournalEventType.COMPLETED.value,
    JournalEventType.FAILED.value,
    JournalEventType.ABORTED.value,
    JournalEventType.BLOCKED.value,
})

#: Context keys never journaled: live runtime objects owned by the
#: coordinator process (thread locks, queues, open stores) that a
#: resumed run must rebuild, not unpickle.
UNJOURNALED_CONTEXT_KEYS = frozenset({
    "caches", "fs", "steering", "cancel_token",
    "wkfid", "artifact_plane", "cache_token", "worker_process",
})


def encode_payload(obj: object) -> bytes | None:
    """Pickle a payload; ``None`` when it can't be (degrades to re-run)."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def decode_payload(blob: bytes | None) -> object | None:
    if blob is None:
        return None
    try:
        return pickle.loads(blob)
    except Exception:
        return None


def journal_safe_context(context: dict | None) -> dict:
    """The picklable, re-shippable subset of a run context."""
    safe: dict = {}
    for k, v in (context or {}).items():
        if k in UNJOURNALED_CONTEXT_KEYS:
            continue
        if encode_payload(v) is None:
            continue
        safe[k] = v
    return safe


class RunJournal:
    """Append-only event writer for one run (thread-safe sequencing).

    One instance per ``wkfid``; the engines thread it through
    :class:`~repro.workflow.dataflow.DataflowState` (schedule/complete
    events) and :class:`~repro.workflow.dispatch.AttemptRunner`
    (attempt-start events). ``clock`` supplies event timestamps relative
    to the run start; the simulated engine passes explicit ``ts``
    instead.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        wkfid: int,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.store = store
        self.wkfid = wkfid
        self.clock = clock
        self._seq = itertools.count()

    def record(
        self,
        event: JournalEventType,
        *,
        stage: int = -1,
        key: str = "",
        payload: object = None,
        ts: float | None = None,
        barrier: bool | None = None,
    ) -> None:
        if ts is None:
            ts = self.clock() if self.clock is not None else 0.0
        if barrier is None:
            barrier = event in BARRIER_EVENTS
        self.store.record_journal_event(
            self.wkfid,
            next(self._seq),
            event.value,
            stage,
            key,
            ts,
            encode_payload(payload) if payload is not None else None,
            barrier=barrier,
        )

    # -- event emitters (thin, named for grep-ability) -----------------------
    def run_started(
        self,
        workflow_tag: str,
        *,
        pipeline: bool,
        context: dict | None,
        relation_size: int,
        resumed_from: int | None = None,
    ) -> None:
        self.record(
            JournalEventType.RUN_STARTED,
            payload={
                "workflow": workflow_tag,
                "pipeline": pipeline,
                "context": journal_safe_context(context),
                "relation_size": relation_size,
                "resumed_from": resumed_from,
            },
            barrier=True,
        )

    def scheduled(self, stage: int, key: str, tup: dict,
                  parent_key: str | None) -> None:
        self.record(
            JournalEventType.SCHEDULED,
            stage=stage,
            key=key,
            payload={"tup": tup, "parent_key": parent_key},
        )

    def dispatched(self, stage: int, key: str, node: str | None = None) -> None:
        """The coordinator handed the item to a worker.

        ``node`` records the placement decision on the distributed plane
        (the sticky home node's id), so a post-crash audit can see where
        every in-flight item was when the director died.
        """
        self.record(
            JournalEventType.DISPATCHED,
            stage=stage,
            key=key,
            payload={"node": node} if node is not None else None,
        )

    def attempt_started(
        self, key: str, tag: str, attempt: int, *, speculative: bool = False,
        ts: float | None = None,
    ) -> None:
        self.record(
            JournalEventType.ATTEMPT_STARTED,
            key=key,
            payload={"tag": tag, "attempt": attempt, "speculative": speculative},
            ts=ts,
        )

    def completed(self, stage: int, key: str, outputs: list[dict],
                  ts: float | None = None) -> None:
        self.record(
            JournalEventType.COMPLETED,
            stage=stage,
            key=key,
            payload={"outputs": outputs},
            ts=ts,
        )

    def failed(self, stage: int, key: str, reason: str = "",
               ts: float | None = None) -> None:
        self.record(JournalEventType.FAILED, stage=stage, key=key,
                    payload={"reason": reason}, ts=ts)

    def aborted(self, stage: int, key: str, reason: str = "",
                ts: float | None = None) -> None:
        self.record(JournalEventType.ABORTED, stage=stage, key=key,
                    payload={"reason": reason}, ts=ts)

    def blocked(self, stage: int, key: str, reason: str = "",
                ts: float | None = None) -> None:
        self.record(JournalEventType.BLOCKED, stage=stage, key=key,
                    payload={"reason": reason}, ts=ts)

    def replayed(self, stage: int, key: str) -> None:
        self.record(JournalEventType.REPLAYED, stage=stage, key=key)

    def steered(self, stage: int, key: str, action: str) -> None:
        self.record(JournalEventType.STEERED, stage=stage, key=key,
                    payload={"action": action})

    def resized(self, target: int, active: int) -> None:
        self.record(JournalEventType.RESIZED,
                    payload={"target": target, "was": active})

    def node_joined(self, node_id: str, rank: int, slots: int) -> None:
        self.record(
            JournalEventType.NODE_JOINED,
            key=node_id,
            payload={"rank": rank, "slots": slots},
            barrier=True,
        )

    def node_lost(self, node_id: str, reason: str, inflight: int) -> None:
        self.record(
            JournalEventType.NODE_LOST,
            key=node_id,
            payload={"reason": reason, "inflight": inflight},
            barrier=True,
        )

    def run_finished(self, ts: float | None = None,
                     stats: dict | None = None) -> None:
        self.record(JournalEventType.RUN_FINISHED, ts=ts, payload=stats)


@dataclass
class JournalReplay:
    """Folded view of one run's journal, ready to drive a resume."""

    wkfid: int
    workflow_tag: str = ""
    pipeline: bool = True
    context: dict = field(default_factory=dict)
    resumed_from: int | None = None
    #: ``(stage, key) -> input tuple`` for every scheduled item (input
    #: tuple is ``None`` when the payload didn't survive pickling).
    scheduled: dict = field(default_factory=dict)
    #: ``(stage, key) -> list of output tuples`` for durably completed
    #: items — the zero-recomputation cache.
    completed: dict = field(default_factory=dict)
    #: ``(stage, key) -> terminal event name`` (completed/failed/...).
    terminal: dict = field(default_factory=dict)
    #: Stage-0 keys in schedule order (reconstructs the seed relation).
    seed_keys: list = field(default_factory=list)
    events: int = 0
    max_seq: int = -1
    finished: bool = False

    def outputs_for(self, stage: int, key: str) -> list | None:
        """Cached outputs if this (stage, key) completed durably."""
        return self.completed.get((stage, key))

    def frontier(self) -> list:
        """Scheduled-but-not-terminal items: ``(stage, key, tup)``.

        The ready-queue frontier the crashed coordinator owed work to.
        (Tuples parked behind an unfired barrier are not listed — their
        parents' ``completed`` events regenerate them on resume.)
        """
        return [
            (stage, key, tup)
            for (stage, key), tup in self.scheduled.items()
            if (stage, key) not in self.terminal
        ]

    def seed_relation(self, name: str | None = None) -> Relation:
        """Rebuild the input relation from stage-0 scheduled events."""
        tuples = []
        for key in self.seed_keys:
            tup = self.scheduled.get((0, key))
            if tup is None:
                raise JournalError(
                    f"run {self.wkfid}: seed tuple {key!r} was not "
                    "journaled replayably; pass the relation explicitly"
                )
            tuples.append(tup)
        if not tuples:
            raise JournalError(
                f"run {self.wkfid}: no seed tuples journaled; "
                "pass the relation explicitly"
            )
        return Relation(name or f"resume-{self.wkfid}", tuples)


def has_journal(store: ProvenanceStore, wkfid: int) -> bool:
    """Whether ``wkfid`` was recorded with a run journal."""
    rows = store.sql(
        "SELECT COUNT(*) AS n FROM hjournal WHERE wkfid = ?", (wkfid,)
    )
    return bool(rows and rows[0]["n"])


def replay_journal(store: ProvenanceStore, wkfid: int) -> JournalReplay:
    """Fold run ``wkfid``'s journal into a :class:`JournalReplay`.

    Validates that sequence numbers are strictly monotonic (an
    out-of-order or duplicated seq means two coordinators wrote the same
    run, or the log was tampered with — either way replay would be
    unsound). Raises :class:`JournalError` for pre-journal runs.
    """
    rows = store.journal_events(wkfid)
    if not rows:
        raise JournalError(
            f"run {wkfid} has no journal (pre-journal run?); "
            "use the analyze_run/resume_failed heuristics instead"
        )
    replay = JournalReplay(wkfid=wkfid)
    last_seq = -1
    for row in rows:
        seq = int(row["seq"])
        if seq <= last_seq:
            raise JournalError(
                f"run {wkfid}: journal seq not strictly monotonic "
                f"({seq} after {last_seq})"
            )
        last_seq = seq
        event = row["event"]
        stage = int(row["stage"])
        key = row["tuple_key"]
        payload = decode_payload(row["payload"])
        if event == JournalEventType.RUN_STARTED.value:
            if isinstance(payload, dict):
                replay.workflow_tag = payload.get("workflow", "")
                replay.pipeline = bool(payload.get("pipeline", True))
                replay.context = dict(payload.get("context") or {})
                replay.resumed_from = payload.get("resumed_from")
        elif event == JournalEventType.SCHEDULED.value:
            tup = payload.get("tup") if isinstance(payload, dict) else None
            replay.scheduled[(stage, key)] = tup
            if stage == 0:
                replay.seed_keys.append(key)
        elif event == JournalEventType.COMPLETED.value:
            outputs = (
                payload.get("outputs") if isinstance(payload, dict) else None
            )
            replay.terminal[(stage, key)] = event
            if isinstance(outputs, list):
                replay.completed[(stage, key)] = outputs
            # An unpicklable output payload degrades to re-execution:
            # the completion is terminal but not replayable.
        elif event in TERMINAL_EVENTS:
            replay.terminal[(stage, key)] = event
        elif event == JournalEventType.RUN_FINISHED.value:
            replay.finished = True
        replay.events += 1
    replay.max_seq = last_seq
    return replay


def recover_context(store: ProvenanceStore, wkfid: int) -> dict | None:
    """The journaled run context of ``wkfid``, or ``None`` if unjournaled.

    This is what lets a resumed run re-execute under the same kernel /
    energy-table / fault-injection configuration as the run that
    produced the failures, without the caller re-supplying it.
    """
    rows = store.sql(
        "SELECT payload FROM hjournal WHERE wkfid = ? AND event = ?"
        " ORDER BY seq LIMIT 1",
        (wkfid, JournalEventType.RUN_STARTED.value),
    )
    if not rows:
        return None
    payload = decode_payload(rows[0]["payload"])
    if not isinstance(payload, dict):
        return None
    context = payload.get("context")
    return dict(context) if isinstance(context, dict) else None
