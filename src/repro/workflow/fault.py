"""Fault tolerance: re-execution, backoff, and the looping-state watchdog.

Mechanisms from the paper, made real for :class:`LocalEngine`:

* ~10 % of activation executions fail; SciCumulus re-submits *only the
  failed activations* (the provenance repository knows exactly which),
  never the whole workflow. :class:`RetryPolicy` adds exponential
  backoff with deterministic seeded jitter, and distinguishes
  *activation* failures (the activation raised — consumes the attempt
  budget) from *infrastructure* failures (the worker died, the router
  broke — retried on a separate budget).
* Some activations enter a *looping state* — no error, no progress
  (receptors containing Hg). A :class:`Watchdog` deadline bounds every
  real activation: on the processes backend the offending worker is
  killed and replaced; on the threads backend a cooperative
  :class:`CancellationToken` is offered and, failing that, the
  activation thread is abandoned (threads cannot be killed).
* :class:`FaultInjector` wires the cloud failure models
  (:class:`~repro.cloud.failures.ActivityFailureModel`,
  :class:`~repro.cloud.failures.LoopingStateModel`) into the real
  engine so chaos tests can force crashes, hangs and Bernoulli
  failures deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.cloud.failures import ActivityFailureModel, LoopingStateModel, _unit_hash
from repro.workflow.activity import ActivationFn, Operator, run_activation


class WatchdogTimeout(RuntimeError):
    """An activation exceeded its wall-clock deadline and was aborted."""

    def __init__(self, deadline: float, detail: str = "") -> None:
        self.deadline = deadline
        self.detail = detail
        msg = f"activation exceeded its {deadline:.3f}s deadline"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class ActivationCancelled(RuntimeError):
    """Raised inside a cooperative activation once its token is cancelled."""


class InjectedFailure(RuntimeError):
    """A failure forced by the fault-injection harness."""


class InjectedWorkerCrash(RuntimeError):
    """Stand-in for a worker crash on backends with no process to kill.

    On the processes backend an injected crash really is ``os._exit`` in
    the worker; on the threads backend there is no worker process, so
    the injector raises this instead and the engine accounts for it as
    an infrastructure failure.
    """


def crash_activation(tup: dict, context: dict) -> list[dict]:
    """Fault-injection activity: kills its worker process outright.

    ``os._exit`` skips interpreter teardown, so nothing the worker owns
    (shared-memory handles, cache registries) is released — the worst
    crash the engine's cleanup paths must survive. Used by tests; the
    simulated ~10 % failure injection lives in the engines.
    """
    os._exit(17)


class CancellationToken:
    """Cooperative cancellation for thread-backend activations.

    Threads cannot be killed, so the watchdog *asks*: it cancels the
    token at the deadline and gives the activation a short grace period
    to notice. Long-running cooperative activations should call
    :meth:`check` inside loops or replace ``time.sleep`` with
    :meth:`sleep`; both raise :class:`ActivationCancelled` once the
    watchdog fires. Non-cooperative activations are abandoned on a
    daemon thread instead — aborted in provenance, but still burning
    their thread until they return on their own.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`ActivationCancelled` if the watchdog fired."""
        if self._event.is_set():
            raise ActivationCancelled("activation cancelled by watchdog")

    def sleep(self, seconds: float) -> None:
        """Cancellation-aware ``time.sleep`` replacement."""
        if self._event.wait(seconds):
            raise ActivationCancelled("activation cancelled by watchdog")


class _NullToken(CancellationToken):
    """Token handed to activations running outside any watchdog scope."""


class CancelTokenHandle:
    """Per-run context entry resolving to the *current* activation's token.

    The threads backend shares one context dict across concurrent
    activations (artifact caches live there), so the engine cannot put a
    per-activation token under a plain key. Instead it installs one
    handle per run; each activation-runner thread binds its own token
    before invoking the activation, and the handle delegates to the
    binding of whichever thread is asking. Activations just use
    ``context["cancel_token"]`` as if it were their private token.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def bind(self, token: CancellationToken) -> None:
        self._local.token = token

    def _token(self) -> CancellationToken:
        return getattr(self._local, "token", None) or _NullToken()

    @property
    def cancelled(self) -> bool:
        return self._token().cancelled

    def check(self) -> None:
        self._token().check()

    def sleep(self, seconds: float) -> None:
        self._token().sleep(seconds)


@dataclass
class RetryPolicy:
    """How failed activations are re-executed.

    The delay before attempt ``n``'s retry follows a deterministic
    exponential schedule::

        delay(n) = min(max_delay, base_delay * backoff_factor ** n)

    optionally perturbed by seeded jitter (a multiplicative factor in
    ``[1 - jitter, 1 + jitter)`` hashed from ``(seed, key, attempt)``,
    so two runs with the same seed observe identical schedules).
    Infrastructure failures — the worker process died, the router broke
    — retry on their own ``max_infra_retries`` budget without consuming
    the activation's ``max_attempts``; a worker slot that accumulates
    ``quarantine_after`` consecutive infrastructure failures is
    quarantined (graceful degradation) rather than endlessly healed.
    """

    max_attempts: int = 3
    #: Base delay before the first retry (seconds; simulated seconds in
    #: the simulated engine). ``base_delay`` is an alias kept separate
    #: so existing ``retry_delay`` call sites keep meaning "the base".
    retry_delay: float = 1.0
    base_delay: float | None = None
    backoff_factor: float = 2.0
    max_delay: float = 60.0
    #: Jitter fraction in [0, 1): 0 disables, 0.2 perturbs each delay by
    #: up to ±20 %, deterministically from (seed, key, attempt).
    jitter: float = 0.0
    seed: int = 0
    #: Infrastructure-failure budget per activation (worker death,
    #: router errors); separate from ``max_attempts``.
    max_infra_retries: int = 5
    #: Consecutive infrastructure failures before a worker slot is
    #: quarantined instead of healed.
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_delay < 0:
            raise ValueError("retry_delay cannot be negative")
        if self.base_delay is not None and self.base_delay < 0:
            raise ValueError("base_delay cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_infra_retries < 0:
            raise ValueError("max_infra_retries cannot be negative")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")

    def should_retry(self, attempt: int) -> bool:
        """``attempt`` is 0-based; attempt 0 failing leaves max-1 retries."""
        return attempt + 1 < self.max_attempts

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff delay after 0-based ``attempt`` failed, for ``key``."""
        base = self.retry_delay if self.base_delay is None else self.base_delay
        d = min(self.max_delay, base * self.backoff_factor ** max(0, attempt))
        if self.jitter:
            u = _unit_hash("backoff", self.seed, key, attempt)
            d *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return min(self.max_delay, max(0.0, d))

    def schedule(self, attempts: int, key: str = "") -> list[float]:
        """The first ``attempts`` delays — for tests and documentation."""
        return [self.delay(n, key) for n in range(attempts)]


@dataclass
class Watchdog:
    """Kills activations exceeding their wall-clock deadline.

    ``multiplier`` expresses the adaptive variant: an activation is
    declared looping when it exceeds ``multiplier`` x the activity's
    expected cost, bounded below by ``timeout``. ``grace`` is the extra
    window a thread-backend activation gets to observe its cancellation
    token before being abandoned.
    """

    timeout: float = 600.0
    multiplier: float = 10.0
    grace: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.multiplier <= 1:
            raise ValueError("timeout must be positive and multiplier > 1")
        if self.grace < 0:
            raise ValueError("grace cannot be negative")

    def deadline(self, expected_cost: float) -> float:
        """Seconds after which a running activation is killed."""
        return max(self.timeout, self.multiplier * max(0.0, expected_cost))


@dataclass(frozen=True)
class HeartbeatPolicy:
    """Liveness detection for remote worker nodes.

    Workers send a HEARTBEAT frame every ``interval`` seconds; the
    director declares a node dead when nothing (heartbeat, result, or
    work request) has arrived for ``timeout`` seconds — the node-level
    analogue of the per-activation :class:`Watchdog`. A dead node's
    in-flight activations surface as infrastructure failures (retried on
    the infra budget, never consuming activation attempts) and its
    queued work is redistributed to the surviving nodes.
    """

    interval: float = 2.0
    timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.timeout <= self.interval:
            raise ValueError(
                "heartbeat interval must be positive and timeout > interval"
            )


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic chaos: forces the paper's two pathologies for real.

    Handed to :class:`LocalEngine` as the ``fault_injector`` context
    entry; picklable, so the processes backend ships it into workers
    where crashes and hangs actually happen.

    * ``failure_model`` — Bernoulli activation failures per
      ``(key, try)``; retries re-roll, reproducing the paper's ~10 %
      transient failure rate (consumes the attempt budget).
    * ``looping_model`` — activation keys that *hang* without erroring
      (the Hg pathology, minus the predicate): the activation sleeps
      ``hang_seconds`` and only the watchdog stops it.
    * ``crash_keys`` — activations whose first try kills the worker
      process outright (``os._exit``); the infrastructure retry path
      must replace the worker and resubmit.
    * ``crash_rate`` — Bernoulli worker crashes per ``(key, try)``, for
      sustained-crash quarantine tests.

    Deterministic key sets trigger on try 0 only, so a retried
    activation recovers; Bernoulli models re-roll on every try.
    """

    failure_model: ActivityFailureModel | None = None
    looping_model: LoopingStateModel | None = None
    crash_keys: frozenset[str] = frozenset()
    crash_rate: float = 0.0
    seed: int = 0
    hang_seconds: float = 3600.0

    def plan(self, key: str, tries: int) -> str:
        """Fate of try ``tries`` for activation ``key``:
        ``"ok" | "fail" | "crash" | "hang"``."""
        if self.looping_model is not None and self.looping_model.would_loop(key):
            return "hang"
        if key in self.crash_keys and tries == 0:
            return "crash"
        if self.crash_rate and _unit_hash("crash", self.seed, key, tries) < self.crash_rate:
            return "crash"
        if self.failure_model is not None and self.failure_model.fails(key, tries):
            return "fail"
        return "ok"


def apply_fault(injector: FaultInjector, key: str, tries: int, context: dict) -> None:
    """Enact the injector's plan for this try, inside the executing worker."""
    action = injector.plan(key, tries)
    if action == "ok":
        return
    if action == "crash":
        if context.get("worker_process"):
            os._exit(17)  # a real worker death, not an exception
        raise InjectedWorkerCrash(f"injected worker crash for {key} (try {tries})")
    if action == "fail":
        raise InjectedFailure(f"injected failure for {key} (try {tries})")
    # "hang": sleep far past any sane deadline. Thread-backend runs get
    # the cooperative token (so the abandoned thread dies at cancel +
    # hang_seconds at worst); worker processes sleep until killed.
    token = context.get("cancel_token")
    if token is not None:
        token.sleep(injector.hang_seconds)
    else:
        time.sleep(injector.hang_seconds)


def run_activation_with_faults(
    injector: FaultInjector,
    key: str,
    tries: int,
    fn: ActivationFn | None,
    operator: Operator,
    tag: str,
    tup: dict,
    context: dict,
) -> list[dict]:
    """Fault-wrapped twin of :func:`~repro.workflow.activity.run_activation`.

    Module-level so the processes backend can ship it by reference; the
    injected fault fires *inside* the worker, making crashes and hangs
    indistinguishable from the production pathologies they model.
    """
    apply_fault(injector, f"{tag}:{key}", tries, context)
    return run_activation(fn, operator, tag, tup, context)
