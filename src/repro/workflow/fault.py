"""Fault tolerance: re-execution and the looping-state watchdog.

Two mechanisms from the paper:

* ~10 % of activation executions fail; SciCumulus re-submits *only the
  failed activations* (the provenance repository knows exactly which),
  never the whole workflow.
* Some activations enter a *looping state* — no error, no progress
  (receptors containing Hg). A watchdog kills them after a timeout;
  once the Hg routine is enabled, such activations are blocked before
  dispatch instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def crash_activation(tup: dict, context: dict) -> list[dict]:
    """Fault-injection activity: kills its worker process outright.

    ``os._exit`` skips interpreter teardown, so nothing the worker owns
    (shared-memory handles, cache registries) is released — the worst
    crash the engine's cleanup paths must survive. Used by tests; the
    simulated ~10 % failure injection lives in the engines.
    """
    os._exit(17)


@dataclass
class RetryPolicy:
    """How failed activations are re-executed."""

    max_attempts: int = 3
    #: Delay before a retry is eligible (simulated seconds).
    retry_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_delay < 0:
            raise ValueError("retry_delay cannot be negative")

    def should_retry(self, attempt: int) -> bool:
        """``attempt`` is 0-based; attempt 0 failing leaves max-1 retries."""
        return attempt + 1 < self.max_attempts


@dataclass
class Watchdog:
    """Kills looping activations after ``timeout`` service seconds.

    ``multiplier`` expresses the adaptive variant: an activation is
    declared looping when it exceeds ``multiplier`` x the activity's
    expected cost, bounded below by ``timeout``.
    """

    timeout: float = 600.0
    multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.multiplier <= 1:
            raise ValueError("timeout must be positive and multiplier > 1")

    def deadline(self, expected_cost: float) -> float:
        """Seconds after which a running activation is killed."""
        return max(self.timeout, self.multiplier * max(0.0, expected_cost))
