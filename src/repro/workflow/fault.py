"""Fault tolerance: re-execution and the looping-state watchdog.

Two mechanisms from the paper:

* ~10 % of activation executions fail; SciCumulus re-submits *only the
  failed activations* (the provenance repository knows exactly which),
  never the whole workflow.
* Some activations enter a *looping state* — no error, no progress
  (receptors containing Hg). A watchdog kills them after a timeout;
  once the Hg routine is enabled, such activations are blocked before
  dispatch instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """How failed activations are re-executed."""

    max_attempts: int = 3
    #: Delay before a retry is eligible (simulated seconds).
    retry_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_delay < 0:
            raise ValueError("retry_delay cannot be negative")

    def should_retry(self, attempt: int) -> bool:
        """``attempt`` is 0-based; attempt 0 failing leaves max-1 retries."""
        return attempt + 1 < self.max_attempts


@dataclass
class Watchdog:
    """Kills looping activations after ``timeout`` service seconds.

    ``multiplier`` expresses the adaptive variant: an activation is
    declared looping when it exceeds ``multiplier`` x the activity's
    expected cost, bounded below by ``timeout``.
    """

    timeout: float = 600.0
    multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.multiplier <= 1:
            raise ValueError("timeout must be positive and multiplier > 1")

    def deadline(self, expected_cost: float) -> float:
        """Seconds after which a running activation is killed."""
        return max(self.timeout, self.multiplier * max(0.0, expected_cost))
