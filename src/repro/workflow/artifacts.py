"""Cross-process receptor-artifact plane: shared grid maps for all workers.

The screening workload (238 receptors x 42 ligands in the paper) builds
every receptor's AutoGrid/Vina maps once and reuses them across all of
that receptor's ligand pairings. The process backend used to lose that
property: each spawn worker rebuilt receptor maps privately, multiplying
both work and grid memory by the worker count. This module restores it
with three cooperating tiers:

1. **Shared-memory segments** — map bundles are published into
   ``multiprocessing.shared_memory`` blocks, one segment per artifact.
   The first builder wins under a cross-process file lock; every other
   worker attaches a zero-copy read-only numpy view. Segment names are
   recorded in a scratch-directory registry *before* creation, so the
   engine can unlink every segment at run end even if the worker that
   created one crashed mid-publish.
2. **A content-addressed on-disk cache** (:class:`DiskMapCache`) —
   bundles keyed by receptor-content hash + grid parameters + forcefield
   version, so repeated runs skip AutoGrid entirely.
3. **Per-run worker state** (:func:`run_state`) — the per-process
   registry the activities key their build-once caches on, with an
   explicit :func:`drop_run_state` hook the engine broadcasts at run end
   so long-lived worker pools never accumulate dead runs' artifacts.

Artifacts move through the plane as ``(meta, arrays)`` bundles: a small
JSON-safe dict plus named float arrays. The docking modules own the
conversions (``grid_maps_to_arrays`` / ``vina_maps_to_arrays`` and their
inverses); the plane is agnostic to what the arrays mean.

Every event (build, shared-memory hit, disk hit) is appended to a
JSONL log in the scratch directory; the engine aggregates it into
``ExecutionReport.artifact_stats`` so redundant-build regressions are
visible in benchmarks, not just wall-clock.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Iterator

import numpy as np

try:  # POSIX cross-process locks; a thread lock stands in elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Segment offsets are aligned so every array view starts on a cache line.
_ALIGNMENT = 64


class ArtifactPlaneError(RuntimeError):
    """Raised for unusable plane or cache state."""


@dataclass(frozen=True)
class PlaneHandle:
    """Picklable address of a plane: everything a worker needs to attach."""

    scratch_dir: str
    run_id: str
    map_cache_dir: str | None = None
    #: ``(host, port)`` of a director-served artifact exchange: disk-cache
    #: misses try a network fetch before falling back to a local build.
    exchange: tuple | None = None
    #: Ask the exchange for zlib-deflated ARTIFACT_DATA frames (set by
    #: the worker when the director negotiated frame compression).
    compress: bool = False


# -- cross-process locking ---------------------------------------------------

_FALLBACK_LOCKS: dict[str, threading.Lock] = {}
_FALLBACK_GUARD = threading.Lock()


@contextmanager
def _file_lock(path: str) -> Iterator[None]:
    """Exclusive advisory lock on ``path`` (cross-process via flock)."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        with _FALLBACK_GUARD:
            lock = _FALLBACK_LOCKS.setdefault(path, threading.Lock())
        with lock:
            yield
        return
    with open(path, "a+") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Withdraw a segment from this process's resource tracker.

    ``SharedMemory.__init__`` registers the name on *every* init (create
    and attach alike), and the tracker unlinks registered names when the
    process tree winds down. The engine's plane is the sole unlink owner,
    so both creators and attachers must unregister.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:  # pragma: no cover - platform-dependent tracker layout
        pass


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _segment_layout(arrays: dict[str, np.ndarray]) -> tuple[list[dict], int]:
    """Aligned offsets for packing named arrays into one flat buffer."""
    layout: list[dict] = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        layout.append(
            {
                "name": name,
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "offset": offset,
            }
        )
        offset += -(-arr.nbytes // _ALIGNMENT) * _ALIGNMENT
    return layout, max(offset, _ALIGNMENT)


class DiskMapCache:
    """Content-addressed on-disk cache of ``(meta, arrays)`` bundles.

    One ``.npz`` per artifact, written atomically (temp + rename) with
    the meta dict embedded as a JSON string, so concurrent writers from
    any number of processes can never expose a torn entry. Unreadable
    entries are treated as misses and rebuilt.

    With a ``fetch`` callable (``fetch(kind, key) -> bytes | None`` —
    see :func:`repro.workflow.messaging.fetch_artifact`), a local miss
    tries the content-addressed artifact exchange before reporting a
    miss: the fetched bundle bytes are written atomically into this
    cache, so a worker node pays the network cost once per artifact and
    every later lookup is a plain disk hit. Any fetch failure degrades
    to a miss (the caller builds locally).
    """

    def __init__(self, root: str, fetch=None) -> None:
        self.root = root
        self.fetch = fetch
        #: Exchange-fetch accounting (per process; workers report these
        #: back to the director in their NODE_STATS frame).
        self.fetches = 0
        self.fetch_bytes = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, f"{kind}-{key}.npz")

    def _fetch_into_cache(self, kind: str, key: str) -> bool:
        """Pull a bundle off the exchange into the local cache."""
        if self.fetch is None:
            return False
        try:
            blob = self.fetch(kind, key)
        except Exception:  # pragma: no cover - exchange failure is a miss
            blob = None
        if not blob:
            return False
        path = self._path(kind, key)
        tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}.npz"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        self.fetches += 1
        self.fetch_bytes += len(blob)
        return True

    def blob(self, kind: str, key: str) -> bytes | None:
        """Raw bundle bytes for serving over the exchange (None = miss)."""
        try:
            with open(self._path(kind, key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def load(self, kind: str, key: str) -> tuple[dict, dict[str, np.ndarray]] | None:
        path = self._path(kind, key)
        if not os.path.exists(path) and not self._fetch_into_cache(kind, key):
            return None
        try:
            with np.load(path, allow_pickle=False) as bundle:
                meta = json.loads(str(bundle["__meta__"][()]))
                arrays = {n: bundle[n] for n in bundle.files if n != "__meta__"}
        except Exception:  # torn/corrupt entry: a miss, not an error
            return None
        return meta, arrays

    def save(self, kind: str, key: str, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        path = self._path(kind, key)
        tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}.npz"
        np.savez(tmp, __meta__=np.array(json.dumps(meta)), **arrays)
        os.replace(tmp, path)

    def get_or_build(
        self,
        kind: str,
        key: str,
        build: Callable[[], tuple[dict, dict[str, np.ndarray]]],
        label: str = "",
    ) -> tuple[dict, dict[str, np.ndarray], str]:
        """Load a bundle or build-and-save it; first builder wins.

        Returns ``(meta, arrays, source)`` with source ``"disk"`` or
        ``"built"``. ``label`` exists for interface parity with
        :meth:`ArtifactPlane.get_or_build`.
        """
        hit = self.load(kind, key)
        if hit is not None:
            return hit[0], hit[1], "disk"
        with _file_lock(self._path(kind, key) + ".lock"):
            hit = self.load(kind, key)
            if hit is not None:
                return hit[0], hit[1], "disk"
            meta, arrays = build()
            self.save(kind, key, meta, arrays)
            return meta, arrays, "built"


class ArtifactPlane:
    """One run's shared receptor-artifact plane.

    The engine :meth:`create`\\ s the plane (becoming the owner of every
    shared-memory segment published into it) and ships the picklable
    :class:`PlaneHandle` to workers inside the run context; workers
    :meth:`attach`. ``get_or_build`` resolves an artifact through the
    tiers — attached segment, then (under the per-artifact cross-process
    lock) the disk cache, then the builder — and always hands back
    zero-copy read-only views when a segment exists.
    """

    def __init__(self, handle: PlaneHandle, owner: bool = False) -> None:
        self.handle = handle
        self.owner = owner
        fetch = None
        if handle.exchange is not None and handle.map_cache_dir:
            from functools import partial

            from repro.workflow.messaging import fetch_artifact

            fetch = partial(
                fetch_artifact,
                tuple(handle.exchange),
                compress=handle.compress,
            )
        self.disk = (
            DiskMapCache(handle.map_cache_dir, fetch=fetch)
            if handle.map_cache_dir
            else None
        )
        self._attached: dict[tuple[str, str], shared_memory.SharedMemory] = {}
        self._guard = threading.Lock()

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls,
        run_id: str | None = None,
        scratch_root: str | None = None,
        map_cache_dir: str | None = None,
        exchange: tuple | None = None,
        compress: bool = False,
    ) -> "ArtifactPlane":
        run_id = run_id or uuid.uuid4().hex
        scratch = tempfile.mkdtemp(
            prefix=f"repro-plane-{run_id[:8]}-", dir=scratch_root
        )
        return cls(
            PlaneHandle(scratch, run_id, map_cache_dir, exchange, compress),
            owner=True,
        )

    @classmethod
    def attach(cls, handle: PlaneHandle) -> "ArtifactPlane":
        return cls(handle)

    # -- scratch-layout helpers ----------------------------------------------
    def _sidecar(self, kind: str, key: str) -> str:
        return os.path.join(self.handle.scratch_dir, f"{kind}-{key}.json")

    def _lockfile(self, kind: str, key: str) -> str:
        return os.path.join(self.handle.scratch_dir, f"{kind}-{key}.lock")

    def _segments_file(self) -> str:
        return os.path.join(self.handle.scratch_dir, "segments.txt")

    def _events_file(self) -> str:
        return os.path.join(self.handle.scratch_dir, "events.jsonl")

    def _segment_name(self, kind: str, key: str) -> str:
        return f"rp{self.handle.run_id[:8]}-{kind}-{key[:16]}"

    def _record_segment(self, name: str) -> None:
        """Register a segment name *before* creating it (crash safety)."""
        with _file_lock(self._segments_file() + ".lock"):
            with open(self._segments_file(), "a") as fh:
                fh.write(name + "\n")

    def segment_names(self) -> list[str]:
        try:
            with open(self._segments_file()) as fh:
                return [line.strip() for line in fh if line.strip()]
        except FileNotFoundError:
            return []

    def _log_event(self, kind: str, key: str, label: str, event: str) -> None:
        record = {
            "kind": kind,
            "key": key[:16],
            "label": label,
            "event": event,
            "pid": os.getpid(),
        }
        # O_APPEND single-line writes interleave atomically across processes.
        with open(self._events_file(), "a") as fh:
            fh.write(json.dumps(record) + "\n")

    # -- publish / attach ----------------------------------------------------
    def _publish(self, kind: str, key: str, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        layout, size = _segment_layout(arrays)
        name = self._segment_name(kind, key)
        self._record_segment(name)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            return  # another builder won the race outside our lock scope
        _untrack(shm)
        try:
            for entry, arr in zip(layout, arrays.values()):
                arr = np.ascontiguousarray(arr)
                view = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=entry["offset"]
                )
                view[...] = arr
                del view
        finally:
            shm.close()
        _atomic_write_text(
            self._sidecar(kind, key),
            json.dumps({"shm": name, "layout": layout, "meta": meta}),
        )

    def _attach_bundle(
        self, kind: str, key: str
    ) -> tuple[dict, dict[str, np.ndarray]] | None:
        sidecar = self._sidecar(kind, key)
        try:
            with open(sidecar) as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        with self._guard:
            shm = self._attached.get((kind, key))
            if shm is None:
                try:
                    shm = shared_memory.SharedMemory(name=doc["shm"])
                except FileNotFoundError:
                    return None
                _untrack(shm)
                self._attached[(kind, key)] = shm
        arrays: dict[str, np.ndarray] = {}
        for entry in doc["layout"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=shm.buf,
                offset=entry["offset"],
            )
            view.flags.writeable = False
            arrays[entry["name"]] = view
        return doc["meta"], arrays

    def get_or_build(
        self,
        kind: str,
        key: str,
        build: Callable[[], tuple[dict, dict[str, np.ndarray]]],
        label: str = "",
    ) -> tuple[dict, dict[str, np.ndarray], str]:
        """Resolve one artifact through shm -> disk cache -> builder.

        Returns ``(meta, arrays, source)`` with source one of ``"shm"``,
        ``"disk"``, ``"built"``. The arrays are read-only shared views
        whenever a segment backs them.
        """
        got = self._attach_bundle(kind, key)
        if got is not None:
            self._log_event(kind, key, label, "hit_shm")
            return got[0], got[1], "shm"
        with _file_lock(self._lockfile(kind, key)):
            got = self._attach_bundle(kind, key)
            if got is not None:
                self._log_event(kind, key, label, "hit_shm")
                return got[0], got[1], "shm"
            if self.disk is not None:
                hit = self.disk.load(kind, key)
                if hit is not None:
                    self._publish(kind, key, hit[0], hit[1])
                    self._log_event(kind, key, label, "hit_disk")
                    got = self._attach_bundle(kind, key)
                    if got is not None:
                        return got[0], got[1], "disk"
                    return hit[0], hit[1], "disk"
            meta, arrays = build()
            self._log_event(kind, key, label, "build")
            self._publish(kind, key, meta, arrays)
            if self.disk is not None:
                self.disk.save(kind, key, meta, arrays)
        got = self._attach_bundle(kind, key)
        if got is not None:
            return got[0], got[1], "built"
        return meta, arrays, "built"

    # -- accounting ----------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate the event log into the run's artifact statistics."""
        builds = shm_hits = disk_hits = 0
        builds_by_artifact: dict[str, int] = {}
        try:
            with open(self._events_file()) as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if rec["event"] == "build":
                        builds += 1
                        tag = f"{rec['kind']}:{rec.get('label') or rec['key']}"
                        builds_by_artifact[tag] = builds_by_artifact.get(tag, 0) + 1
                    elif rec["event"] == "hit_shm":
                        shm_hits += 1
                    elif rec["event"] == "hit_disk":
                        disk_hits += 1
        except FileNotFoundError:
            pass
        requests = builds + shm_hits + disk_hits
        return {
            "run_id": self.handle.run_id,
            "scratch_dir": self.handle.scratch_dir,
            "builds": builds,
            "shm_hits": shm_hits,
            "disk_hits": disk_hits,
            "exchange_fetches": self.disk.fetches if self.disk else 0,
            "exchange_bytes": self.disk.fetch_bytes if self.disk else 0,
            "requests": requests,
            "hit_rate": round((shm_hits + disk_hits) / requests, 3) if requests else 0.0,
            "builds_by_artifact": builds_by_artifact,
            "segments": self.segment_names(),
        }

    # -- lifecycle -----------------------------------------------------------
    def release(self) -> None:
        """Close this process's attached segment handles (views permitting)."""
        with self._guard:
            for shm in self._attached.values():
                try:
                    shm.close()
                except BufferError:
                    # Live numpy views still export the buffer; the OS
                    # reclaims the mapping at process exit instead.
                    pass
            self._attached.clear()

    def destroy(self) -> dict:
        """Owner teardown: unlink every segment, remove scratch, return stats.

        Safe against worker crashes — the registry records names before
        segments exist, so nothing can leak into ``/dev/shm``.
        """
        if not self.owner:
            raise ArtifactPlaneError("only the creating engine may destroy a plane")
        final = self.stats()
        self.release()
        for name in final["segments"]:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            try:
                seg.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            # No _untrack here: unlink() itself unregisters the name,
            # balancing the register this attach performed.
            seg.unlink()
        shutil.rmtree(self.handle.scratch_dir, ignore_errors=True)
        return final


# -- per-process plane registry ---------------------------------------------

#: Attached planes by scratch dir, so every activation in a worker process
#: shares one set of open segment handles.
_ATTACHED_PLANES: dict[str, ArtifactPlane] = {}
_ATTACHED_GUARD = threading.Lock()


def attach_cached(handle: PlaneHandle) -> ArtifactPlane:
    """Attach to a plane, reusing this process's existing attachment."""
    with _ATTACHED_GUARD:
        plane = _ATTACHED_PLANES.get(handle.scratch_dir)
        if plane is None:
            plane = _ATTACHED_PLANES[handle.scratch_dir] = ArtifactPlane.attach(handle)
        return plane


def release_cached(scratch_dir: str) -> bool:
    """Drop and close this process's attachment to a plane, if any."""
    with _ATTACHED_GUARD:
        plane = _ATTACHED_PLANES.pop(scratch_dir, None)
    if plane is None:
        return False
    plane.release()
    return True


# -- per-run worker-side state ----------------------------------------------

#: Worker-side per-run state, keyed by the engine run's cache token.
#: Process-backend workers receive a fresh context dict per activation,
#: so ``context.setdefault`` cannot carry artifacts across activations —
#: this registry does, once per (worker process, engine run). Tokens are
#: unique per run, so runs with different grid spacing or preparation
#: settings never see each other's receptors or maps.
_RUN_STATE: dict[str, dict] = {}
_RUN_STATE_GUARD = threading.Lock()


def run_state(token: str) -> dict:
    """The per-run mutable state dict for this process."""
    with _RUN_STATE_GUARD:
        state = _RUN_STATE.get(token)
        if state is None:
            state = _RUN_STATE[token] = {}
        return state


def drop_run_state(token: str | None, scratch_dir: str | None = None) -> bool:
    """End-of-run worker cleanup the engine broadcasts to every worker.

    Drops the token's state entry (receptor/ligand caches, attached map
    objects) and releases the plane attachment for ``scratch_dir``, so a
    long-lived worker pool never accumulates dead runs' artifacts.
    Returns True when a state entry existed.
    """
    with _RUN_STATE_GUARD:
        dropped = _RUN_STATE.pop(token, None) is not None if token else False
    if scratch_dir:
        release_cached(scratch_dir)
    return dropped
