"""Extractor components.

After an activation completes, SciCumulus opens the files it produced
and extracts domain values (e.g. binding-energy statistics) into the
provenance repository, enabling Query-1/Query-2-style analyses. An
:class:`Extractor` maps an output payload to ``{key: value}`` records.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Protocol


class ExtractorError(ValueError):
    """Raised when extraction fails on well-formed input expectations."""


class Extractor(Protocol):
    """Anything that can pull provenance records out of activation output."""

    def extract(self, payload: str) -> dict:  # pragma: no cover - protocol
        ...


@dataclass
class RegexExtractor:
    """Extracts named values via regular expressions.

    ``patterns`` maps record keys to regexes with one capture group; the
    first match wins. ``required`` keys raise when absent, optional keys
    are skipped silently.
    """

    patterns: dict[str, str]
    required: tuple[str, ...] = ()
    cast: Callable[[str], object] = float

    def extract(self, payload: str) -> dict:
        out: dict = {}
        for key, pattern in self.patterns.items():
            m = re.search(pattern, payload, re.MULTILINE)
            if m is None:
                if key in self.required:
                    raise ExtractorError(
                        f"required key {key!r} not found by pattern {pattern!r}"
                    )
                continue
            raw = m.group(1)
            try:
                out[key] = self.cast(raw)
            except (TypeError, ValueError):
                out[key] = raw
        return out


@dataclass
class JsonExtractor:
    """Extracts selected keys from a JSON payload (our engines' summaries)."""

    keys: tuple[str, ...] = ()
    prefix: str = ""

    def extract(self, payload: str) -> dict:
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ExtractorError(f"payload is not JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ExtractorError("JSON payload must be an object")
        keys = self.keys or tuple(doc)
        out = {}
        for k in keys:
            if k in doc:
                out[f"{self.prefix}{k}"] = doc[k]
        return out


@dataclass
class CallableExtractor:
    """Adapter for plain functions ``payload -> dict``."""

    fn: Callable[[str], dict]
    name: str = "callable"

    def extract(self, payload: str) -> dict:
        out = self.fn(payload)
        if not isinstance(out, dict):
            raise ExtractorError(
                f"extractor {self.name!r} must return a dict, got {type(out).__name__}"
            )
        return out


def run_extractors(extractors: list, payload: str) -> dict:
    """Run every extractor, merging results (later extractors win ties)."""
    merged: dict = {}
    for ex in extractors:
        merged.update(ex.extract(payload))
    return merged
