"""Director: the coordinator-side half of the distributed backend.

SciCumulus distributes activations over MPJ: rank 0 holds the activation
queue, worker ranks pull work, execute, and push results. This module is
that architecture over plain TCP, built on the shared wire vocabulary in
:mod:`repro.workflow.messaging` (length-prefixed pickled frames, a
credit-based WORK_REQUEST pull protocol, HEARTBEAT liveness).

The :class:`Director` deliberately implements the same duck-type as the
in-process :class:`~repro.workflow.affinity.AffinityRouter` —
``submit(affinity_key, fn, *args) -> Future``, ``abort(future)``,
``shutdown()`` — so the :class:`~repro.workflow.dispatch.AttemptRunner`
drives remote attempts through exactly the code path it uses for local
worker processes: the per-activation watchdog is a timed wait on the
future, a deadline miss aborts the remote task (cooperative token
cancellation on the node), and a node death surfaces every in-flight
future as a :class:`~repro.workflow.affinity.RouterError` — an
*infrastructure* failure, retried on the infra budget and re-placed on
the surviving nodes.

Placement generalizes the router's receptor-sticky slot choice to node
granularity (:func:`~repro.workflow.affinity.sticky_index` over the live
node list), so one node accumulates each receptor's artifacts; idle
nodes steal from the longest backlog. Each accepted connection's first
frame discriminates its role: HELLO starts a worker-node session,
ARTIFACT_REQUEST is a one-shot content-addressed fetch served from the
director's map cache (the exchange that lets a re-placed receptor's new
home skip rebuilding its maps).
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.workflow.affinity import RouterError, sticky_index
from repro.workflow.artifacts import DiskMapCache
from repro.workflow.coordinator import ExecutionPlane
from repro.workflow.dataflow import WorkItem
from repro.workflow.dispatch import AttemptRunner
from repro.workflow.fault import HeartbeatPolicy
from repro.workflow.messaging import (
    CONTEXT_REF,
    FrameConn,
    Message,
    MessageTag,
    MessagingError,
)
from repro.workflow.planes import ThreadedExecutionPlane

#: Bookkeeping threads the director plane keeps for in-flight attempts;
#: threads are cheap (each just waits on a future), nodes are not.
DIRECTOR_BOOKKEEPING_THREADS = 128


@dataclass
class _RemoteTask:
    """One activation attempt shipped (or queued to ship) to a node."""

    task_id: int
    affinity: str | None
    fn: object
    args: tuple
    future: Future


@dataclass
class _NodeSession:
    """Director-side state for one connected worker node."""

    rank: int
    node_id: str
    slots: int
    conn: FrameConn
    #: Unsent tasks homed on this node (stealable from the tail).
    queue: list[_RemoteTask] = field(default_factory=list)
    #: Sent-but-unfinished tasks by task id.
    inflight: dict[int, _RemoteTask] = field(default_factory=dict)
    #: Unconsumed WORK_REQUEST credits: how many more TASK frames the
    #: node is ready to receive (its idle slot count).
    credits: int = 0
    last_beat: float = field(default_factory=time.monotonic)
    lost: bool = False
    ready: bool = False  # SETUP sent (run context delivered)
    tuples_done: int = 0
    #: Worker-reported statistics (NODE_STATS payload).
    stats: dict = field(default_factory=dict)
    stats_event: threading.Event = field(default_factory=threading.Event)


class Director:
    """Accepts worker nodes and places activation attempts on them.

    Constructed once per engine (binding its listen address immediately
    so workers can join before — or during — a run); armed with a run's
    shipped context via :meth:`start_run`. Nodes joining before the run
    starts are parked until SETUP; nodes joining mid-run are set up and
    journaled on arrival, which is how the live pool grows.
    """

    def __init__(
        self,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        *,
        min_nodes: int = 1,
        join_timeout: float = 60.0,
        heartbeat: HeartbeatPolicy | None = None,
        cache_dir: str | None = None,
    ) -> None:
        self.min_nodes = max(1, int(min_nodes))
        self.join_timeout = join_timeout
        self.heartbeat = heartbeat or HeartbeatPolicy()
        #: Content-addressed bundle cache the exchange serves from.
        self.cache = DiskMapCache(cache_dir) if cache_dir else None
        self._lock = threading.RLock()
        self._capacity_cv = threading.Condition(self._lock)
        self._nodes: dict[int, _NodeSession] = {}
        self._by_future: dict[Future, _RemoteTask] = {}
        #: Tasks whose home node died with no survivor to take them;
        #: drained onto the next node that joins.
        self._orphans: list[_RemoteTask] = []
        self._rank_seq = itertools.count(1)
        self._task_seq = itertools.count(1)
        self._shipped_context: dict | None = None
        self._journal = None
        self._closed = False
        # Lifetime/wire accounting (survives node loss and shutdown).
        self.nodes_joined = 0
        self.nodes_lost = 0
        self.steals = 0
        self.tuples_per_node: dict[str, int] = {}
        self.node_stats: dict[str, dict] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.artifact_requests = 0
        self.artifact_hits = 0
        self.artifact_bytes = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(tuple(bind))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="director-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="director-monitor", daemon=True
        )
        self._monitor_thread.start()

    # -- router duck-type attribute (quarantine = node loss) -----------------
    @property
    def quarantined_workers(self) -> int:
        return self.nodes_lost

    # -- run lifecycle -------------------------------------------------------
    def start_run(self, shipped_context: dict, journal=None) -> None:
        """Arm the director with a run's context; set up parked nodes."""
        with self._lock:
            self._shipped_context = shipped_context
            self._journal = journal
            for node in self._nodes.values():
                if not node.lost and not node.ready:
                    self._setup_node(node)

    def end_run(self, cache_token: str | None = None) -> dict:
        """Collect per-node stats (dropping the run's worker state).

        Nodes stay connected — the director outlives runs so a resumed
        run reuses the joined pool — but each reports its plane/transport
        counters and drops the ``cache_token`` run state.
        """
        with self._lock:
            live = [n for n in self._nodes.values() if not n.lost and n.ready]
            for node in live:
                node.stats_event.clear()
                try:
                    node.conn.send(
                        MessageTag.NODE_STATS, {"drop_token": cache_token}
                    )
                except (OSError, MessagingError):
                    self._mark_lost_locked(node, "stats request failed")
            self._shipped_context = None
            self._journal = None
        for node in live:
            node.stats_event.wait(5.0)
        return self.stats()

    def stats(self) -> dict:
        with self._lock:
            live = [n for n in self._nodes.values() if not n.lost]
            bytes_sent = self.bytes_sent + sum(
                n.conn.bytes_sent for n in self._nodes.values()
            )
            bytes_received = self.bytes_received + sum(
                n.conn.bytes_received for n in self._nodes.values()
            )
            return {
                "nodes_joined": self.nodes_joined,
                "nodes_lost": self.nodes_lost,
                "live_nodes": len(live),
                "steals": self.steals,
                "tuples_per_node": dict(self.tuples_per_node),
                "node_stats": {
                    k: dict(v) for k, v in self.node_stats.items()
                },
                "bytes_sent": bytes_sent,
                "bytes_received": bytes_received,
                "artifact_requests": self.artifact_requests,
                "artifact_hits": self.artifact_hits,
                "artifact_bytes": self.artifact_bytes,
            }

    # -- capacity ------------------------------------------------------------
    def capacity(self) -> int:
        with self._lock:
            return sum(
                n.slots for n in self._nodes.values() if not n.lost and n.ready
            )

    def wait_for_capacity(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._capacity_cv:
            while True:
                if self._capacity_locked():
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return False
                self._capacity_cv.wait(remaining)

    def wait_for_nodes(self, count: int, timeout: float) -> bool:
        """Block until ``count`` nodes are live (tests / CLI startup)."""
        deadline = time.monotonic() + timeout
        with self._capacity_cv:
            while True:
                live = sum(
                    1 for n in self._nodes.values() if not n.lost and n.ready
                )
                if live >= count:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._capacity_cv.wait(remaining)

    def _capacity_locked(self) -> bool:
        return any(
            not n.lost and n.ready and n.slots > 0
            for n in self._nodes.values()
        )

    def _live_nodes_locked(self) -> list[_NodeSession]:
        live = [
            n for n in self._nodes.values() if not n.lost and n.ready
        ]
        live.sort(key=lambda n: n.rank)
        return live

    # -- placement -----------------------------------------------------------
    def placement(self, affinity_key: str | None) -> str | None:
        """Node an affinity key would land on right now (journal hint)."""
        with self._lock:
            live = self._live_nodes_locked()
            if not live:
                return None
            if affinity_key is None:
                return min(
                    live, key=lambda n: len(n.queue) + len(n.inflight)
                ).node_id
            return live[sticky_index(affinity_key, len(live))].node_id

    def _home_for_locked(
        self, affinity: str | None, live: list[_NodeSession]
    ) -> _NodeSession:
        if affinity is None:
            return min(live, key=lambda n: len(n.queue) + len(n.inflight))
        return live[sticky_index(affinity, len(live))]

    # -- router duck-type ----------------------------------------------------
    def submit(self, affinity_key: str | None, fn, *args) -> Future:
        """Queue one attempt for a worker node; returns its future."""
        shipped = self._shipped_context
        wired = tuple(
            CONTEXT_REF if (shipped is not None and a is shipped) else a
            for a in args
        )
        future: Future = Future()
        task = _RemoteTask(
            next(self._task_seq), affinity_key, fn, wired, future
        )
        deadline = time.monotonic() + self.join_timeout
        with self._capacity_cv:
            while True:
                if self._closed:
                    raise RouterError("director is shut down")
                live = self._live_nodes_locked()
                if live:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RouterError(
                        "no live worker nodes joined within "
                        f"{self.join_timeout:.1f}s"
                    )
                self._capacity_cv.wait(remaining)
            self._by_future[future] = task
            home = self._home_for_locked(affinity_key, live)
            home.queue.append(task)
            self._flush_locked(home)
            # A homed-but-unsent task may still run elsewhere: give every
            # idle node a chance to steal it immediately.
            for node in live:
                if node is not home:
                    self._flush_locked(node)
        return future

    def abort(self, future: Future) -> str:
        """Cancel one attempt: dequeue it, or ask its node to kill it."""
        with self._lock:
            task = self._by_future.pop(future, None)
            if task is None or future.done():
                return "finished"
            for node in self._nodes.values():
                if task in node.queue:
                    node.queue.remove(task)
                    return "dequeued"
                if node.inflight.pop(task.task_id, None) is not None:
                    try:
                        node.conn.send(
                            MessageTag.ABORT, {"task_id": task.task_id}
                        )
                    except (OSError, MessagingError):
                        self._mark_lost_locked(node, "abort send failed")
                    return "killed"
            if task in self._orphans:
                self._orphans.remove(task)
                return "dequeued"
        return "finished"

    def broadcast(self, fn, *args) -> list:
        """Interface parity with the router; node cleanup rides on
        :meth:`end_run`'s NODE_STATS round-trip instead."""
        return []

    def shutdown(self) -> None:
        """Stop accepting, release every node, close the listener."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            nodes = [n for n in self._nodes.values() if not n.lost]
            for node in nodes:
                try:
                    node.conn.send(MessageTag.SHUTDOWN)
                except (OSError, MessagingError):
                    continue
            self._capacity_cv.notify_all()
        for node in nodes:
            node.stats_event.wait(5.0)
        with self._lock:
            for node in self._nodes.values():
                self.bytes_sent += node.conn.bytes_sent
                self.bytes_received += node.conn.bytes_received
                node.conn.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - double close
            pass

    # -- dispatch internals --------------------------------------------------
    def _flush_locked(self, node: _NodeSession) -> None:
        """Send queued tasks to ``node`` while it holds credits."""
        while node.credits > 0 and not node.lost:
            task: _RemoteTask | None = None
            if node.queue:
                task = node.queue.pop(0)
            elif self._orphans:
                task = self._orphans.pop(0)
            else:
                # Idle with credits: steal from the longest backlog.
                victims = [
                    n
                    for n in self._live_nodes_locked()
                    if n is not node and n.queue
                ]
                if victims:
                    victim = max(victims, key=lambda n: len(n.queue))
                    task = victim.queue.pop()
                    self.steals += 1
            if task is None:
                return
            node.credits -= 1
            node.inflight[task.task_id] = task
            try:
                node.conn.send(
                    MessageTag.TASK,
                    {
                        "task_id": task.task_id,
                        "fn": task.fn,
                        "args": task.args,
                    },
                    dst=node.rank,
                )
            except (OSError, MessagingError):
                self._mark_lost_locked(node, "task send failed")
                return
            except Exception as exc:
                # pickling the frame failed before any byte hit the wire
                # (send_frame serializes fully, then writes): the stream
                # is intact and the node healthy — fail this task alone
                # instead of tearing the node down or killing the caller.
                node.credits += 1
                node.inflight.pop(task.task_id, None)
                self._by_future.pop(task.future, None)
                if not task.future.done():
                    task.future.set_exception(
                        RuntimeError(
                            f"task {task.task_id} is not serializable "
                            f"for transport: {exc!r}"
                        )
                    )

    # -- connection handling -------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(
                target=self._serve_connection,
                args=(FrameConn(sock),),
                name="director-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: FrameConn) -> None:
        """First frame discriminates: worker HELLO or one-shot exchange."""
        try:
            first = conn.recv()
        except (MessagingError, OSError):
            conn.close()
            return
        if first is None:
            conn.close()
            return
        if first.tag is MessageTag.ARTIFACT_REQUEST:
            self._serve_artifact(conn, first)
            return
        if first.tag is MessageTag.HELLO:
            self._register_node(conn, first)
            return
        conn.close()

    def _serve_artifact(self, conn: FrameConn, request: Message) -> None:
        payload = request.payload if isinstance(request.payload, dict) else {}
        kind = str(payload.get("kind", ""))
        key = str(payload.get("key", ""))
        blob = self.cache.blob(kind, key) if self.cache is not None else None
        with self._lock:
            self.artifact_requests += 1
            if blob is not None:
                self.artifact_hits += 1
                self.artifact_bytes += len(blob)
        try:
            conn.send(MessageTag.ARTIFACT_DATA, {"blob": blob})
        except (OSError, MessagingError):  # pragma: no cover - client gone
            pass
        finally:
            with self._lock:
                self.bytes_sent += conn.bytes_sent
                self.bytes_received += conn.bytes_received
            conn.close()

    def _register_node(self, conn: FrameConn, hello: Message) -> None:
        payload = hello.payload if isinstance(hello.payload, dict) else {}
        with self._lock:
            if self._closed:
                conn.close()
                return
            rank = next(self._rank_seq)
            node = _NodeSession(
                rank=rank,
                node_id=str(payload.get("node_id") or f"node-{rank}"),
                slots=max(1, int(payload.get("slots", 1))),
                conn=conn,
            )
            self._nodes[rank] = node
            self.nodes_joined += 1
            if self._shipped_context is not None:
                self._setup_node(node)
        receiver = threading.Thread(
            target=self._node_loop,
            args=(node,),
            name=f"director-node-{node.node_id}",
            daemon=True,
        )
        receiver.start()

    def _setup_node(self, node: _NodeSession) -> None:
        """Ship the run context; journal the join; wake waiters."""
        try:
            node.conn.send(
                MessageTag.SETUP,
                {
                    "context": self._shipped_context,
                    "exchange": self.address,
                    "heartbeat": self.heartbeat,
                },
                dst=node.rank,
            )
        except (OSError, MessagingError):
            self._mark_lost_locked(node, "setup send failed")
            return
        node.ready = True
        if self._journal is not None:
            self._journal.node_joined(node.node_id, node.rank, node.slots)
        self._capacity_cv.notify_all()

    def _node_loop(self, node: _NodeSession) -> None:
        """Per-node receiver: results, failures, credits, liveness."""
        while True:
            try:
                message = node.conn.recv()
            except (MessagingError, OSError):
                message = None
            if message is None:
                with self._lock:
                    self._mark_lost_locked(node, "connection closed")
                return
            payload = (
                message.payload if isinstance(message.payload, dict) else {}
            )
            with self._lock:
                node.last_beat = time.monotonic()
                if node.lost:
                    return
                if message.tag is MessageTag.WORK_REQUEST:
                    node.credits += int(payload.get("n", 1))
                    self._flush_locked(node)
                elif message.tag is MessageTag.RESULT:
                    task = node.inflight.pop(payload.get("task_id"), None)
                    if task is not None:
                        node.tuples_done += 1
                        self.tuples_per_node[node.node_id] = (
                            self.tuples_per_node.get(node.node_id, 0) + 1
                        )
                        self._by_future.pop(task.future, None)
                        if not task.future.done():
                            task.future.set_result(payload.get("value"))
                elif message.tag is MessageTag.FAILURE:
                    task = node.inflight.pop(payload.get("task_id"), None)
                    if task is not None:
                        self._by_future.pop(task.future, None)
                        if not task.future.done():
                            task.future.set_exception(
                                _unpickle_failure(payload)
                            )
                elif message.tag is MessageTag.NODE_STATS:
                    node.stats = dict(payload.get("stats") or {})
                    self.node_stats[node.node_id] = node.stats
                    node.stats_event.set()
                elif message.tag is MessageTag.HEARTBEAT:
                    pass  # the timestamp update above is the point
                # Unknown tags are ignored: wire compatibility.

    def _monitor_loop(self) -> None:
        """Declare nodes dead after a silent heartbeat window."""
        while not self._closed:
            time.sleep(self.heartbeat.interval)
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                for node in list(self._nodes.values()):
                    if node.lost or not node.ready:
                        continue
                    if now - node.last_beat > self.heartbeat.timeout:
                        self._mark_lost_locked(node, "heartbeat timeout")

    def _mark_lost_locked(self, node: _NodeSession, reason: str) -> None:
        """Node death: fail in-flight work, redistribute queued work."""
        if node.lost:
            return
        node.lost = True
        node.stats_event.set()
        self.nodes_lost += 1
        inflight = list(node.inflight.values())
        queued = list(node.queue)
        node.inflight.clear()
        node.queue.clear()
        self.bytes_sent += node.conn.bytes_sent
        self.bytes_received += node.conn.bytes_received
        node.conn.close()
        if self._journal is not None:
            self._journal.node_lost(node.node_id, reason, len(inflight))
        # In-flight attempts surface as infrastructure failures: the
        # AttemptRunner retries them on the infra budget and its
        # resubmission re-places them on the survivors.
        for task in inflight:
            self._by_future.pop(task.future, None)
            if not task.future.done():
                task.future.set_exception(
                    RouterError(
                        f"worker node {node.node_id} lost ({reason}) with "
                        f"task {task.task_id} in flight"
                    )
                )
        # Never-sent tasks are still good: re-home them now, or park
        # them for the next node to join.
        live = self._live_nodes_locked()
        for task in queued:
            if live:
                self._home_for_locked(task.affinity, live).queue.append(task)
            else:
                self._orphans.append(task)
        for survivor in live:
            self._flush_locked(survivor)
        self._capacity_cv.notify_all()


def _unpickle_failure(payload: dict) -> BaseException:
    """Reconstruct a worker-reported activation exception."""
    blob = payload.get("blob")
    if isinstance(blob, (bytes, bytearray)):
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                return exc
        except Exception:  # pragma: no cover - unpicklable exception class
            pass
    return RuntimeError(str(payload.get("repr", "unknown worker failure")))


class DirectorPlane(ThreadedExecutionPlane):
    """The distributed backend behind the coordinator's plane seam.

    Bookkeeping threads and the AttemptRunner lifecycle are inherited
    unchanged from the threaded plane — the runner's router *is* the
    director, so every attempt becomes a framed TASK on some node.
    Capacity is the live nodes' slot sum (it moves as nodes join and
    die, which is the distributed pool's elasticity); speculation stays
    off because twin attempts would race across nodes with no shared
    completion order to make golden-parity runs comparable.
    """

    supports_speculation = False
    elastic = False

    def __init__(
        self,
        runner: AttemptRunner,
        context: dict,
        t0: float,
        director: Director,
    ) -> None:
        super().__init__(
            runner,
            context,
            t0,
            active=DIRECTOR_BOOKKEEPING_THREADS,
            hard_max=DIRECTOR_BOOKKEEPING_THREADS,
        )
        self.director = director

    def capacity(self) -> int:
        return min(self.director.capacity(), self._hard_max)

    def placement(self, item: WorkItem) -> str | None:
        affinity = (
            item.tup.get("receptor_id") if isinstance(item.tup, dict) else None
        )
        return self.director.placement(
            str(affinity) if affinity is not None else None
        )

    def wait_for_capacity(self, timeout: float) -> bool:
        return self.director.wait_for_capacity(timeout)

    def finish(self) -> dict:
        self.drain()
        token = (self.runner.shipped_context or {}).get("cache_token")
        return self.director.end_run(cache_token=token)

    def shutdown(self) -> None:
        # The director itself stays up (it belongs to the engine, and a
        # resumed run reuses the joined node pool); only the run-scoped
        # bookkeeping pool winds down here.
        self.drain()
