"""Director: the coordinator-side half of the distributed backend.

SciCumulus distributes activations over MPJ: rank 0 holds the activation
queue, worker ranks pull work, execute, and push results. This module is
that architecture over plain TCP, built on the shared wire vocabulary in
:mod:`repro.workflow.messaging` (length-prefixed pickled frames, a
credit-based WORK_REQUEST pull protocol, HEARTBEAT liveness).

The :class:`Director` deliberately implements the same duck-type as the
in-process :class:`~repro.workflow.affinity.AffinityRouter` —
``submit(affinity_key, fn, *args) -> Future``, ``abort(future)``,
``shutdown()`` — so the :class:`~repro.workflow.dispatch.AttemptRunner`
drives remote attempts through exactly the code path it uses for local
worker processes: the per-activation watchdog is a timed wait on the
future, a deadline miss aborts the remote task (cooperative token
cancellation on the node), and a node death surfaces every in-flight
future as a :class:`~repro.workflow.affinity.RouterError` — an
*infrastructure* failure, retried on the infra budget and re-placed on
the surviving nodes.

Placement generalizes the router's receptor-sticky slot choice to node
granularity (:func:`~repro.workflow.affinity.sticky_index` over the live
node list), so one node accumulates each receptor's artifacts; idle
nodes steal from the longest backlog. Each accepted connection's first
frame discriminates its role: HELLO starts a worker-node session,
ARTIFACT_REQUEST is a one-shot content-addressed fetch served from the
director's map cache (the exchange that lets a re-placed receptor's new
home skip rebuilding its maps).
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.workflow.affinity import RouterError, sticky_index
from repro.workflow.artifacts import DiskMapCache
from repro.workflow.coordinator import ExecutionPlane
from repro.workflow.dataflow import WorkItem
from repro.workflow.dispatch import AttemptRunner
from repro.workflow.fault import HeartbeatPolicy
from repro.workflow.messaging import (
    COMPRESS_MIN_BYTES,
    CONTEXT_REF,
    FrameConn,
    Message,
    MessageTag,
    MessagingError,
)
from repro.workflow.planes import ThreadedExecutionPlane

#: Bookkeeping threads the director plane keeps for in-flight attempts;
#: threads are cheap (each just waits on a future), nodes are not.
DIRECTOR_BOOKKEEPING_THREADS = 128


@dataclass
class _RemoteTask:
    """One activation attempt shipped (or queued to ship) to a node."""

    task_id: int
    affinity: str | None
    fn: object
    args: tuple
    future: Future


@dataclass
class _NodeSession:
    """Director-side state for one connected worker node."""

    rank: int
    node_id: str
    slots: int
    conn: FrameConn
    #: Unsent tasks homed on this node (stealable from the tail).
    queue: list[_RemoteTask] = field(default_factory=list)
    #: Credit-consumed tasks accumulating toward the next TASK_BATCH
    #: frame (batching mode only). Not yet on the wire: a node loss
    #: re-homes these like queued work instead of failing them.
    pending: list[_RemoteTask] = field(default_factory=list)
    #: When the oldest pending task was admitted (linger clock).
    pending_since: float = 0.0
    #: Sent-but-unfinished tasks by task id.
    inflight: dict[int, _RemoteTask] = field(default_factory=dict)
    #: Unconsumed WORK_REQUEST credits: how many more tasks the node is
    #: ready to receive (idle slots, plus the prefetch window when
    #: batching).
    credits: int = 0
    #: The node's pull loop has granted at least one credit. Until then
    #: a backlog in ``queue`` just means the initial WORK_REQUEST is
    #: still in flight — not that the node is saturated — so it is not
    #: a legitimate steal victim yet.
    credited: bool = False
    #: HELLO-negotiated frame compression for this peer.
    compress: bool = False
    last_beat: float = field(default_factory=time.monotonic)
    lost: bool = False
    ready: bool = False  # SETUP sent (run context delivered)
    tuples_done: int = 0
    #: Worker-reported statistics (NODE_STATS payload).
    stats: dict = field(default_factory=dict)
    stats_event: threading.Event = field(default_factory=threading.Event)


class Director:
    """Accepts worker nodes and places activation attempts on them.

    Constructed once per engine (binding its listen address immediately
    so workers can join before — or during — a run); armed with a run's
    shipped context via :meth:`start_run`. Nodes joining before the run
    starts are parked until SETUP; nodes joining mid-run are set up and
    journaled on arrival, which is how the live pool grows.
    """

    def __init__(
        self,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        *,
        min_nodes: int = 1,
        join_timeout: float = 60.0,
        heartbeat: HeartbeatPolicy | None = None,
        cache_dir: str | None = None,
        batch_size: int = 1,
        batch_linger: float = 0.005,
        compress: bool = False,
        compress_min_bytes: int = COMPRESS_MIN_BYTES,
    ) -> None:
        self.min_nodes = max(1, int(min_nodes))
        self.join_timeout = join_timeout
        self.heartbeat = heartbeat or HeartbeatPolicy()
        #: Tasks per TASK_BATCH frame; 1 keeps the legacy one-frame-per-
        #: task wire protocol byte-for-byte.
        self.batch_size = max(1, int(batch_size))
        #: How long a partial batch may wait for more members before it
        #: is flushed anyway (seconds); <= 0 flushes partials eagerly.
        self.batch_linger = max(0.0, float(batch_linger))
        #: Offer zlib frame compression to peers that advertise it.
        self.compress = bool(compress)
        self.compress_min_bytes = int(compress_min_bytes)
        #: Content-addressed bundle cache the exchange serves from.
        self.cache = DiskMapCache(cache_dir) if cache_dir else None
        self._lock = threading.RLock()
        self._capacity_cv = threading.Condition(self._lock)
        self._nodes: dict[int, _NodeSession] = {}
        self._by_future: dict[Future, _RemoteTask] = {}
        #: Tasks whose home node died with no survivor to take them;
        #: drained onto the next node that joins.
        self._orphans: list[_RemoteTask] = []
        self._rank_seq = itertools.count(1)
        self._task_seq = itertools.count(1)
        self._shipped_context: dict | None = None
        self._journal = None
        self._closed = False
        # Lifetime/wire accounting (survives node loss and shutdown).
        self.nodes_joined = 0
        self.nodes_lost = 0
        self.steals = 0
        self.tuples_per_node: dict[str, int] = {}
        self.node_stats: dict[str, dict] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.bytes_saved = 0
        self.artifact_requests = 0
        self.artifact_hits = 0
        self.artifact_bytes = 0
        # Batch-frame accounting: every frame that carries tasks counts
        # in task_frames_sent; frames with >= 2 members in batches_sent.
        self.task_frames_sent = 0
        self.tasks_framed = 0
        self.batches_sent = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(tuple(bind))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="director-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="director-monitor", daemon=True
        )
        self._monitor_thread.start()
        if self.batch_size > 1 and self.batch_linger > 0:
            self._linger_thread = threading.Thread(
                target=self._linger_loop, name="director-linger", daemon=True
            )
            self._linger_thread.start()

    # -- router duck-type attribute (quarantine = node loss) -----------------
    @property
    def quarantined_workers(self) -> int:
        return self.nodes_lost

    # -- run lifecycle -------------------------------------------------------
    def start_run(self, shipped_context: dict, journal=None) -> None:
        """Arm the director with a run's context; set up parked nodes."""
        with self._lock:
            self._shipped_context = shipped_context
            self._journal = journal
            for node in self._nodes.values():
                if not node.lost and not node.ready:
                    self._setup_node(node)

    def end_run(self, cache_token: str | None = None) -> dict:
        """Collect per-node stats (dropping the run's worker state).

        Nodes stay connected — the director outlives runs so a resumed
        run reuses the joined pool — but each reports its plane/transport
        counters and drops the ``cache_token`` run state.
        """
        with self._lock:
            live = [n for n in self._nodes.values() if not n.lost and n.ready]
            for node in live:
                node.stats_event.clear()
                try:
                    node.conn.send(
                        MessageTag.NODE_STATS, {"drop_token": cache_token}
                    )
                except (OSError, MessagingError):
                    self._mark_lost_locked(node, "stats request failed")
            self._shipped_context = None
            self._journal = None
        for node in live:
            node.stats_event.wait(5.0)
        return self.stats()

    def stats(self) -> dict:
        with self._lock:
            # Lost nodes' conn counters were folded into the lifetime
            # sums at loss time — only live conns still count here.
            live = [n for n in self._nodes.values() if not n.lost]
            bytes_sent = self.bytes_sent + sum(
                n.conn.bytes_sent for n in live
            )
            bytes_received = self.bytes_received + sum(
                n.conn.bytes_received for n in live
            )
            # On-wire bytes are the compressed sizes; saved = raw minus
            # wire across both directions (the receive path inflates
            # worker-compressed frames, so director-side counters see
            # both halves of every conversation).
            bytes_saved = self.bytes_saved + sum(
                n.conn.bytes_saved_sent + n.conn.bytes_saved_received
                for n in live
            )
            wire_total = bytes_sent + bytes_received
            return {
                "nodes_joined": self.nodes_joined,
                "nodes_lost": self.nodes_lost,
                "live_nodes": len(live),
                "steals": self.steals,
                "tuples_per_node": dict(self.tuples_per_node),
                "node_stats": {
                    k: dict(v) for k, v in self.node_stats.items()
                },
                "bytes_sent": bytes_sent,
                "bytes_received": bytes_received,
                "bytes_saved": bytes_saved,
                "compression_ratio": (
                    (wire_total + bytes_saved) / wire_total
                    if wire_total
                    else 1.0
                ),
                "task_frames_sent": self.task_frames_sent,
                "tasks_framed": self.tasks_framed,
                "batches_sent": self.batches_sent,
                "avg_batch_fill": (
                    self.tasks_framed / self.task_frames_sent
                    if self.task_frames_sent
                    else 0.0
                ),
                "artifact_requests": self.artifact_requests,
                "artifact_hits": self.artifact_hits,
                "artifact_bytes": self.artifact_bytes,
            }

    # -- capacity ------------------------------------------------------------
    @property
    def _prefetch(self) -> int:
        """Extra per-node credit window that keeps batches fillable."""
        return self.batch_size if self.batch_size > 1 else 0

    def capacity(self) -> int:
        with self._lock:
            return sum(
                n.slots + self._prefetch
                for n in self._nodes.values()
                if not n.lost and n.ready
            )

    def wait_for_capacity(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._capacity_cv:
            while True:
                if self._capacity_locked():
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return False
                self._capacity_cv.wait(remaining)

    def wait_for_nodes(self, count: int, timeout: float) -> bool:
        """Block until ``count`` nodes are live (tests / CLI startup)."""
        deadline = time.monotonic() + timeout
        with self._capacity_cv:
            while True:
                live = sum(
                    1 for n in self._nodes.values() if not n.lost and n.ready
                )
                if live >= count:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._capacity_cv.wait(remaining)

    def _capacity_locked(self) -> bool:
        return any(
            not n.lost and n.ready and n.slots > 0
            for n in self._nodes.values()
        )

    def _live_nodes_locked(self) -> list[_NodeSession]:
        live = [
            n for n in self._nodes.values() if not n.lost and n.ready
        ]
        live.sort(key=lambda n: n.rank)
        return live

    # -- placement -----------------------------------------------------------
    def placement(self, affinity_key: str | None) -> str | None:
        """Node an affinity key would land on right now (journal hint)."""
        with self._lock:
            live = self._live_nodes_locked()
            if not live:
                return None
            if affinity_key is None:
                return min(
                    live, key=lambda n: len(n.queue) + len(n.inflight)
                ).node_id
            return live[sticky_index(affinity_key, len(live))].node_id

    def _home_for_locked(
        self, affinity: str | None, live: list[_NodeSession]
    ) -> _NodeSession:
        if affinity is None:
            return min(live, key=lambda n: len(n.queue) + len(n.inflight))
        return live[sticky_index(affinity, len(live))]

    # -- router duck-type ----------------------------------------------------
    def submit(self, affinity_key: str | None, fn, *args) -> Future:
        """Queue one attempt for a worker node; returns its future."""
        shipped = self._shipped_context
        wired = tuple(
            CONTEXT_REF if (shipped is not None and a is shipped) else a
            for a in args
        )
        future: Future = Future()
        task = _RemoteTask(
            next(self._task_seq), affinity_key, fn, wired, future
        )
        deadline = time.monotonic() + self.join_timeout
        with self._capacity_cv:
            while True:
                if self._closed:
                    raise RouterError("director is shut down")
                live = self._live_nodes_locked()
                if live:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RouterError(
                        "no live worker nodes joined within "
                        f"{self.join_timeout:.1f}s"
                    )
                self._capacity_cv.wait(remaining)
            self._by_future[future] = task
            home = self._home_for_locked(affinity_key, live)
            home.queue.append(task)
            self._flush_locked(home)
            # A homed-but-unsent task may still run elsewhere: give every
            # idle node a chance to steal it immediately.
            for node in live:
                if node is not home:
                    self._flush_locked(node)
        return future

    def abort(self, future: Future) -> str:
        """Cancel one attempt: dequeue it, or ask its node to kill it."""
        with self._lock:
            task = self._by_future.pop(future, None)
            if task is None or future.done():
                return "finished"
            for node in self._nodes.values():
                if task in node.queue:
                    node.queue.remove(task)
                    return "dequeued"
                if task in node.pending:
                    # Admitted to a batch but not yet on the wire: the
                    # credit it consumed goes back to the node.
                    node.pending.remove(task)
                    node.credits += 1
                    return "dequeued"
                if node.inflight.pop(task.task_id, None) is not None:
                    try:
                        node.conn.send(
                            MessageTag.ABORT, {"task_id": task.task_id}
                        )
                    except (OSError, MessagingError):
                        self._mark_lost_locked(node, "abort send failed")
                    return "killed"
            if task in self._orphans:
                self._orphans.remove(task)
                return "dequeued"
        return "finished"

    def broadcast(self, fn, *args) -> list:
        """Interface parity with the router; node cleanup rides on
        :meth:`end_run`'s NODE_STATS round-trip instead."""
        return []

    def shutdown(self) -> None:
        """Stop accepting, release every node, close the listener."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            nodes = [n for n in self._nodes.values() if not n.lost]
            for node in nodes:
                try:
                    node.conn.send(MessageTag.SHUTDOWN)
                except (OSError, MessagingError):
                    continue
            self._capacity_cv.notify_all()
        for node in nodes:
            node.stats_event.wait(5.0)
        with self._lock:
            for node in self._nodes.values():
                if not node.lost:
                    self._fold_conn_locked(node.conn)
                node.conn.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - double close
            pass

    # -- dispatch internals --------------------------------------------------
    def _next_task_locked(self, node: _NodeSession) -> _RemoteTask | None:
        """Pop the next task for ``node``: its queue, orphans, or a steal."""
        if node.queue:
            return node.queue.pop(0)
        if self._orphans:
            return self._orphans.pop(0)
        # Steal from the longest backlog — but demand-driven, not
        # credit-driven: with a prefetch window a node holds more
        # credits than slots, and spending those on a peer's backlog
        # would skew placement (the thief queues work it cannot run
        # while the victim's own slots go hungry). Only a node with a
        # genuinely idle slot steals.
        if len(node.inflight) + len(node.pending) >= node.slots:
            return None
        victims = [
            n
            for n in self._live_nodes_locked()
            if n is not node and n.queue and n.credited
        ]
        if victims:
            victim = max(victims, key=lambda n: len(n.queue))
            self.steals += 1
            return victim.queue.pop()
        return None

    def _flush_locked(self, node: _NodeSession) -> None:
        """Move work to ``node`` while it holds credits.

        With ``batch_size == 1`` every task ships immediately as its own
        TASK frame (the legacy wire protocol, byte-for-byte). With
        batching, credit-consumed tasks accumulate in ``node.pending``
        and ship as one TASK_BATCH frame once ``batch_size`` members are
        admitted; a partial batch ships when the linger window expires
        (the linger thread) or eagerly when no linger is configured.
        """
        batching = self.batch_size > 1
        while node.credits > 0 and not node.lost:
            task = self._next_task_locked(node)
            if task is None:
                break
            node.credits -= 1
            if not batching:
                self._ship_locked(node, [task])
                continue
            if not node.pending:
                node.pending_since = time.monotonic()
            node.pending.append(task)
            if len(node.pending) >= self.batch_size:
                batch = node.pending[:]
                node.pending.clear()
                self._ship_locked(node, batch)
        if (
            batching
            and node.pending
            and not node.lost
            and self.batch_linger <= 0
        ):
            batch = node.pending[:]
            node.pending.clear()
            self._ship_locked(node, batch)

    def _ship_locked(self, node: _NodeSession, tasks: list[_RemoteTask]) -> None:
        """Put one TASK or TASK_BATCH frame on the wire for ``tasks``."""
        if not tasks:
            return
        for task in tasks:
            node.inflight[task.task_id] = task
        members = [
            {"task_id": t.task_id, "fn": t.fn, "args": t.args} for t in tasks
        ]
        try:
            if len(members) == 1:
                node.conn.send(MessageTag.TASK, members[0], dst=node.rank)
            else:
                node.conn.send(
                    MessageTag.TASK_BATCH, {"tasks": members}, dst=node.rank
                )
            self.task_frames_sent += 1
            self.tasks_framed += len(members)
            if len(members) >= 2:
                self.batches_sent += 1
        except (OSError, MessagingError):
            self._mark_lost_locked(node, "task send failed")
        except Exception as exc:
            # pickling the frame failed before any byte hit the wire
            # (send_frame serializes fully, then writes): the stream
            # is intact and the node healthy. For a batch, retry the
            # members one by one so only the poisonous task fails; for
            # a single task, fail just its future.
            for task in tasks:
                node.inflight.pop(task.task_id, None)
            if len(tasks) > 1:
                for task in tasks:
                    if node.lost:
                        # The node died mid-retry: these members never
                        # hit the wire, so they re-home like queued work.
                        live = self._live_nodes_locked()
                        if live:
                            self._home_for_locked(
                                task.affinity, live
                            ).queue.append(task)
                        else:
                            self._orphans.append(task)
                    else:
                        self._ship_locked(node, [task])
                if node.lost:
                    for survivor in self._live_nodes_locked():
                        self._flush_locked(survivor)
                return
            task = tasks[0]
            node.credits += 1
            self._by_future.pop(task.future, None)
            if not task.future.done():
                task.future.set_exception(
                    RuntimeError(
                        f"task {task.task_id} is not serializable "
                        f"for transport: {exc!r}"
                    )
                )

    def _linger_loop(self) -> None:
        """Flush partial batches whose linger window expired."""
        tick = max(self.batch_linger / 2.0, 0.001)
        while not self._closed:
            time.sleep(tick)
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                for node in self._live_nodes_locked():
                    if (
                        node.pending
                        and now - node.pending_since >= self.batch_linger
                    ):
                        batch = node.pending[:]
                        node.pending.clear()
                        self._ship_locked(node, batch)

    # -- connection handling -------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(
                target=self._serve_connection,
                args=(FrameConn(sock),),
                name="director-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: FrameConn) -> None:
        """First frame discriminates: worker HELLO or one-shot exchange."""
        try:
            first = conn.recv()
        except (MessagingError, OSError):
            conn.close()
            return
        if first is None:
            conn.close()
            return
        if first.tag is MessageTag.ARTIFACT_REQUEST:
            self._serve_artifact(conn, first)
            return
        if first.tag is MessageTag.HELLO:
            self._register_node(conn, first)
            return
        conn.close()

    def _serve_artifact(self, conn: FrameConn, request: Message) -> None:
        payload = request.payload if isinstance(request.payload, dict) else {}
        kind = str(payload.get("kind", ""))
        key = str(payload.get("key", ""))
        if self.compress and payload.get("compress"):
            conn.enable_compression(self.compress_min_bytes)
        blob = self.cache.blob(kind, key) if self.cache is not None else None
        with self._lock:
            self.artifact_requests += 1
            if blob is not None:
                self.artifact_hits += 1
                self.artifact_bytes += len(blob)
        try:
            conn.send(MessageTag.ARTIFACT_DATA, {"blob": blob})
        except (OSError, MessagingError):  # pragma: no cover - client gone
            pass
        finally:
            with self._lock:
                self._fold_conn_locked(conn)
            conn.close()

    def _register_node(self, conn: FrameConn, hello: Message) -> None:
        payload = hello.payload if isinstance(hello.payload, dict) else {}
        with self._lock:
            if self._closed:
                conn.close()
                return
            rank = next(self._rank_seq)
            node = _NodeSession(
                rank=rank,
                node_id=str(payload.get("node_id") or f"node-{rank}"),
                slots=max(1, int(payload.get("slots", 1))),
                conn=conn,
            )
            # HELLO capability negotiation: compression is on for this
            # peer only when the director wants it AND the worker
            # advertises support (old workers simply never see a
            # compressed frame).
            if self.compress and payload.get("compress"):
                node.compress = True
                conn.enable_compression(self.compress_min_bytes)
            self._nodes[rank] = node
            self.nodes_joined += 1
            if self._shipped_context is not None:
                self._setup_node(node)
        receiver = threading.Thread(
            target=self._node_loop,
            args=(node,),
            name=f"director-node-{node.node_id}",
            daemon=True,
        )
        receiver.start()

    def _setup_node(self, node: _NodeSession) -> None:
        """Ship the run context; journal the join; wake waiters."""
        try:
            node.conn.send(
                MessageTag.SETUP,
                {
                    "context": self._shipped_context,
                    "exchange": self.address,
                    "heartbeat": self.heartbeat,
                    "batch": {
                        "size": self.batch_size,
                        "linger": self.batch_linger,
                    },
                    "compress": node.compress,
                },
                dst=node.rank,
            )
        except (OSError, MessagingError):
            self._mark_lost_locked(node, "setup send failed")
            return
        node.ready = True
        if self._journal is not None:
            self._journal.node_joined(node.node_id, node.rank, node.slots)
        self._capacity_cv.notify_all()

    def _node_loop(self, node: _NodeSession) -> None:
        """Per-node receiver: results, failures, credits, liveness."""
        while True:
            try:
                message = node.conn.recv()
            except (MessagingError, OSError):
                message = None
            if message is None:
                with self._lock:
                    self._mark_lost_locked(node, "connection closed")
                return
            payload = (
                message.payload if isinstance(message.payload, dict) else {}
            )
            with self._lock:
                node.last_beat = time.monotonic()
                if node.lost:
                    return
                if message.tag is MessageTag.WORK_REQUEST:
                    node.credits += int(payload.get("n", 1))
                    node.credited = True
                    self._flush_locked(node)
                elif message.tag is MessageTag.RESULT:
                    self._finish_entry_locked(node, payload, failed=False)
                    self._credit_locked(node, payload)
                elif message.tag is MessageTag.FAILURE:
                    self._finish_entry_locked(node, payload, failed=True)
                    self._credit_locked(node, payload)
                elif message.tag is MessageTag.RESULT_BATCH:
                    for entry in payload.get("results") or []:
                        if not isinstance(entry, dict):
                            continue
                        self._finish_entry_locked(
                            node, entry, failed=bool(entry.get("error"))
                        )
                    self._credit_locked(node, payload)
                elif message.tag is MessageTag.NODE_STATS:
                    node.stats = dict(payload.get("stats") or {})
                    self.node_stats[node.node_id] = node.stats
                    node.stats_event.set()
                elif message.tag is MessageTag.HEARTBEAT:
                    pass  # the timestamp update above is the point
                # Unknown tags are ignored: wire compatibility.

    def _finish_entry_locked(
        self, node: _NodeSession, entry: dict, *, failed: bool
    ) -> None:
        """Settle one per-tuple completion (RESULT/FAILURE/batch entry)."""
        task = node.inflight.pop(entry.get("task_id"), None)
        if task is None:
            return
        self._by_future.pop(task.future, None)
        if failed:
            if not task.future.done():
                task.future.set_exception(_unpickle_failure(entry))
            return
        node.tuples_done += 1
        self.tuples_per_node[node.node_id] = (
            self.tuples_per_node.get(node.node_id, 0) + 1
        )
        if not task.future.done():
            task.future.set_result(entry.get("value"))

    def _credit_locked(self, node: _NodeSession, payload: dict) -> None:
        """Apply credits piggybacked on a result frame (batching mode).

        Legacy workers send a separate WORK_REQUEST per completion and
        no ``n`` key here, so the default of 0 keeps that path intact.
        """
        credits = int(payload.get("n", 0) or 0)
        if credits > 0:
            node.credits += credits
            self._flush_locked(node)

    def _monitor_loop(self) -> None:
        """Declare nodes dead after a silent heartbeat window."""
        while not self._closed:
            time.sleep(self.heartbeat.interval)
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                for node in list(self._nodes.values()):
                    if node.lost or not node.ready:
                        continue
                    if now - node.last_beat > self.heartbeat.timeout:
                        self._mark_lost_locked(node, "heartbeat timeout")

    def _fold_conn_locked(self, conn: FrameConn) -> None:
        """Roll a dying connection's wire counters into the lifetime sums.

        Counters are zeroed after folding so a later fold or a live-conn
        sum in :meth:`stats` can never double-count the same bytes.
        """
        self.bytes_sent += conn.bytes_sent
        self.bytes_received += conn.bytes_received
        self.bytes_saved += conn.bytes_saved_sent + conn.bytes_saved_received
        conn.bytes_sent = conn.bytes_received = 0
        conn.bytes_saved_sent = conn.bytes_saved_received = 0

    def _mark_lost_locked(self, node: _NodeSession, reason: str) -> None:
        """Node death: fail in-flight work, redistribute unsent work.

        Only tasks that actually went out on the wire (``inflight``) fail
        onto the infra budget — a batch's completed members already left
        ``inflight`` on their per-tuple RESULT, so exactly the
        *uncompleted* members of in-flight batches are failed here.
        Queued and pending (batched-but-unsent) tasks never reached the
        node and re-home losslessly.
        """
        if node.lost:
            return
        node.lost = True
        node.stats_event.set()
        self.nodes_lost += 1
        inflight = list(node.inflight.values())
        unsent = list(node.queue) + list(node.pending)
        node.inflight.clear()
        node.queue.clear()
        node.pending.clear()
        self._fold_conn_locked(node.conn)
        node.conn.close()
        if self._journal is not None:
            self._journal.node_lost(node.node_id, reason, len(inflight))
        # In-flight attempts surface as infrastructure failures: the
        # AttemptRunner retries them on the infra budget and its
        # resubmission re-places them on the survivors.
        for task in inflight:
            self._by_future.pop(task.future, None)
            if not task.future.done():
                task.future.set_exception(
                    RouterError(
                        f"worker node {node.node_id} lost ({reason}) with "
                        f"task {task.task_id} in flight"
                    )
                )
        # Never-sent tasks are still good: re-home them now, or park
        # them for the next node to join.
        live = self._live_nodes_locked()
        for task in unsent:
            if live:
                self._home_for_locked(task.affinity, live).queue.append(task)
            else:
                self._orphans.append(task)
        for survivor in live:
            self._flush_locked(survivor)
        self._capacity_cv.notify_all()


def _unpickle_failure(payload: dict) -> BaseException:
    """Reconstruct a worker-reported activation exception."""
    blob = payload.get("blob")
    if isinstance(blob, (bytes, bytearray)):
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                return exc
        except Exception:  # pragma: no cover - unpicklable exception class
            pass
    return RuntimeError(str(payload.get("repr", "unknown worker failure")))


class DirectorPlane(ThreadedExecutionPlane):
    """The distributed backend behind the coordinator's plane seam.

    Bookkeeping threads and the AttemptRunner lifecycle are inherited
    unchanged from the threaded plane — the runner's router *is* the
    director, so every attempt becomes a framed TASK (or a TASK_BATCH
    member — batching happens inside the director's flush path; the
    plane contract stays per-item) on some node. Capacity is the live
    nodes' slot sum plus the director's batching prefetch window (it
    moves as nodes join and die, which is the distributed pool's
    elasticity); speculation stays off because twin attempts would race
    across nodes with no shared completion order to make golden-parity
    runs comparable.
    """

    supports_speculation = False
    elastic = False

    def __init__(
        self,
        runner: AttemptRunner,
        context: dict,
        t0: float,
        director: Director,
    ) -> None:
        super().__init__(
            runner,
            context,
            t0,
            active=DIRECTOR_BOOKKEEPING_THREADS,
            hard_max=DIRECTOR_BOOKKEEPING_THREADS,
        )
        self.director = director

    def capacity(self) -> int:
        return min(self.director.capacity(), self._hard_max)

    def placement(self, item: WorkItem) -> str | None:
        affinity = (
            item.tup.get("receptor_id") if isinstance(item.tup, dict) else None
        )
        return self.director.placement(
            str(affinity) if affinity is not None else None
        )

    def wait_for_capacity(self, timeout: float) -> bool:
        return self.director.wait_for_capacity(timeout)

    def finish(self) -> dict:
        self.drain()
        token = (self.runner.shipped_context or {}).get("cache_token")
        return self.director.end_run(cache_token=token)

    def shutdown(self) -> None:
        # The director itself stays up (it belongs to the engine, and a
        # resumed run reuses the joined node pool); only the run-scoped
        # bookkeeping pool winds down here.
        self.drain()
