"""Re-execution of failed work from a previous run.

The paper: "SciCumulus has a re-execution mechanism, which supports long
running workflows, when some activity executions fail and need to be
re-submitted ... Since it has all information stored in the provenance
repository it does not need to restart the entire workflow."

This module answers, from provenance alone, *which tuples still need
work*, and re-runs just those through the engine under a fresh workflow
execution — the recovery path after a crash, a VM loss, or retry
exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Workflow
from repro.workflow.engine import ExecutionReport, LocalEngine
from repro.workflow.relation import Relation, tuple_key


@dataclass
class RecoveryPlan:
    """What a resume would re-run, and why."""

    wkfid: int
    completed_keys: set[str]
    failed_keys: set[str]
    aborted_keys: set[str]
    blocked_keys: set[str]
    missing_keys: set[str]

    @property
    def keys_to_rerun(self) -> set[str]:
        """Failed or never-started tuples; aborted/blocked stay excluded
        (they are known-bad inputs, e.g. Hg receptors)."""
        return self.failed_keys | self.missing_keys

    def summary(self) -> str:
        return (
            f"workflow {self.wkfid}: {len(self.completed_keys)} complete, "
            f"{len(self.failed_keys)} failed, {len(self.missing_keys)} missing, "
            f"{len(self.aborted_keys)} aborted, {len(self.blocked_keys)} blocked"
            f" -> re-running {len(self.keys_to_rerun)}"
        )


def _root_key(key: str) -> str:
    """Activation keys inherit the pair key (``<ligand>_<receptor>``)."""
    return key


def analyze_run(
    store: ProvenanceStore,
    wkfid: int,
    workflow: Workflow,
    relation: Relation,
) -> RecoveryPlan:
    """Classify every input tuple of a prior run by its recovery need.

    A tuple is *complete* when the final activity has a FINISHED
    activation for its key; *failed* when some activation for its key
    ended FAILED without a later FINISHED of the same activity;
    *aborted*/*blocked* when the looping machinery stopped it; *missing*
    when no terminal record exists at all (crash mid-run).
    """
    last_tag = workflow.activities[-1].tag
    rows = store.sql(
        """
        SELECT a.tag, t.tuple_key, t.status, t.attempt
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ?
        ORDER BY t.taskid
        """,
        (wkfid,),
    )
    finished_last: set[str] = set()
    # (tag, key) -> last seen status wins (retries overwrite failures).
    final_status: dict[tuple[str, str], str] = {}
    for r in rows:
        key = _root_key(r["tuple_key"])
        final_status[(r["tag"], key)] = r["status"]
        if r["tag"] == last_tag and r["status"] == "FINISHED":
            finished_last.add(key)

    all_keys = {tuple_key(t, i) for i, t in enumerate(relation)}
    failed: set[str] = set()
    aborted: set[str] = set()
    blocked: set[str] = set()
    for (tag, key), status in final_status.items():
        if key not in all_keys:
            continue
        if status == "FAILED":
            failed.add(key)
        elif status == "ABORTED":
            aborted.add(key)
        elif status == "BLOCKED":
            blocked.add(key)
    completed = finished_last & all_keys
    terminalized = completed | failed | aborted | blocked
    missing = all_keys - terminalized
    # A key can appear in several sets (e.g. failed early, finished after
    # retry); completion wins, then abort/block, then failure.
    failed -= completed | aborted | blocked
    return RecoveryPlan(
        wkfid=wkfid,
        completed_keys=completed,
        failed_keys=failed,
        aborted_keys=aborted,
        blocked_keys=blocked,
        missing_keys=missing,
    )


def resume_failed(
    store: ProvenanceStore,
    wkfid: int,
    workflow: Workflow,
    relation: Relation,
    engine: LocalEngine | None = None,
    context: dict | None = None,
) -> tuple[ExecutionReport | None, RecoveryPlan]:
    """Re-run only the tuples a prior run left unfinished.

    Returns ``(report, plan)``; ``report`` is ``None`` when nothing
    needed re-execution. The resumed work runs as a new workflow
    execution in the same store, so provenance keeps the full history.
    """
    plan = analyze_run(store, wkfid, workflow, relation)
    if not plan.keys_to_rerun:
        return None, plan
    rerun = Relation(f"{relation.name}:resume")
    for i, tup in enumerate(relation):
        if tuple_key(tup, i) in plan.keys_to_rerun:
            rerun.append(dict(tup))
    engine = engine or LocalEngine(store)
    report = engine.run(workflow, rerun, context=context)
    return report, plan
