"""Re-execution of failed work from a previous run.

The paper: "SciCumulus has a re-execution mechanism, which supports long
running workflows, when some activity executions fail and need to be
re-submitted ... Since it has all information stored in the provenance
repository it does not need to restart the entire workflow."

This module answers, from provenance alone, *which tuples still need
work*, and re-runs just those through the engine under a fresh workflow
execution — the recovery path after a crash, a VM loss, or retry
exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Workflow
from repro.workflow.dispatch import SPECULATION_ERRMSG_PREFIX
from repro.workflow.engine import ExecutionReport, LocalEngine
from repro.workflow.journal import recover_context
from repro.workflow.relation import Relation, tuple_key

#: Prefix the real engine writes on watchdog-timeout ABORTED records —
#: the marker that distinguishes "ran out of wall-clock" (transient,
#: worth re-running) from "known-bad input" (Hg looping state, not).
WATCHDOG_ERRMSG_PREFIX = "watchdog timeout"


@dataclass
class RecoveryPlan:
    """What a resume would re-run, and why."""

    wkfid: int
    completed_keys: set[str]
    failed_keys: set[str]
    aborted_keys: set[str]
    blocked_keys: set[str]
    missing_keys: set[str]
    #: ABORTED by the wall-clock watchdog (errormsg says so) rather than
    #: by the looping-state predicate. A timeout may be transient — a
    #: slow VM, a tight deadline — so these are rerunnable, unlike
    #: predicate aborts which re-abort deterministically.
    timeout_keys: set[str] = field(default_factory=set)

    @property
    def keys_to_rerun(self) -> set[str]:
        """Failed, never-started, or watchdog-timed-out tuples;
        predicate aborts and blocked keys stay excluded (they are
        known-bad inputs, e.g. Hg receptors)."""
        return self.failed_keys | self.missing_keys | self.timeout_keys

    def summary(self) -> str:
        return (
            f"workflow {self.wkfid}: {len(self.completed_keys)} complete, "
            f"{len(self.failed_keys)} failed, {len(self.missing_keys)} missing, "
            f"{len(self.aborted_keys)} aborted "
            f"({len(self.timeout_keys)} watchdog timeouts), "
            f"{len(self.blocked_keys)} blocked"
            f" -> re-running {len(self.keys_to_rerun)}"
        )


def _lineage_root_resolver(store: ProvenanceStore, wkfid: int):
    """Map activation tuple keys back to input-relation root keys.

    Under pipelined execution, downstream activations may carry
    lineage-hash keys rather than the input tuple's key; the
    ``hdependency`` edges the dataflow core records let us walk any
    activation key up its spawn chain to the root. Semantic keys (the
    ``<ligand>_<receptor>`` convention, explicit ``key`` fields) are
    self-edges in that table and resolve to themselves, which also keeps
    provenance from runs predating the dependency table analyzable.

    Returns ``root(key) -> str | None``; ``None`` means the key fans in
    from multiple inputs (a REDUCE activation) and classifies no single
    input tuple.
    """
    rows = store.sql(
        "SELECT DISTINCT child_key, parent_key FROM hdependency"
        " WHERE wkfid = ?",
        (wkfid,),
    )
    parents: dict[str, set[str]] = {}
    for r in rows:
        if r["parent_key"] != r["child_key"]:
            parents.setdefault(r["child_key"], set()).add(r["parent_key"])

    def root(key: str) -> str | None:
        seen = {key}
        while True:
            up = parents.get(key)
            if not up:
                return key
            if len(up) > 1:
                return None
            (key,) = up
            if key in seen:  # defensive: malformed cycle
                return key
            seen.add(key)

    return root


def analyze_run(
    store: ProvenanceStore,
    wkfid: int,
    workflow: Workflow,
    relation: Relation,
) -> RecoveryPlan:
    """Classify every input tuple of a prior run by its recovery need.

    A tuple is *complete* when the final activity has a FINISHED
    activation for its key; *failed* when some activation for its key
    ended FAILED without a later FINISHED of the same activity;
    *aborted*/*blocked* when the looping machinery stopped it; *missing*
    when no terminal record exists at all (crash mid-run). ABORTED rows
    whose error message marks a wall-clock watchdog timeout are split
    out as *timeout* keys: real timeouts can happen to any activity on a
    bad day and are worth one more try, whereas predicate aborts
    (looping-state inputs) would just abort again. Straggler
    speculation leaves two kinds of rows that are *not* real work lost
    and classify nothing: non-FINISHED ``speculative`` duplicates, and
    ABORTED rows whose errormsg carries the speculation-loss marker
    (a superseded primary) — both mean the twin attempt finished the
    tuple.
    """
    last_tag = workflow.activities[-1].tag
    rows = store.sql(
        """
        SELECT a.tag, t.tuple_key, t.status, t.attempt, t.errormsg,
               t.speculative
        FROM hactivation t JOIN hactivity a ON t.actid = a.actid
        WHERE a.wkfid = ?
        ORDER BY t.taskid
        """,
        (wkfid,),
    )
    root_of = _lineage_root_resolver(store, wkfid)
    finished_last: set[str] = set()
    # (tag, key) -> last seen status wins (retries overwrite failures).
    final_status: dict[tuple[str, str], str] = {}
    # Watchdog-timeout marks are keyed per (tag, key), exactly like
    # final_status: a predicate ABORT by one activity must not discard
    # a timeout mark left by a *different* activity on the same key
    # (cross-activity clobbering misclassified rerunnable timeouts).
    timeout_marked: set[tuple[str, str]] = set()
    for r in rows:
        if r["speculative"] and r["status"] != "FINISHED":
            # A duplicate that lost (or died): the primary's record is
            # the tuple's truth.
            continue
        errormsg = r["errormsg"] or ""
        if r["status"] == "ABORTED" and errormsg.startswith(
            SPECULATION_ERRMSG_PREFIX
        ):
            # A primary superseded by its winning duplicate.
            continue
        key = root_of(r["tuple_key"])
        if key is None:
            # REDUCE fan-in: classifies no single input tuple.
            continue
        final_status[(r["tag"], key)] = r["status"]
        if r["status"] == "ABORTED":
            errormsg = r["errormsg"] or ""
            if errormsg.startswith(WATCHDOG_ERRMSG_PREFIX):
                timeout_marked.add((r["tag"], key))
            else:
                timeout_marked.discard((r["tag"], key))
        if r["tag"] == last_tag and r["status"] == "FINISHED":
            finished_last.add(key)

    all_keys = {tuple_key(t, i) for i, t in enumerate(relation)}
    failed: set[str] = set()
    aborted: set[str] = set()
    blocked: set[str] = set()
    for (tag, key), status in final_status.items():
        if key not in all_keys:
            continue
        if status == "FAILED":
            failed.add(key)
        elif status == "ABORTED":
            aborted.add(key)
        elif status == "BLOCKED":
            blocked.add(key)
    completed = finished_last & all_keys
    terminalized = completed | failed | aborted | blocked
    missing = all_keys - terminalized
    # A key can appear in several sets (e.g. failed early, finished after
    # retry); completion wins, then abort/block, then failure.
    failed -= completed | aborted | blocked
    # A timeout mark only counts while that same activity's final word
    # on the key is still the watchdog ABORT (a later FINISHED retry of
    # the activity clears it; another activity's abort does not).
    timeout_keys = {
        key
        for (tag, key) in timeout_marked
        if final_status.get((tag, key)) == "ABORTED"
    }
    timeouts = (timeout_keys & aborted) - completed - blocked
    return RecoveryPlan(
        wkfid=wkfid,
        completed_keys=completed,
        failed_keys=failed,
        aborted_keys=aborted,
        blocked_keys=blocked,
        missing_keys=missing,
        timeout_keys=timeouts,
    )


def resume_failed(
    store: ProvenanceStore,
    wkfid: int,
    workflow: Workflow,
    relation: Relation,
    engine: LocalEngine | None = None,
    context: dict | None = None,
    *,
    engine_factory: Callable[[ProvenanceStore], LocalEngine] | None = None,
) -> tuple[ExecutionReport | None, RecoveryPlan]:
    """Re-run only the tuples a prior run left unfinished.

    Returns ``(report, plan)``; ``report`` is ``None`` when nothing
    needed re-execution. The resumed work runs as a new workflow
    execution in the same store, so provenance keeps the full history.

    Pass the original run's ``engine``, or an ``engine_factory`` that
    rebuilds one (backend, worker count, retry/watchdog policies) from
    the store — a resume that silently downgrades to a default engine
    re-runs recovered work under different fault-tolerance semantics
    than the run that produced the failures.

    Likewise for the run *context*: with ``context=None``, the original
    run's journaled context (kernel mode, energy-table resolution,
    fault-injection setup — see
    :func:`repro.workflow.journal.recover_context`) is recovered from
    provenance, so resumed attempts execute under the same
    configuration that produced the failures instead of silently
    falling back to defaults. Pre-journal runs have nothing to recover
    and keep the historical ``None``.
    """
    if engine is not None and engine_factory is not None:
        raise ValueError("pass engine or engine_factory, not both")
    if context is None:
        context = recover_context(store, wkfid)
    plan = analyze_run(store, wkfid, workflow, relation)
    if not plan.keys_to_rerun:
        return None, plan
    rerun = Relation(f"{relation.name}:resume")
    for i, tup in enumerate(relation):
        if tuple_key(tup, i) in plan.keys_to_rerun:
            rerun.append(dict(tup))
    if engine is None:
        engine = engine_factory(store) if engine_factory else LocalEngine(store)
    report = engine.run(workflow, rerun, context=context)
    return report, plan
