"""The shared dataflow dispatch core.

SciCumulus' algebra makes every MAP/FILTER/SPLIT_MAP activation a
per-tuple unit of work, so a tuple that finishes one activity early can
flow straight into the next without waiting for its cohort. This module
owns that dataflow:

* :class:`DataflowState` — the activation DAG over a linear
  :class:`~repro.workflow.activity.Workflow`. Every output tuple of a
  MAP/SPLIT_MAP/FILTER activation immediately spawns its downstream
  activation as a :class:`WorkItem`; barriers exist only at REDUCE
  (which by definition needs its whole upstream), or at every stage when
  ``pipeline=False`` (the historical activity-by-activity mode, kept as
  an escape hatch and as the baseline for the pipelining benchmark).
* :class:`ReadyQueue` — a priority queue of dispatchable work items
  driven by the :class:`~repro.workflow.scheduler.Scheduler` interface
  (``None`` = FIFO arrival order). Both engines pop from it, so a
  scheduling policy reorders *real* dispatch, not just simulated
  dispatch.
* :func:`lineage_key` — stable tuple identity under pipelining. Keys
  keep their semantic forms (an explicit ``key`` field, the SciDock
  ``ligand_receptor`` convention) when available; the positional
  fallback, which was enumeration-order dependent and therefore
  meaningless once completion order is nondeterministic, becomes a hash
  of (parent key, child activity tag, output ordinal) — deterministic
  regardless of which tuple finishes first.

When constructed with a provenance store, :class:`DataflowState`
records an ``hdependency`` edge for every spawned tuple (child key +
activity, parent key + activity), so PROV-Wf lineage queries can walk an
output tuple back through its full activation chain even though stages
no longer run in lockstep.

The state object is *not* thread-safe: engines must call ``seed`` /
``complete`` / ``retire`` from a single coordinator thread (the
LocalEngine event loop) or a single-threaded simulation loop.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from dataclasses import dataclass, field

from repro.provenance.store import ProvenanceStore
from repro.workflow.activity import Operator, Workflow
from repro.workflow.relation import Relation, tuple_key
from repro.workflow.scheduler import PendingActivation, Scheduler

#: Prefix of hash-derived (non-semantic) lineage keys.
LINEAGE_PREFIX = "lin-"


def lineage_key(tup: dict, parent_key: str, tag: str, ordinal: int) -> str:
    """Completion-order-independent key for a spawned tuple.

    Semantic identities win — an explicit ``key`` field, then the
    SciDock ``<ligand>_<receptor>`` convention — matching
    :func:`~repro.workflow.relation.tuple_key` so steering rules and
    recovery plans keep addressing tuples the same way. Only the
    positional fallback changes: instead of the enumeration index into a
    shared output list (racy under pipelining), the key hashes the
    parent's key, the child activity tag and the ordinal of this output
    *within its own parent's emission* — all three are fixed at spawn
    time no matter when sibling tuples finish.
    """
    if "key" in tup:
        return str(tup["key"])
    if "ligand_id" in tup and "receptor_id" in tup:
        return f"{tup['ligand_id']}_{tup['receptor_id']}"
    digest = hashlib.sha256(
        f"{parent_key}|{tag}|{ordinal}".encode()
    ).hexdigest()[:12]
    return f"{LINEAGE_PREFIX}{digest}"


@dataclass
class WorkItem:
    """One dispatchable activation: a tuple at a workflow stage."""

    stage: int
    tup: dict
    key: str
    parent_key: str | None = None
    #: Activation-failure attempt counter (engines mutate on retry).
    attempt: int = 0
    #: Earliest dispatch time (simulated-engine retry backoff).
    ready_at: float = 0.0
    #: Provenance taskid while running (simulated engine bookkeeping).
    tid: int | None = None


class ReadyQueue:
    """Scheduler-ordered pool of dispatchable :class:`WorkItem`\\ s.

    With a :class:`~repro.workflow.scheduler.Scheduler`, pop order
    follows ``job_priority`` (highest first); *equal* priorities break
    deterministically on the lineage key (lexicographic), then arrival.
    Under pipelining, arrival order is completion order — which thread
    or node finished first — so a FIFO tie-break would make dispatch
    order nondeterministic run to run; the key tie-break is what lets
    the distributed pull protocol hand out identical task sequences for
    identical inputs. Without a scheduler, pop order is plain FIFO
    arrival — the pre-refactor LocalEngine behavior, where arrival *is*
    the intended order.

    ``cost_fn`` supplies each pushed item's expected cost when the
    caller doesn't pass one explicitly — this is how the engines feed
    *learned* online service-time estimates into placement instead of
    the static per-activity table.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        cost_fn=None,
    ) -> None:
        self.scheduler = scheduler
        self.cost_fn = cost_fn
        self._heap: list[tuple[float, str, int, WorkItem]] = []
        self._seq = itertools.count()
        self._arrivals = itertools.count()

    def push(self, item: WorkItem, expected_cost: float | None = None) -> None:
        if expected_cost is None:
            expected_cost = self.cost_fn(item) if self.cost_fn else 0.0
        if self.scheduler is None:
            priority = 0.0
            tiebreak = ""
        else:
            priority = self.scheduler.job_priority(
                PendingActivation(
                    key=item.key,
                    expected_cost=expected_cost,
                    arrival=next(self._arrivals),
                )
            )
            tiebreak = item.key
        heapq.heappush(self._heap, (-priority, tiebreak, next(self._seq), item))

    def pop(self) -> WorkItem:
        return heapq.heappop(self._heap)[3]

    def items(self):
        """Iterate queued work items (no particular order)."""
        for _, _, _, item in self._heap:
            yield item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class _StageBuffer:
    """Tuples parked at a barrier stage until its upstream drains."""

    entries: list[tuple[dict, str, str | None]] = field(default_factory=list)


class DataflowState:
    """Activation DAG bookkeeping shared by both engines.

    The engine owns *when* and *where* items run; this class owns *what
    becomes ready when*: spawning downstream items as outputs arrive,
    holding barrier stages (REDUCE always; every stage when
    ``pipeline=False``) until their upstream fully drains, assigning
    lineage-stable keys, counting spawned activations, collecting final
    outputs, and recording activation-dependency edges into provenance.
    """

    def __init__(
        self,
        workflow: Workflow,
        *,
        pipeline: bool = True,
        store: ProvenanceStore | None = None,
        wkfid: int | None = None,
        actids: dict[str, int] | None = None,
        journal=None,
    ) -> None:
        self.workflow = workflow
        self.pipeline = pipeline
        self.store = store
        self.wkfid = wkfid
        self.actids = actids or {}
        #: Optional :class:`~repro.workflow.journal.RunJournal`: every
        #: released item logs a ``scheduled`` event, every successful
        #: completion a ``completed`` event (flush barrier) — the
        #: crash-resume record.
        self.journal = journal
        self._n = len(workflow.activities)
        #: Spawned-but-not-retired items per stage.
        self._inflight = [0] * self._n
        self._buffers: dict[int, _StageBuffer] = {}
        #: Barrier stages whose buffered work has been released.
        self._fired: set[int] = set()
        #: Every WorkItem ever released (includes later-blocked items and
        #: the single REDUCE activation per REDUCE stage) — the report's
        #: ``total_activations``.
        self.spawned = 0
        #: Output tuples that flowed past the last activity.
        self.final: list[dict] = []

    # -- queries -------------------------------------------------------------
    def _is_barrier(self, stage: int) -> bool:
        if self.workflow.activities[stage].operator is Operator.REDUCE:
            return True
        return not self.pipeline

    def done(self) -> bool:
        """No in-flight work anywhere (barriers release eagerly)."""
        return not any(self._inflight)

    # -- transitions ---------------------------------------------------------
    def seed(self, relation: Relation) -> list[WorkItem]:
        """Feed the input relation into stage 0; returns ready items."""
        items: list[WorkItem] = []
        for i, tup in enumerate(relation):
            items.extend(self._spawn(0, dict(tup), tuple_key(tup, i), None))
        items.extend(self._release())
        return items

    def complete(
        self, item: WorkItem, outputs: list[dict], *, record: bool = True
    ) -> list[WorkItem]:
        """Retire ``item`` with its outputs; returns newly-ready items.

        Outputs past the last activity land in :attr:`final`; others
        spawn downstream activations (possibly parked at a barrier).
        A successful completion is journaled through the flush barrier
        (``record=False`` is the :meth:`retire` path — the engine logs
        the failed/aborted/blocked event itself).
        """
        if record and self.journal is not None:
            self.journal.completed(item.stage, item.key, outputs)
        self._inflight[item.stage] -= 1
        items: list[WorkItem] = []
        nxt = item.stage + 1
        if nxt >= self._n:
            self.final.extend(outputs)
        else:
            child_tag = self.workflow.activities[nxt].tag
            for k, out in enumerate(outputs):
                key = lineage_key(out, item.key, child_tag, k)
                items.extend(self._spawn(nxt, out, key, item.key))
        items.extend(self._release())
        return items

    def retire(self, item: WorkItem) -> list[WorkItem]:
        """Retire ``item`` without outputs (blocked/aborted/failed)."""
        return self.complete(item, [], record=False)

    # -- internals -----------------------------------------------------------
    def _spawn(
        self, stage: int, tup: dict, key: str, parent_key: str | None
    ) -> list[WorkItem]:
        activity = self.workflow.activities[stage]
        if activity.operator is Operator.REDUCE:
            # All contributions collapse into one activation whose key is
            # the stage itself; each contributing parent gets an edge.
            self._record_edge(stage, f"reduce-{activity.tag}", parent_key)
            self._buffers.setdefault(stage, _StageBuffer()).entries.append(
                (tup, key, parent_key)
            )
            return []
        self._record_edge(stage, key, parent_key)
        if not self.pipeline and stage not in self._fired:
            self._buffers.setdefault(stage, _StageBuffer()).entries.append(
                (tup, key, parent_key)
            )
            return []
        return [self._emit(stage, tup, key, parent_key)]

    def _emit(
        self, stage: int, tup: dict, key: str, parent_key: str | None
    ) -> WorkItem:
        self._inflight[stage] += 1
        self.spawned += 1
        if self.journal is not None:
            self.journal.scheduled(stage, key, tup, parent_key)
        return WorkItem(stage, tup, key, parent_key)

    def _release(self) -> list[WorkItem]:
        """Fire barrier stages whose entire upstream has drained.

        Scans stages in order, stopping at the first stage with live
        work: a barrier further downstream cannot fire while anything
        upstream of it might still emit. Firing cascades through empty
        barriers (e.g. a REDUCE over an empty filtered stream still runs
        exactly once, over zero tuples — matching the historical
        engines).
        """
        released: list[WorkItem] = []
        for stage in range(self._n):
            if stage not in self._fired and self._is_barrier(stage):
                self._fired.add(stage)
                activity = self.workflow.activities[stage]
                buffer = self._buffers.pop(stage, _StageBuffer())
                if activity.operator is Operator.REDUCE:
                    tuples = [t for t, _, _ in buffer.entries]
                    released.append(
                        self._emit(
                            stage,
                            {"__tuples__": tuples},
                            f"reduce-{activity.tag}",
                            None,
                        )
                    )
                else:
                    for tup, key, parent in buffer.entries:
                        released.append(self._emit(stage, tup, key, parent))
            if self._inflight[stage]:
                break
        return released

    def _record_edge(
        self, stage: int, child_key: str, parent_key: str | None
    ) -> None:
        if self.store is None or self.wkfid is None or parent_key is None:
            return
        child_tag = self.workflow.activities[stage].tag
        parent_tag = self.workflow.activities[stage - 1].tag
        self.store.record_dependency(
            self.wkfid,
            child_key,
            self.actids.get(child_tag, 0),
            parent_key,
            self.actids.get(parent_tag, 0),
        )
