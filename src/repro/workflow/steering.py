"""Runtime steering: monitor a running workflow and intervene.

"It is worth noticing that SciCumulus allows for runtime provenance
query, which is a unique feature, yet it allows for user steering and
anticipating results." — the scientist watches the provenance store
while the workflow runs, spots abnormal activations (e.g. the Hg
receptors stuck in a looping state), and aborts the matching inputs so
no future activation wastes time on them.

:class:`SteeringControl` is shared with the engines through the run
context (``context['steering']``); engines consult
:meth:`SteeringControl.should_abort` before dispatching an activation.
:class:`SteeringMonitor` implements the scientist's side: partial
statistics, anticipated results and abnormal-activation detection over a
live store.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.provenance.store import ProvenanceStore


class SteeringControl:
    """Thread-safe set of (activity, tuple-key) abort rules."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._abort_keys: set[str] = set()
        self._abort_pairs: set[tuple[str, str]] = set()

    def abort_tuple(self, tuple_key: str) -> None:
        """Abort every future activation of this input tuple."""
        with self._lock:
            self._abort_keys.add(tuple_key)

    def abort_activation(self, activity_tag: str, tuple_key: str) -> None:
        """Abort only one activity's activation for a tuple."""
        with self._lock:
            self._abort_pairs.add((activity_tag, tuple_key))

    def should_abort(self, activity_tag: str, tuple_key: str) -> bool:
        with self._lock:
            return (
                tuple_key in self._abort_keys
                or (activity_tag, tuple_key) in self._abort_pairs
            )

    @property
    def rules(self) -> int:
        with self._lock:
            return len(self._abort_keys) + len(self._abort_pairs)


@dataclass
class AbnormalActivation:
    """An activation flagged by the monitor."""

    taskid: int
    activity_tag: str
    tuple_key: str
    running_seconds: float
    activity_avg_seconds: float
    reason: str = "running far beyond the activity average"


@dataclass
class SteeringMonitor:
    """Provenance-backed runtime monitoring (the scientist's console)."""

    store: ProvenanceStore
    wkfid: int
    control: SteeringControl = field(default_factory=SteeringControl)

    def progress(self) -> dict[str, int]:
        """Live activation counts by status."""
        return self.store.counts_by_status(self.wkfid)

    def anticipated_results(self, key: str = "feb", limit: int = 10) -> list[tuple[str, float]]:
        """Peek at domain extracts before the workflow finishes.

        The paper's "anticipating results": the best binding energies
        recorded so far, while docking activations are still running.
        """
        rows = self.store.sql(
            """
            SELECT t.tuple_key, CAST(e.value AS REAL) AS v
            FROM hextract e
            JOIN hactivation t ON e.taskid = t.taskid
            JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? AND e.key = ?
            ORDER BY v ASC LIMIT ?
            """,
            (self.wkfid, key, limit),
        )
        return [(r["tuple_key"], r["v"]) for r in rows]

    def abnormal_activations(
        self, now: float, threshold: float = 10.0, min_seconds: float = 5.0
    ) -> list[AbnormalActivation]:
        """Activations running ``threshold`` x their activity's average.

        This is how the paper's users found the Hg looping state: no
        error message, just runtimes wildly beyond the norm.
        """
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        rows = self.store.sql(
            """
            SELECT t.taskid, t.tuple_key, t.starttime, a.tag,
                   (SELECT AVG(t2.endtime - t2.starttime)
                    FROM hactivation t2
                    WHERE t2.actid = t.actid AND t2.status = 'FINISHED') AS avg_s
            FROM hactivation t JOIN hactivity a ON t.actid = a.actid
            WHERE a.wkfid = ? AND t.status = 'RUNNING'
            """,
            (self.wkfid,),
        )
        flagged = []
        for r in rows:
            running = now - r["starttime"]
            avg = r["avg_s"]
            baseline = max(min_seconds, (avg or 0.0) * threshold)
            if running > baseline:
                flagged.append(
                    AbnormalActivation(
                        taskid=r["taskid"],
                        activity_tag=r["tag"],
                        tuple_key=r["tuple_key"],
                        running_seconds=running,
                        activity_avg_seconds=avg or 0.0,
                    )
                )
        return flagged

    def abort_abnormal(self, now: float, threshold: float = 10.0) -> list[AbnormalActivation]:
        """Flag and abort: the paper's intervention loop in one call."""
        flagged = self.abnormal_activations(now, threshold)
        for f in flagged:
            self.control.abort_tuple(f.tuple_key)
        return flagged
