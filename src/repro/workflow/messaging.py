"""MPJ-style message passing: SciCumulus' distribution layer.

The real SciCumulus implements its distribution and execution layers
over MPJ (MPI for Java): rank 0 is the master holding the activation
queue; worker ranks request work, execute, and return results. This
module reproduces that substrate as a deterministic simulation — typed
messages, latency-modelled channels on the
:class:`~repro.cloud.simclock.SimClock`, and the master/worker protocol
— and exposes the measured communication overhead that feeds the
scheduler's dispatch cost (the paper's "high communication latency"
factor in cloud speedup).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.cloud.simclock import SimClock


class MessageTag(Enum):
    WORK_REQUEST = "WORK_REQUEST"
    TASK = "TASK"
    RESULT = "RESULT"
    FAILURE = "FAILURE"
    SHUTDOWN = "SHUTDOWN"


@dataclass(frozen=True)
class Message:
    tag: MessageTag
    src: int
    dst: int
    payload: object = None
    msg_id: int = 0


class MessagingError(RuntimeError):
    """Raised for protocol violations."""


class Channel:
    """Point-to-point ordered channel with transfer latency.

    Deliveries are scheduled on the shared clock; per-message latency is
    ``base_latency + len(payload repr) / bandwidth`` — a coarse but
    monotone model of pickled-object MPI sends.
    """

    def __init__(
        self,
        clock: SimClock,
        base_latency: float = 0.001,
        bandwidth: float = 10e6,
    ) -> None:
        if base_latency < 0 or bandwidth <= 0:
            raise MessagingError("latency must be >= 0 and bandwidth positive")
        self.clock = clock
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self.delivered_bytes = 0
        self.message_count = 0

    def latency_of(self, message: Message) -> float:
        size = len(repr(message.payload).encode())
        return self.base_latency + size / self.bandwidth

    def send(self, message: Message, deliver: Callable[[Message], None]) -> float:
        """Schedule delivery; returns the simulated latency."""
        latency = self.latency_of(message)
        self.delivered_bytes += len(repr(message.payload).encode())
        self.message_count += 1
        self.clock.schedule(latency, lambda: deliver(message))
        return latency


@dataclass
class WorkerStats:
    rank: int
    tasks_done: int = 0
    tasks_failed: int = 0
    busy_seconds: float = 0.0


class MasterWorkerProtocol:
    """Rank-0 master + N workers over latency-modelled channels.

    ``run`` drives a full job set to completion: workers request work,
    the master hands out tasks (largest-first, mirroring the greedy cost
    model), workers "execute" for their declared service time, results
    flow back, and everybody is shut down when the queue drains.
    ``service_fn`` maps a task payload to its service seconds;
    ``fail_fn`` (optional) decides injected failures, which the master
    re-queues — the re-execution mechanism at the messaging level.
    """

    def __init__(
        self,
        n_workers: int,
        clock: SimClock | None = None,
        channel: Channel | None = None,
        max_retries: int = 3,
    ) -> None:
        if n_workers < 1:
            raise MessagingError("need at least one worker")
        self.clock = clock or SimClock()
        self.channel = channel or Channel(self.clock)
        self.n_workers = n_workers
        self.max_retries = max_retries
        self._ids = itertools.count(1)
        self.stats = {r: WorkerStats(rank=r) for r in range(1, n_workers + 1)}
        self.results: list[tuple[object, object]] = []
        self._queue: list[tuple[object, int]] = []  # (task, attempt)
        self._outstanding = 0
        self._service_fn: Callable[[object], float] | None = None
        self._result_fn: Callable[[object], object] | None = None
        self._fail_fn: Callable[[object, int], bool] | None = None
        self.dropped: list[object] = []

    # -- master side -----------------------------------------------------
    def _master_receive(self, message: Message) -> None:
        if message.tag in (MessageTag.WORK_REQUEST, MessageTag.RESULT, MessageTag.FAILURE):
            worker = message.src
            if message.tag is MessageTag.RESULT:
                task, value = message.payload  # type: ignore[misc]
                self.results.append((task, value))
                self.stats[worker].tasks_done += 1
                self._outstanding -= 1
            elif message.tag is MessageTag.FAILURE:
                task, attempt = message.payload  # type: ignore[misc]
                self.stats[worker].tasks_failed += 1
                self._outstanding -= 1
                if attempt + 1 < self.max_retries:
                    self._queue.append((task, attempt + 1))
                else:
                    self.dropped.append(task)
            self._dispatch_to(worker)
        else:  # pragma: no cover - protocol guard
            raise MessagingError(f"master got unexpected {message.tag}")

    def _dispatch_to(self, worker: int) -> None:
        if self._queue:
            # Largest service time first (greedy cost model).
            self._queue.sort(key=lambda p: self._service_fn(p[0]), reverse=True)
            task, attempt = self._queue.pop(0)
            self._outstanding += 1
            msg = Message(
                MessageTag.TASK, 0, worker, (task, attempt), next(self._ids)
            )
            self.channel.send(msg, self._worker_receive)
        elif self._outstanding == 0:
            msg = Message(MessageTag.SHUTDOWN, 0, worker, None, next(self._ids))
            self.channel.send(msg, self._worker_receive)

    # -- worker side ----------------------------------------------------------
    def _worker_receive(self, message: Message) -> None:
        worker = message.dst
        if message.tag is MessageTag.TASK:
            task, attempt = message.payload  # type: ignore[misc]
            service = self._service_fn(task)
            self.stats[worker].busy_seconds += service

            def finish() -> None:
                if self._fail_fn is not None and self._fail_fn(task, attempt):
                    reply = Message(
                        MessageTag.FAILURE, worker, 0, (task, attempt),
                        next(self._ids),
                    )
                else:
                    value = self._result_fn(task) if self._result_fn else task
                    reply = Message(
                        MessageTag.RESULT, worker, 0, (task, value),
                        next(self._ids),
                    )
                self.channel.send(reply, self._master_receive)

            self.clock.schedule(service, finish)
        elif message.tag is MessageTag.SHUTDOWN:
            pass  # worker exits
        else:  # pragma: no cover - protocol guard
            raise MessagingError(f"worker got unexpected {message.tag}")

    # -- driver ------------------------------------------------------------------
    def run(
        self,
        tasks: list,
        service_fn: Callable[[object], float],
        result_fn: Callable[[object], object] | None = None,
        fail_fn: Callable[[object, int], bool] | None = None,
    ) -> float:
        """Execute all tasks; returns the simulated makespan."""
        self._service_fn = service_fn
        self._result_fn = result_fn
        self._fail_fn = fail_fn
        self._queue = [(t, 0) for t in tasks]
        start = self.clock.now
        # Workers announce themselves (MPI ranks starting up).
        for worker in range(1, self.n_workers + 1):
            msg = Message(MessageTag.WORK_REQUEST, worker, 0, None, next(self._ids))
            self.channel.send(msg, self._master_receive)
        self.clock.run()
        return self.clock.now - start

    @property
    def communication_seconds(self) -> float:
        """Total simulated time spent in message transfer."""
        return self.channel.message_count * self.channel.base_latency
