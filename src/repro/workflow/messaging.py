"""MPJ-style message passing: the shared master/worker wire vocabulary.

The real SciCumulus implements its distribution and execution layers
over MPJ (MPI for Java): rank 0 is the master holding the activation
queue; worker ranks request work, execute, and return results. This
module owns that vocabulary for *both* planes:

* The deterministic simulation — typed messages, latency-modelled
  channels on the :class:`~repro.cloud.simclock.SimClock`, and the
  :class:`MasterWorkerProtocol` — exposing the measured communication
  overhead that feeds the scheduler's dispatch cost (the paper's "high
  communication latency" factor in cloud speedup).
* The real socket transport behind the distributed backend
  (:mod:`repro.workflow.distributed` /
  :mod:`repro.workflow.worker`): the same :class:`Message` /
  :class:`MessageTag` records, serialized as length-prefixed pickled
  frames over TCP (:func:`send_frame` / :func:`recv_frame` /
  :class:`FrameConn`), plus the content-addressed artifact-exchange
  client (:func:`fetch_artifact`).

Because both planes speak the same vocabulary, the simulated channel's
cost model charges the *actual* pickled frame size
(:func:`payload_nbytes`) — what the socket transport really sends — not
a ``repr`` proxy.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import struct
import threading
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.cloud.simclock import SimClock


class MessageTag(Enum):
    # Pull-protocol core (simulation and wire alike).
    WORK_REQUEST = "WORK_REQUEST"
    TASK = "TASK"
    RESULT = "RESULT"
    FAILURE = "FAILURE"
    SHUTDOWN = "SHUTDOWN"
    # Wire-only extensions for the socket transport.
    HELLO = "HELLO"
    SETUP = "SETUP"
    HEARTBEAT = "HEARTBEAT"
    ABORT = "ABORT"
    ARTIFACT_REQUEST = "ARTIFACT_REQUEST"
    ARTIFACT_DATA = "ARTIFACT_DATA"
    NODE_STATS = "NODE_STATS"
    # Batched transport: K tasks per frame out, coalesced results back.
    TASK_BATCH = "TASK_BATCH"
    RESULT_BATCH = "RESULT_BATCH"


@dataclass(frozen=True)
class Message:
    tag: MessageTag
    src: int
    dst: int
    payload: object = None
    msg_id: int = 0


class MessagingError(RuntimeError):
    """Raised for protocol violations."""


class ContextRef:
    """Wire placeholder for the node-resident run context.

    Task frames never carry the full run context — the director ships it
    once per node in the SETUP frame. Anywhere the coordinator's shipped
    context appears in a task's argument tuple, the director substitutes
    a :class:`ContextRef`; the worker substitutes its node context (the
    shipped context plus node-local entries such as the local artifact
    plane handle) back in before executing.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ContextRef>"


#: Shared sentinel instance (identity is irrelevant — workers match on
#: ``isinstance`` because unpickling creates a fresh instance).
CONTEXT_REF = ContextRef()


def payload_nbytes(payload: object) -> int:
    """Actual wire size of a payload: its pickled byte count.

    This is what the socket transport sends per frame (minus the fixed
    header), so the simulated channel charges it too. Unpicklable
    payloads (simulation-only closures) fall back to the ``repr`` size.
    """
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return len(repr(payload).encode())


class Channel:
    """Point-to-point ordered channel with transfer latency.

    Deliveries are scheduled on the shared clock; per-message latency is
    ``base_latency + pickled-payload-bytes / bandwidth`` — the byte
    count the real transport's frames carry for the same payload.
    """

    def __init__(
        self,
        clock: SimClock,
        base_latency: float = 0.001,
        bandwidth: float = 10e6,
        compress_min_bytes: int | None = None,
    ) -> None:
        if base_latency < 0 or bandwidth <= 0:
            raise MessagingError("latency must be >= 0 and bandwidth positive")
        self.clock = clock
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        #: ``None`` models the raw transport (default, parity with the
        #: uncompressed wire); an int models ``--compress-frames`` with
        #: that threshold, charging deflated frame sizes.
        self.compress_min_bytes = compress_min_bytes
        self.delivered_bytes = 0
        self.bytes_saved = 0
        self.message_count = 0

    def size_of(self, message: Message) -> int:
        """Bytes this message's payload occupies on the wire."""
        if self.compress_min_bytes is None:
            return payload_nbytes(message.payload)
        return compressed_nbytes(message.payload, self.compress_min_bytes)

    def latency_of(self, message: Message) -> float:
        return self.base_latency + self.size_of(message) / self.bandwidth

    def send(self, message: Message, deliver: Callable[[Message], None]) -> float:
        """Schedule delivery; returns the simulated latency."""
        latency = self.latency_of(message)
        wire = self.size_of(message)
        self.delivered_bytes += wire
        if self.compress_min_bytes is not None:
            self.bytes_saved += payload_nbytes(message.payload) - wire
        self.message_count += 1
        self.clock.schedule(latency, lambda: deliver(message))
        return latency


@dataclass
class WorkerStats:
    rank: int
    tasks_done: int = 0
    tasks_failed: int = 0
    busy_seconds: float = 0.0
    #: Wire accounting: payload bytes this worker sent to / received
    #: from the master (task frames in, result/failure frames out).
    bytes_sent: int = 0
    bytes_received: int = 0


class MasterWorkerProtocol:
    """Rank-0 master + N workers over latency-modelled channels.

    ``run`` drives a full job set to completion: workers request work,
    the master hands out tasks (largest-first, mirroring the greedy cost
    model), workers "execute" for their declared service time, results
    flow back, and everybody is shut down when the queue drains.
    ``service_fn`` maps a task payload to its service seconds;
    ``fail_fn`` (optional) decides injected failures, which the master
    re-queues — the re-execution mechanism at the messaging level.
    """

    def __init__(
        self,
        n_workers: int,
        clock: SimClock | None = None,
        channel: Channel | None = None,
        max_retries: int = 3,
    ) -> None:
        if n_workers < 1:
            raise MessagingError("need at least one worker")
        self.clock = clock or SimClock()
        self.channel = channel or Channel(self.clock)
        self.n_workers = n_workers
        self.max_retries = max_retries
        self._ids = itertools.count(1)
        self.stats = {r: WorkerStats(rank=r) for r in range(1, n_workers + 1)}
        self.results: list[tuple[object, object]] = []
        self._queue: list[tuple[object, int]] = []  # (task, attempt)
        self._outstanding = 0
        self._service_fn: Callable[[object], float] | None = None
        self._result_fn: Callable[[object], object] | None = None
        self._fail_fn: Callable[[object, int], bool] | None = None
        self.dropped: list[object] = []

    # -- master side -----------------------------------------------------
    def _master_receive(self, message: Message) -> None:
        if message.tag in (MessageTag.WORK_REQUEST, MessageTag.RESULT, MessageTag.FAILURE):
            worker = message.src
            if message.tag is MessageTag.RESULT:
                task, value = message.payload  # type: ignore[misc]
                self.results.append((task, value))
                self.stats[worker].tasks_done += 1
                self._outstanding -= 1
            elif message.tag is MessageTag.FAILURE:
                task, attempt = message.payload  # type: ignore[misc]
                self.stats[worker].tasks_failed += 1
                self._outstanding -= 1
                if attempt + 1 < self.max_retries:
                    self._queue.append((task, attempt + 1))
                else:
                    self.dropped.append(task)
            self._dispatch_to(worker)
        else:  # pragma: no cover - protocol guard
            raise MessagingError(f"master got unexpected {message.tag}")

    def _dispatch_to(self, worker: int) -> None:
        if self._queue:
            # Largest service time first (greedy cost model).
            self._queue.sort(key=lambda p: self._service_fn(p[0]), reverse=True)
            task, attempt = self._queue.pop(0)
            self._outstanding += 1
            msg = Message(
                MessageTag.TASK, 0, worker, (task, attempt), next(self._ids)
            )
            self.channel.send(msg, self._worker_receive)
        elif self._outstanding == 0:
            msg = Message(MessageTag.SHUTDOWN, 0, worker, None, next(self._ids))
            self.channel.send(msg, self._worker_receive)

    # -- worker side ----------------------------------------------------------
    def _worker_receive(self, message: Message) -> None:
        worker = message.dst
        if message.tag is MessageTag.TASK:
            task, attempt = message.payload  # type: ignore[misc]
            service = self._service_fn(task)
            self.stats[worker].busy_seconds += service
            self.stats[worker].bytes_received += self.channel.size_of(message)

            def finish() -> None:
                if self._fail_fn is not None and self._fail_fn(task, attempt):
                    reply = Message(
                        MessageTag.FAILURE, worker, 0, (task, attempt),
                        next(self._ids),
                    )
                else:
                    value = self._result_fn(task) if self._result_fn else task
                    reply = Message(
                        MessageTag.RESULT, worker, 0, (task, value),
                        next(self._ids),
                    )
                self.stats[worker].bytes_sent += self.channel.size_of(reply)
                self.channel.send(reply, self._master_receive)

            self.clock.schedule(service, finish)
        elif message.tag is MessageTag.SHUTDOWN:
            pass  # worker exits
        else:  # pragma: no cover - protocol guard
            raise MessagingError(f"worker got unexpected {message.tag}")

    # -- driver ------------------------------------------------------------------
    def run(
        self,
        tasks: list,
        service_fn: Callable[[object], float],
        result_fn: Callable[[object], object] | None = None,
        fail_fn: Callable[[object, int], bool] | None = None,
    ) -> float:
        """Execute all tasks; returns the simulated makespan."""
        self._service_fn = service_fn
        self._result_fn = result_fn
        self._fail_fn = fail_fn
        self._queue = [(t, 0) for t in tasks]
        start = self.clock.now
        # Workers announce themselves (MPI ranks starting up).
        for worker in range(1, self.n_workers + 1):
            msg = Message(MessageTag.WORK_REQUEST, worker, 0, None, next(self._ids))
            self.channel.send(msg, self._master_receive)
        self.clock.run()
        return self.clock.now - start

    @property
    def communication_seconds(self) -> float:
        """Total simulated time spent in message transfer."""
        return self.channel.message_count * self.channel.base_latency


# -- real socket transport ----------------------------------------------------

#: Frame header: big-endian uint32 body length + one flags byte.
FRAME_HEADER = struct.Struct(">IB")

#: Flags byte: bit 0 marks a zlib-deflated body. A receiver always
#: honors the flag — HELLO/SETUP negotiation only governs whether a
#: *sender* is allowed to set it.
FLAG_ZLIB = 0x01

#: Sanity bound on a single frame (a corrupt header must not allocate
#: gigabytes); generous enough for any map bundle the exchange serves.
MAX_FRAME_BYTES = 1 << 30

#: Bodies below this pickled size never compress: the zlib header plus
#: CPU outweighs any savings on credit/heartbeat-sized frames.
COMPRESS_MIN_BYTES = 512


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before any byte."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise MessagingError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def compressed_nbytes(payload: object, min_bytes: int = COMPRESS_MIN_BYTES) -> int:
    """On-wire payload size under the transport's compression rule.

    Mirrors :func:`send_frame`: bodies under ``min_bytes`` ship raw, and
    a deflated body is only kept when it is actually smaller.
    """
    raw = payload_nbytes(payload)
    if raw < min_bytes:
        return raw
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return raw
    return min(raw, len(zlib.compress(blob)))


def send_frame(
    sock: socket.socket,
    message: Message,
    *,
    compress: bool = False,
    compress_min_bytes: int = COMPRESS_MIN_BYTES,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> tuple[int, int]:
    """Write one length-prefixed pickled message.

    Returns ``(wire_bytes, raw_bytes)`` — both include the header, so
    ``raw_bytes - wire_bytes`` is the number of bytes compression saved
    on this frame (zero for raw frames). With ``compress`` the body is
    zlib-deflated when it reaches ``compress_min_bytes`` and the deflate
    actually shrinks it; the flags byte tells the receiver.
    """
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    raw_len = len(body)
    flags = 0
    if compress and raw_len >= compress_min_bytes:
        deflated = zlib.compress(body)
        if len(deflated) < raw_len:
            body = deflated
            flags |= FLAG_ZLIB
    if len(body) > max_frame_bytes:
        raise MessagingError(f"frame too large ({len(body)} bytes)")
    sock.sendall(FRAME_HEADER.pack(len(body), flags) + body)
    return FRAME_HEADER.size + len(body), FRAME_HEADER.size + raw_len


def recv_frame(
    sock: socket.socket,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> tuple[Message, int, int] | None:
    """Read one frame; ``(message, wire_bytes, raw_bytes)`` or ``None`` on EOF.

    The length is validated against ``max_frame_bytes`` *before* any
    body allocation, so a corrupt or hostile header raises a clear
    :class:`MessagingError` instead of attempting a multi-GB ``recv``.
    Corrupt bodies (bad zlib stream, bad pickle, non-:class:`Message`
    object) also surface as :class:`MessagingError`.
    """
    header = _recv_exact(sock, FRAME_HEADER.size)
    if header is None:
        return None
    length, flags = FRAME_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise MessagingError(
            f"oversized frame announced ({length} bytes > "
            f"{max_frame_bytes} limit)"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise MessagingError("connection closed between header and body")
    if flags & FLAG_ZLIB:
        try:
            body = zlib.decompress(body)
        except zlib.error as exc:
            raise MessagingError(f"corrupt compressed frame: {exc}") from exc
        if len(body) > max_frame_bytes:
            raise MessagingError(
                f"decompressed frame too large ({len(body)} bytes)"
            )
    try:
        message = pickle.loads(body)
    except Exception as exc:
        raise MessagingError(f"corrupt frame body: {exc!r}") from exc
    if not isinstance(message, Message):
        raise MessagingError(f"expected a Message frame, got {type(message)}")
    return message, FRAME_HEADER.size + length, FRAME_HEADER.size + len(body)


class FrameConn:
    """One socket speaking length-prefixed :class:`Message` frames.

    Sends are serialized under a lock so a heartbeat thread and a main
    protocol thread can share the connection; receives are expected from
    a single reader thread. Byte counters accumulate the full on-wire
    size (header included) for the run report's transport accounting;
    when compression is on, ``bytes_sent``/``bytes_received`` are the
    actual on-wire (compressed) sizes and ``bytes_saved_*`` hold the
    delta versus the raw pickled frames.

    Compression is off until :meth:`enable_compression` — the HELLO
    capability handshake decides per peer. Receiving compressed frames
    always works regardless (the flags byte is authoritative).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self._send_lock = threading.Lock()
        self._ids = itertools.count(1)
        self.compress = False
        self.compress_min_bytes = COMPRESS_MIN_BYTES
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_saved_sent = 0
        self.bytes_saved_received = 0
        self.frames_compressed_sent = 0
        self.frames_compressed_received = 0

    def enable_compression(self, min_bytes: int | None = None) -> None:
        """Start compressing outbound frames past the size threshold."""
        self.compress = True
        if min_bytes is not None:
            self.compress_min_bytes = max(0, int(min_bytes))

    def send(
        self,
        tag: MessageTag,
        payload: object = None,
        *,
        src: int = 0,
        dst: int = 0,
    ) -> None:
        message = Message(tag, src, dst, payload, next(self._ids))
        with self._send_lock:
            wire, raw = send_frame(
                self.sock,
                message,
                compress=self.compress,
                compress_min_bytes=self.compress_min_bytes,
                max_frame_bytes=self.max_frame_bytes,
            )
            self.bytes_sent += wire
            self.frames_sent += 1
            if raw > wire:
                self.bytes_saved_sent += raw - wire
                self.frames_compressed_sent += 1

    def recv(self) -> Message | None:
        got = recv_frame(self.sock, max_frame_bytes=self.max_frame_bytes)
        if got is None:
            return None
        message, wire, raw = got
        self.bytes_received += wire
        self.frames_received += 1
        if raw > wire:
            self.bytes_saved_received += raw - wire
            self.frames_compressed_received += 1
        return message

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


def connect(address: tuple[str, int], timeout: float | None = None) -> FrameConn:
    """Open a framed connection to ``address`` (director or exchange)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)
    return FrameConn(sock)


def fetch_artifact(
    address: tuple[str, int],
    kind: str,
    key: str,
    timeout: float = 30.0,
    compress: bool = False,
) -> bytes | None:
    """Content-addressed artifact-exchange client: fetch one bundle.

    Opens a short-lived framed connection to the director's exchange,
    asks for the ``(kind, key)`` bundle, and returns its raw bytes (an
    ``.npz`` file image) or ``None`` when the director doesn't have it.
    ``compress`` advertises that the caller accepts zlib-deflated
    ARTIFACT_DATA frames (a per-frame flag the receive path always
    honors, so this only saves wire bytes — it never changes results).
    Any transport failure degrades to a miss — the caller's map cache
    falls through to building the artifact locally.
    """
    try:
        conn = connect(address, timeout=timeout)
    except OSError:
        return None
    try:
        conn.sock.settimeout(timeout)
        conn.send(
            MessageTag.ARTIFACT_REQUEST,
            {"kind": kind, "key": key, "compress": bool(compress)},
        )
        reply = conn.recv()
    except (OSError, MessagingError):
        return None
    finally:
        conn.close()
    if reply is None or reply.tag is not MessageTag.ARTIFACT_DATA:
        return None
    payload = reply.payload if isinstance(reply.payload, dict) else {}
    blob = payload.get("blob")
    return blob if isinstance(blob, (bytes, bytearray)) else None
