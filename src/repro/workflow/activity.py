"""Activities, operators and the workflow container.

An :class:`Activity` couples an algebraic operator type with the Python
callable that processes one tuple (real mode) and an optional cost hint
(simulated mode). A :class:`Workflow` is a linear pipeline of activities
— exactly SciDock's shape; branching (AD4 vs Vina) is expressed by a
Filter/SplitMap emitting tuples tagged with their route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.workflow.extractor import Extractor
from repro.workflow.template import ActivityTemplate


class Operator(str, Enum):
    """SciCumulus' workflow algebra (Ogasawara et al., VLDB 2011)."""

    MAP = "MAP"  # 1 tuple -> 1 tuple
    SPLIT_MAP = "SPLIT_MAP"  # 1 tuple -> N tuples
    FILTER = "FILTER"  # 1 tuple -> 0..1 tuples
    REDUCE = "REDUCE"  # all tuples -> 1 tuple
    SR_QUERY = "SR_QUERY"  # relational query over one relation
    MR_QUERY = "MR_QUERY"  # relational query over many relations


#: Real-mode activation function: (tuple, context) -> output tuples.
ActivationFn = Callable[[dict, dict], list[dict]]

#: Simulated-mode cost hint: tuple -> service seconds on a baseline core.
CostFn = Callable[[dict], float]


class ActivityError(ValueError):
    """Raised for ill-formed activity definitions."""


def run_activation(
    fn: ActivationFn | None,
    operator: Operator,
    tag: str,
    tup: dict,
    context: dict,
) -> list[dict]:
    """Execute one activation and validate its output cardinality.

    Module-level (rather than a method) so the process-backend engine can
    ship ``(fn, operator, tag)`` to a worker by reference and run the
    activation there with identical semantics; :meth:`Activity.run` is
    the in-process wrapper over the same code.
    """
    if fn is None:
        raise ActivityError(f"activity {tag!r} has no callable")
    out = fn(tup, context)
    if out is None:
        out = []
    if operator is Operator.MAP and len(out) != 1:
        raise ActivityError(
            f"MAP activity {tag!r} must emit exactly 1 tuple, got {len(out)}"
        )
    if operator is Operator.FILTER and len(out) > 1:
        raise ActivityError(
            f"FILTER activity {tag!r} must emit 0 or 1 tuples, got {len(out)}"
        )
    return out


@dataclass
class Activity:
    """One step of the workflow."""

    tag: str
    operator: Operator = Operator.MAP
    fn: ActivationFn | None = None
    cost_fn: CostFn | None = None
    template: ActivityTemplate | None = None
    extractors: list[Extractor] = field(default_factory=list)
    description: str = ""
    #: Activations of this activity may enter a looping state for some
    #: inputs (set by SciDock for the receptor-preparation step).
    looping_predicate: Callable[[dict], bool] | None = None

    def __post_init__(self) -> None:
        if not self.tag:
            raise ActivityError("activity needs a tag")

    def run(self, tup: dict, context: dict) -> list[dict]:
        """Execute one activation in real mode."""
        return run_activation(self.fn, self.operator, self.tag, tup, context)

    def cost(self, tup: dict) -> float:
        """Expected service seconds (simulated mode)."""
        if self.cost_fn is None:
            return 1.0
        c = float(self.cost_fn(tup))
        if c < 0:
            raise ActivityError(f"negative cost for activity {self.tag!r}")
        return c

    def would_loop(self, tup: dict) -> bool:
        return bool(self.looping_predicate and self.looping_predicate(tup))


@dataclass
class Workflow:
    """A linear pipeline of activities over an input relation."""

    tag: str
    activities: list[Activity] = field(default_factory=list)
    description: str = ""
    exectag: str = ""
    expdir: str = ""

    def __post_init__(self) -> None:
        if not self.tag:
            raise ActivityError("workflow needs a tag")
        tags = [a.tag for a in self.activities]
        if len(set(tags)) != len(tags):
            raise ActivityError(f"duplicate activity tags in workflow: {tags}")

    def add(self, activity: Activity) -> "Workflow":
        if any(a.tag == activity.tag for a in self.activities):
            raise ActivityError(f"duplicate activity tag {activity.tag!r}")
        self.activities.append(activity)
        return self

    def activity(self, tag: str) -> Activity:
        for a in self.activities:
            if a.tag == tag:
                return a
        raise KeyError(f"no activity {tag!r} in workflow {self.tag!r}")

    def __len__(self) -> int:
        return len(self.activities)
