"""Worker node: the remote half of the distributed execution plane.

One process per node (``scidock worker --join HOST:PORT --slots N``),
speaking the framed wire protocol in :mod:`repro.workflow.messaging`:

* HELLO announces the node (id, slot count, pid); the director answers
  with SETUP carrying the run's shipped context, the artifact-exchange
  address and the heartbeat policy.
* The node builds its *node context* once per run: the shipped context
  plus node-local entries — a fresh cooperative-cancellation handle and
  a node-owned :class:`~repro.workflow.artifacts.ArtifactPlane` whose
  disk cache fetches missing bundles from the director's exchange. TASK
  frames never re-ship any of this: their argument tuples carry a
  :class:`~repro.workflow.messaging.ContextRef` placeholder that the
  node substitutes before executing.
* Work is pulled, not pushed: WORK_REQUEST{n} grants the director n
  task credits (the node's idle slots), one more after every completed
  task — so a slow node naturally receives less work.
* A daemon thread heartbeats at the policy interval; ABORT cancels a
  running task's cooperative token (the remote face of the watchdog);
  NODE_STATS requests report plane/transport counters and drop the
  run's cached worker state; SHUTDOWN (or director EOF) tears the node
  down.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.workflow.artifacts import ArtifactPlane, drop_run_state
from repro.workflow.fault import (
    ActivationCancelled,
    CancellationToken,
    CancelTokenHandle,
)
from repro.workflow.messaging import (
    ContextRef,
    FrameConn,
    MessageTag,
    MessagingError,
    connect,
)


def sleep_activation(tup: dict, context: dict) -> list[dict]:
    """Sleep-bound benchmark activation (importable on worker nodes).

    Sleeps ``tup["sleep_s"]`` seconds cooperatively and echoes the tuple
    — the scatter benchmark's stand-in for an I/O- or license-bound
    docking stage, chosen so a 2-node speedup is observable even on a
    single-core host.
    """
    seconds = float(tup.get("sleep_s", 0.01))
    token = context.get("cancel_token")
    if token is not None and hasattr(token, "sleep"):
        token.sleep(seconds)
    else:  # pragma: no cover - tokenless context
        time.sleep(seconds)
    return [dict(tup)]


class WorkerNode:
    """One node's full session against a director."""

    def __init__(
        self,
        address: tuple[str, int],
        *,
        slots: int = 2,
        node_id: str | None = None,
        map_cache: str | None = None,
        connect_timeout: float = 30.0,
    ) -> None:
        self.address = tuple(address)
        self.slots = max(1, int(slots))
        self.node_id = node_id or f"{socket.gethostname()}-{os.getpid()}"
        self.map_cache = map_cache
        self.connect_timeout = connect_timeout
        self.conn: FrameConn | None = None
        self.plane: ArtifactPlane | None = None
        self.context: dict | None = None
        self.cache_token: str | None = None
        self.tuples_done = 0
        self.tasks_failed = 0
        self.result_batches_sent = 0
        self._tokens: dict[int, CancellationToken] = {}
        self._tokens_lock = threading.Lock()
        self._handle = CancelTokenHandle()
        self._pool: ThreadPoolExecutor | None = None
        self._stop = threading.Event()
        # SETUP-negotiated transport config (legacy until told otherwise).
        self._batch_size = 1
        self._linger = 0.0
        # Completion coalescer (batching mode): finished-member entries
        # waiting to ride one RESULT_BATCH frame.
        self._results: list[dict] = []
        self._results_since = 0.0
        self._results_cv = threading.Condition()
        self._flusher: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------
    def run(self) -> int:
        """Join the director and serve tasks until shutdown/EOF."""
        self.conn = connect(self.address, timeout=self.connect_timeout)
        self.conn.send(
            MessageTag.HELLO,
            {
                "node_id": self.node_id,
                "slots": self.slots,
                "pid": os.getpid(),
                # Capability advertisement: this node can inflate zlib
                # frames (the director enables compression per peer only
                # when both sides agree).
                "compress": True,
            },
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix=f"{self.node_id}-slot"
        )
        try:
            while True:
                try:
                    message = self.conn.recv()
                except (MessagingError, OSError):
                    message = None
                if message is None:
                    return 0  # director gone: clean exit
                payload = (
                    message.payload
                    if isinstance(message.payload, dict)
                    else {}
                )
                if message.tag is MessageTag.SETUP:
                    self._setup(payload)
                elif message.tag is MessageTag.TASK:
                    self._enqueue(payload)
                elif message.tag is MessageTag.TASK_BATCH:
                    # Members execute independently on slot threads;
                    # tokens are registered per member right here so an
                    # ABORT can hit a member that hasn't started yet.
                    for member in payload.get("tasks") or []:
                        if isinstance(member, dict):
                            self._enqueue(member)
                elif message.tag is MessageTag.ABORT:
                    with self._tokens_lock:
                        token = self._tokens.get(payload.get("task_id"))
                    if token is not None:
                        token.cancel()
                elif message.tag is MessageTag.NODE_STATS:
                    drop_run_state(payload.get("drop_token"), None)
                    self._flush_results()
                    self._send_stats()
                elif message.tag is MessageTag.SHUTDOWN:
                    self._flush_results()
                    self._send_stats()
                    return 0
                # Unknown tags are ignored: wire compatibility.
        finally:
            self._stop.set()
            with self._results_cv:
                self._results_cv.notify_all()
            self._pool.shutdown(wait=False, cancel_futures=True)
            if self.cache_token is not None:
                drop_run_state(self.cache_token, None)
            if self.plane is not None:
                try:
                    self.plane.destroy()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
                self.plane = None
            self.conn.close()

    def _setup(self, payload: dict) -> None:
        """Build the node context for a run (re-entrant across runs)."""
        shipped = dict(payload.get("context") or {})
        exchange = payload.get("exchange")
        self.cache_token = shipped.get("cache_token")
        batch = payload.get("batch") if isinstance(payload.get("batch"), dict) else {}
        self._batch_size = max(1, int(batch.get("size", 1)))
        self._linger = max(0.0, float(batch.get("linger", 0.0)))
        compress = bool(payload.get("compress"))
        if compress:
            # Negotiated at HELLO: our sends compress too (the director's
            # receive path always honors the per-frame flag).
            self.conn.enable_compression()
        if self.plane is None:
            cache_dir = self.map_cache or os.path.join(
                tempfile.gettempdir(), f"repro-node-cache-{os.getpid()}"
            )
            self.plane = ArtifactPlane.create(
                map_cache_dir=cache_dir,
                exchange=tuple(exchange) if exchange else None,
                compress=compress,
            )
        context = shipped
        context["artifact_plane"] = self.plane.handle
        context["cancel_token"] = self._handle
        self.context = context
        heartbeat = payload.get("heartbeat")
        interval = getattr(heartbeat, "interval", 2.0)
        threading.Thread(
            target=self._heartbeat_loop,
            args=(float(interval),),
            name=f"{self.node_id}-heartbeat",
            daemon=True,
        ).start()
        if self._batch_size > 1 and self._flusher is None:
            self._flusher = threading.Thread(
                target=self._result_flush_loop,
                name=f"{self.node_id}-coalescer",
                daemon=True,
            )
            self._flusher.start()
        # Initial credit grant: idle slots, plus a prefetch window in
        # batching mode so the director can fill whole batches.
        prefetch = self._batch_size if self._batch_size > 1 else 0
        self.conn.send(MessageTag.WORK_REQUEST, {"n": self.slots + prefetch})

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self.conn.send(MessageTag.HEARTBEAT, {"pid": os.getpid()})
            except (OSError, MessagingError):
                return

    # -- task execution ------------------------------------------------------
    def _enqueue(self, payload: dict) -> None:
        """Admit one task (solo or batch member) to the slot pool.

        The cancellation token is created and registered *now*, before
        the task reaches a slot thread, so a director ABORT addressed at
        a queued batch member cancels it pre-start.
        """
        token = CancellationToken()
        with self._tokens_lock:
            self._tokens[payload.get("task_id")] = token
        self._pool.submit(self._execute, payload, token)

    def _execute(self, payload: dict, token: CancellationToken) -> None:
        """Run one task on a slot thread; report RESULT or FAILURE."""
        task_id = payload.get("task_id")
        try:
            if token.cancelled:
                # Aborted while still queued: never ran, nothing to
                # undo. The entry exists to hand the credit back (the
                # director already dropped this task_id from inflight).
                raise ActivationCancelled("aborted before start")
            self._handle.bind(token)
            fn = payload["fn"]
            args = tuple(
                self.context if isinstance(a, ContextRef) else a
                for a in payload.get("args", ())
            )
            value = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - shipped to director
            self.tasks_failed += 1
            entry: dict = {"task_id": task_id, "error": True, "repr": repr(exc)}
            try:
                entry["blob"] = pickle.dumps(
                    exc, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:  # pragma: no cover - unpicklable exception
                pass
            self._complete(entry)
        else:
            self.tuples_done += 1
            self._complete({"task_id": task_id, "value": value})
        finally:
            with self._tokens_lock:
                self._tokens.pop(task_id, None)

    def _complete(self, entry: dict) -> None:
        """Report one finished member; coalesced when batching is on."""
        if self._batch_size <= 1:
            # Legacy wire protocol, byte-for-byte: one RESULT/FAILURE
            # frame, then a separate one-credit WORK_REQUEST.
            failed = bool(entry.pop("error", False))
            self._reply(
                MessageTag.FAILURE if failed else MessageTag.RESULT, entry
            )
            return
        with self._results_cv:
            if not self._results:
                self._results_since = time.monotonic()
            self._results.append(entry)
            if len(self._results) >= self._batch_size or self._linger <= 0:
                self._flush_results_locked()
            else:
                self._results_cv.notify_all()

    def _reply(self, tag: MessageTag, payload: dict) -> None:
        try:
            self.conn.send(tag, payload)
            # The freed slot pulls its next task.
            self.conn.send(MessageTag.WORK_REQUEST, {"n": 1})
        except (OSError, MessagingError):  # pragma: no cover - director gone
            self._stop.set()

    # -- result coalescer (batching mode) ------------------------------------
    def _flush_results(self) -> None:
        with self._results_cv:
            self._flush_results_locked()

    def _flush_results_locked(self) -> None:
        """Ship pending completions: one frame, credits piggybacked."""
        if not self._results:
            return
        entries = self._results[:]
        self._results.clear()
        try:
            if len(entries) == 1:
                entry = dict(entries[0])
                failed = bool(entry.pop("error", False))
                entry["n"] = 1
                self.conn.send(
                    MessageTag.FAILURE if failed else MessageTag.RESULT, entry
                )
            else:
                self.conn.send(
                    MessageTag.RESULT_BATCH,
                    {"results": entries, "n": len(entries)},
                )
                self.result_batches_sent += 1
        except (OSError, MessagingError):  # pragma: no cover - director gone
            self._stop.set()

    def _result_flush_loop(self) -> None:
        """Flush coalesced results once their linger window expires."""
        with self._results_cv:
            while not self._stop.is_set():
                if not self._results:
                    self._results_cv.wait(0.2)
                    continue
                age = time.monotonic() - self._results_since
                if age >= self._linger:
                    self._flush_results_locked()
                else:
                    self._results_cv.wait(self._linger - age)

    # -- reporting -----------------------------------------------------------
    def _send_stats(self) -> None:
        stats = {
            "node_id": self.node_id,
            "slots": self.slots,
            "tuples_done": self.tuples_done,
            "tasks_failed": self.tasks_failed,
            "bytes_sent": self.conn.bytes_sent,
            "bytes_received": self.conn.bytes_received,
            "bytes_saved_sent": self.conn.bytes_saved_sent,
            "bytes_saved_received": self.conn.bytes_saved_received,
            "frames_compressed_sent": self.conn.frames_compressed_sent,
            "result_batches_sent": self.result_batches_sent,
            "batch_size": self._batch_size,
            "plane": self.plane.stats() if self.plane is not None else {},
        }
        try:
            self.conn.send(MessageTag.NODE_STATS, {"stats": stats})
        except (OSError, MessagingError):  # pragma: no cover - director gone
            pass


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` join address."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host or "127.0.0.1", int(port)


def main(argv: list[str] | None = None) -> int:
    """``scidock worker`` entrypoint (also usable standalone)."""
    parser = argparse.ArgumentParser(
        prog="scidock worker",
        description="Join a SciDock director as a worker node.",
    )
    parser.add_argument(
        "--join", type=parse_address, required=True, metavar="HOST:PORT",
        help="director address to join",
    )
    parser.add_argument(
        "--slots", type=int, default=2,
        help="concurrent activation slots on this node (default: 2)",
    )
    parser.add_argument(
        "--node-id", default=None, help="stable node name (default: host-pid)"
    )
    parser.add_argument(
        "--map-cache", default=None,
        help="node-local content-addressed map cache directory",
    )
    args = parser.parse_args(argv)
    node = WorkerNode(
        args.join,
        slots=args.slots,
        node_id=args.node_id,
        map_cache=args.map_cache,
    )
    return node.run()


if __name__ == "__main__":  # pragma: no cover - manual entrypoint
    raise SystemExit(main())
