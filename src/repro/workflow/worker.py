"""Worker node: the remote half of the distributed execution plane.

One process per node (``scidock worker --join HOST:PORT --slots N``),
speaking the framed wire protocol in :mod:`repro.workflow.messaging`:

* HELLO announces the node (id, slot count, pid); the director answers
  with SETUP carrying the run's shipped context, the artifact-exchange
  address and the heartbeat policy.
* The node builds its *node context* once per run: the shipped context
  plus node-local entries — a fresh cooperative-cancellation handle and
  a node-owned :class:`~repro.workflow.artifacts.ArtifactPlane` whose
  disk cache fetches missing bundles from the director's exchange. TASK
  frames never re-ship any of this: their argument tuples carry a
  :class:`~repro.workflow.messaging.ContextRef` placeholder that the
  node substitutes before executing.
* Work is pulled, not pushed: WORK_REQUEST{n} grants the director n
  task credits (the node's idle slots), one more after every completed
  task — so a slow node naturally receives less work.
* A daemon thread heartbeats at the policy interval; ABORT cancels a
  running task's cooperative token (the remote face of the watchdog);
  NODE_STATS requests report plane/transport counters and drop the
  run's cached worker state; SHUTDOWN (or director EOF) tears the node
  down.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.workflow.artifacts import ArtifactPlane, drop_run_state
from repro.workflow.fault import CancellationToken, CancelTokenHandle
from repro.workflow.messaging import (
    ContextRef,
    FrameConn,
    MessageTag,
    MessagingError,
    connect,
)


def sleep_activation(tup: dict, context: dict) -> list[dict]:
    """Sleep-bound benchmark activation (importable on worker nodes).

    Sleeps ``tup["sleep_s"]`` seconds cooperatively and echoes the tuple
    — the scatter benchmark's stand-in for an I/O- or license-bound
    docking stage, chosen so a 2-node speedup is observable even on a
    single-core host.
    """
    seconds = float(tup.get("sleep_s", 0.01))
    token = context.get("cancel_token")
    if token is not None and hasattr(token, "sleep"):
        token.sleep(seconds)
    else:  # pragma: no cover - tokenless context
        time.sleep(seconds)
    return [dict(tup)]


class WorkerNode:
    """One node's full session against a director."""

    def __init__(
        self,
        address: tuple[str, int],
        *,
        slots: int = 2,
        node_id: str | None = None,
        map_cache: str | None = None,
        connect_timeout: float = 30.0,
    ) -> None:
        self.address = tuple(address)
        self.slots = max(1, int(slots))
        self.node_id = node_id or f"{socket.gethostname()}-{os.getpid()}"
        self.map_cache = map_cache
        self.connect_timeout = connect_timeout
        self.conn: FrameConn | None = None
        self.plane: ArtifactPlane | None = None
        self.context: dict | None = None
        self.cache_token: str | None = None
        self.tuples_done = 0
        self.tasks_failed = 0
        self._tokens: dict[int, CancellationToken] = {}
        self._tokens_lock = threading.Lock()
        self._handle = CancelTokenHandle()
        self._pool: ThreadPoolExecutor | None = None
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------
    def run(self) -> int:
        """Join the director and serve tasks until shutdown/EOF."""
        self.conn = connect(self.address, timeout=self.connect_timeout)
        self.conn.send(
            MessageTag.HELLO,
            {
                "node_id": self.node_id,
                "slots": self.slots,
                "pid": os.getpid(),
            },
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix=f"{self.node_id}-slot"
        )
        try:
            while True:
                try:
                    message = self.conn.recv()
                except (MessagingError, OSError):
                    message = None
                if message is None:
                    return 0  # director gone: clean exit
                payload = (
                    message.payload
                    if isinstance(message.payload, dict)
                    else {}
                )
                if message.tag is MessageTag.SETUP:
                    self._setup(payload)
                elif message.tag is MessageTag.TASK:
                    self._pool.submit(self._execute, payload)
                elif message.tag is MessageTag.ABORT:
                    with self._tokens_lock:
                        token = self._tokens.get(payload.get("task_id"))
                    if token is not None:
                        token.cancel()
                elif message.tag is MessageTag.NODE_STATS:
                    drop_run_state(payload.get("drop_token"), None)
                    self._send_stats()
                elif message.tag is MessageTag.SHUTDOWN:
                    self._send_stats()
                    return 0
                # Unknown tags are ignored: wire compatibility.
        finally:
            self._stop.set()
            self._pool.shutdown(wait=False, cancel_futures=True)
            if self.cache_token is not None:
                drop_run_state(self.cache_token, None)
            if self.plane is not None:
                try:
                    self.plane.destroy()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
                self.plane = None
            self.conn.close()

    def _setup(self, payload: dict) -> None:
        """Build the node context for a run (re-entrant across runs)."""
        shipped = dict(payload.get("context") or {})
        exchange = payload.get("exchange")
        self.cache_token = shipped.get("cache_token")
        if self.plane is None:
            cache_dir = self.map_cache or os.path.join(
                tempfile.gettempdir(), f"repro-node-cache-{os.getpid()}"
            )
            self.plane = ArtifactPlane.create(
                map_cache_dir=cache_dir,
                exchange=tuple(exchange) if exchange else None,
            )
        context = shipped
        context["artifact_plane"] = self.plane.handle
        context["cancel_token"] = self._handle
        self.context = context
        heartbeat = payload.get("heartbeat")
        interval = getattr(heartbeat, "interval", 2.0)
        threading.Thread(
            target=self._heartbeat_loop,
            args=(float(interval),),
            name=f"{self.node_id}-heartbeat",
            daemon=True,
        ).start()
        self.conn.send(MessageTag.WORK_REQUEST, {"n": self.slots})

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self.conn.send(MessageTag.HEARTBEAT, {"pid": os.getpid()})
            except (OSError, MessagingError):
                return

    # -- task execution ------------------------------------------------------
    def _execute(self, payload: dict) -> None:
        """Run one TASK on a slot thread; report RESULT or FAILURE."""
        task_id = payload.get("task_id")
        token = CancellationToken()
        with self._tokens_lock:
            self._tokens[task_id] = token
        self._handle.bind(token)
        try:
            fn = payload["fn"]
            args = tuple(
                self.context if isinstance(a, ContextRef) else a
                for a in payload.get("args", ())
            )
            value = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - shipped to director
            self.tasks_failed += 1
            reply: dict = {"task_id": task_id, "repr": repr(exc)}
            try:
                reply["blob"] = pickle.dumps(
                    exc, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:  # pragma: no cover - unpicklable exception
                pass
            self._reply(MessageTag.FAILURE, reply)
        else:
            self.tuples_done += 1
            self._reply(MessageTag.RESULT, {"task_id": task_id, "value": value})
        finally:
            with self._tokens_lock:
                self._tokens.pop(task_id, None)

    def _reply(self, tag: MessageTag, payload: dict) -> None:
        try:
            self.conn.send(tag, payload)
            # The freed slot pulls its next task.
            self.conn.send(MessageTag.WORK_REQUEST, {"n": 1})
        except (OSError, MessagingError):  # pragma: no cover - director gone
            self._stop.set()

    # -- reporting -----------------------------------------------------------
    def _send_stats(self) -> None:
        stats = {
            "node_id": self.node_id,
            "slots": self.slots,
            "tuples_done": self.tuples_done,
            "tasks_failed": self.tasks_failed,
            "bytes_sent": self.conn.bytes_sent,
            "bytes_received": self.conn.bytes_received,
            "plane": self.plane.stats() if self.plane is not None else {},
        }
        try:
            self.conn.send(MessageTag.NODE_STATS, {"stats": stats})
        except (OSError, MessagingError):  # pragma: no cover - director gone
            pass


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` join address."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host or "127.0.0.1", int(port)


def main(argv: list[str] | None = None) -> int:
    """``scidock worker`` entrypoint (also usable standalone)."""
    parser = argparse.ArgumentParser(
        prog="scidock worker",
        description="Join a SciDock director as a worker node.",
    )
    parser.add_argument(
        "--join", type=parse_address, required=True, metavar="HOST:PORT",
        help="director address to join",
    )
    parser.add_argument(
        "--slots", type=int, default=2,
        help="concurrent activation slots on this node (default: 2)",
    )
    parser.add_argument(
        "--node-id", default=None, help="stable node name (default: host-pid)"
    )
    parser.add_argument(
        "--map-cache", default=None,
        help="node-local content-addressed map cache directory",
    )
    args = parser.parse_args(argv)
    node = WorkerNode(
        args.join,
        slots=args.slots,
        node_id=args.node_id,
        map_cache=args.map_cache,
    )
    return node.run()


if __name__ == "__main__":  # pragma: no cover - manual entrypoint
    raise SystemExit(main())
