"""Relations and tuples — the algebraic data model.

SciCumulus treats every activity as an operator that consumes a relation
and emits a relation; each tuple is processed by one *activation*. A
:class:`Relation` here is a named, schema-checked list of dict tuples.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class RelationError(ValueError):
    """Raised for schema violations."""


class Relation:
    """An ordered bag of tuples sharing a schema (set of field names)."""

    def __init__(
        self,
        name: str,
        tuples: Iterable[dict] | None = None,
        schema: tuple[str, ...] | None = None,
    ) -> None:
        if not name:
            raise RelationError("relation needs a name")
        self.name = name
        self._tuples: list[dict] = []
        self.schema: tuple[str, ...] | None = tuple(schema) if schema else None
        for t in tuples or []:
            self.append(t)

    def append(self, tup: dict) -> None:
        if not isinstance(tup, dict):
            raise RelationError(f"tuples must be dicts, got {type(tup).__name__}")
        if self.schema is None:
            self.schema = tuple(sorted(tup))
        elif tuple(sorted(tup)) != self.schema:
            raise RelationError(
                f"tuple fields {sorted(tup)} do not match relation schema "
                f"{list(self.schema)}"
            )
        self._tuples.append(dict(tup))

    def extend(self, tuples: Iterable[dict]) -> None:
        for t in tuples:
            self.append(t)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._tuples)

    def __getitem__(self, idx: int) -> dict:
        return self._tuples[idx]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self.name!r}, {len(self)} tuples)"

    def fields(self) -> tuple[str, ...]:
        if self.schema is None:
            raise RelationError(f"relation {self.name!r} is empty and untyped")
        return self.schema

    def column(self, field: str) -> list:
        if self.schema is not None and field not in self.schema:
            raise RelationError(f"no field {field!r} in {list(self.schema)}")
        return [t[field] for t in self._tuples]

    def project(self, fields: Iterable[str]) -> "Relation":
        fields = tuple(fields)
        missing = set(fields) - set(self.fields())
        if missing:
            raise RelationError(f"cannot project missing fields {sorted(missing)}")
        return Relation(
            self.name, ({f: t[f] for f in fields} for t in self._tuples)
        )

    def copy(self) -> "Relation":
        return Relation(self.name, (dict(t) for t in self._tuples), self.schema)


def tuple_key(tup: dict, index: int | None = None) -> str:
    """Stable human-readable key for one tuple.

    Prefers an explicit ``key`` field, then the SciDock convention
    ``ligand_receptor``, then a positional fallback.
    """
    if "key" in tup:
        return str(tup["key"])
    if "ligand_id" in tup and "receptor_id" in tup:
        return f"{tup['ligand_id']}_{tup['receptor_id']}"
    if index is not None:
        return f"tuple-{index}"
    return "tuple-" + "-".join(f"{k}={tup[k]}" for k in sorted(tup))
