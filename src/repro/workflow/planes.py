"""In-process execution planes: bookkeeping threads over local backends.

The coordinator (:mod:`repro.workflow.coordinator`) drives an
:class:`~repro.workflow.coordinator.ExecutionPlane`; this module holds
the plane both historical LocalEngine backends share. A
:class:`ThreadedExecutionPlane` runs one bookkeeping thread per
in-flight attempt — each thread drives the full
:class:`~repro.workflow.dispatch.AttemptRunner` lifecycle (watchdog,
retries, infra budget, provenance rows) and drops a
:class:`~repro.workflow.coordinator.Completion` on a queue the
coordinator consumes. Where the *activation callable* actually runs is
the runner's business: inline on the bookkeeping thread (threads
backend), in a spawn worker process behind the
:class:`~repro.workflow.affinity.AffinityRouter` (processes backend), or
on a remote worker node behind the
:class:`~repro.workflow.distributed.Director` (which subclasses this
plane — the director implements the router duck-type, so the same
bookkeeping threads drive remote attempts unchanged).
"""

from __future__ import annotations

import queue
from concurrent.futures import ThreadPoolExecutor

from repro.workflow.activity import Activity
from repro.workflow.affinity import AffinityRouter, RouterError
from repro.workflow.artifacts import drop_run_state
from repro.workflow.coordinator import Completion, ExecutionPlane
from repro.workflow.dataflow import WorkItem
from repro.workflow.dispatch import (
    AttemptAbortHandle,
    AttemptOutcome,
    AttemptRunner,
)


class ThreadedExecutionPlane(ExecutionPlane):
    """Bookkeeping-thread plane: the base for local and director planes.

    The thread pool is sized to ``hard_max`` (the elasticity ceiling)
    while the *dispatch cap* — :meth:`capacity` — starts at ``active``
    and moves with :meth:`resize`; a grow decision therefore never needs
    a new pool.
    """

    def __init__(
        self,
        runner: AttemptRunner,
        context: dict,
        t0: float,
        active: int,
        hard_max: int,
    ) -> None:
        self.runner = runner
        #: The run context attempts execute under (parent-side dict; the
        #: runner ships its sanitized twin across process/socket seams).
        self.context = context
        self.t0 = t0
        self._active = active
        self._hard_max = hard_max
        self._completions: queue.Queue = queue.Queue()
        self._pool = ThreadPoolExecutor(max_workers=hard_max)

    # -- capacity ------------------------------------------------------------
    def capacity(self) -> int:
        return self._active

    @property
    def hard_max(self) -> int:
        return self._hard_max

    # -- dispatch ------------------------------------------------------------
    def submit(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle | None,
    ) -> None:
        self._pool.submit(self._task, item, activity, actid, handle)

    def submit_speculative(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle,
    ) -> None:
        self._pool.submit(self._spec_task, item, activity, actid, handle)

    def _task(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle | None,
    ) -> None:
        try:
            outs, outcome = self.runner.run_with_retry(
                activity, actid, item.tup, item.key, self.context, self.t0,
                abort_handle=handle,
            )
            self._completions.put(Completion(item, outs, outcome))
        except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
            self._completions.put(
                Completion(item, [], AttemptOutcome(), exc=exc)
            )

    def _spec_task(
        self,
        item: WorkItem,
        activity: Activity,
        actid: int,
        handle: AttemptAbortHandle,
    ) -> None:
        try:
            outs, outcome = self.runner.run_speculative(
                activity, actid, item.tup, item.key, self.context, self.t0,
                handle,
            )
            self._completions.put(
                Completion(item, outs, outcome, role="speculative")
            )
        except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
            self._completions.put(
                Completion(
                    item, [], AttemptOutcome(speculative=True), exc=exc,
                    role="speculative",
                )
            )

    def next_completion(self, timeout: float | None = None) -> Completion | None:
        try:
            return self._completions.get(timeout=timeout)
        except queue.Empty:
            return None

    # -- lifecycle -----------------------------------------------------------
    def drain(self) -> None:
        """Wait for every bookkeeping thread to finish (idempotent)."""
        self._pool.shutdown(wait=True)

    def shutdown(self) -> None:
        self.drain()


class LocalExecutionPlane(ThreadedExecutionPlane):
    """The historical threads/processes backends behind the plane seam.

    Threads backend: ``router=None`` — activations run inline on the
    bookkeeping threads under cooperative-token watchdogs. Processes
    backend: an :class:`~repro.workflow.affinity.AffinityRouter` places
    each attempt on a sticky worker slot; resize moves real router
    slots; finish() collects steal/quarantine counts and broadcasts the
    end-of-run cache cleanup before the router shuts down.
    """

    supports_speculation = True
    elastic = True

    def __init__(
        self,
        runner: AttemptRunner,
        context: dict,
        t0: float,
        active: int,
        hard_max: int,
        *,
        router: AffinityRouter | None = None,
        cache_token: str | None = None,
        scratch_dir: str | None = None,
    ) -> None:
        super().__init__(runner, context, t0, active, hard_max)
        self.router = router
        self.cache_token = cache_token
        self.scratch_dir = scratch_dir
        #: Per-worker results of the end-of-run cache-cleanup broadcast.
        self.last_cache_cleanup: list = []

    def resize(self, target: int) -> bool:
        if self.router is not None:
            self.router.resize(target)
        self._active = target
        return True

    def finish(self) -> dict:
        """Drain bookkeeping, then collect router stats + cache cleanup.

        Ordering matters: the broadcast must see a quiet pool (no
        attempt mid-flight re-populating a worker's run state) and must
        run *before* :meth:`shutdown` tears the router down.
        """
        self.drain()
        stats: dict = {}
        if self.router is not None:
            stats["steals"] = self.router.steals
            stats["quarantined_workers"] = self.router.quarantined_workers
            try:
                self.last_cache_cleanup = self.router.broadcast(
                    drop_run_state, self.cache_token, self.scratch_dir
                )
            except RouterError:  # pragma: no cover - already shut down
                self.last_cache_cleanup = []
        stats["cache_cleanup"] = list(self.last_cache_cleanup)
        return stats

    def shutdown(self) -> None:
        self.drain()
        if self.router is not None:
            self.router.shutdown()
            self.router = None
