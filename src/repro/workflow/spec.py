"""SciCumulus XML workflow specification.

Round-trips the paper's XML dialect (Figure 2)::

    <SciCumulus>
      <database name="scicumulus" port="5432" server="..."/>
      <SciCumulusWorkflow tag="SciDock" description="Docking"
                          exectag="scidock" expdir="/root/scidock/">
        <SciCumulusActivity tag="babel" templatedir=".../template_babel/"
                            activation="./experiment.cmd" operator="MAP">
          <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
          <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
          <File instrumented="true" filename="experiment.cmd"/>
        </SciCumulusActivity>
      </SciCumulusWorkflow>
    </SciCumulus>

Parsing yields a :class:`~repro.workflow.activity.Workflow` whose
activities carry templates; callables are attached afterwards by the
application (the XML only describes structure, as in SciCumulus).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.workflow.activity import Activity, Operator, Workflow
from repro.workflow.template import ActivityTemplate


class SpecError(ValueError):
    """Raised for malformed workflow XML."""


@dataclass
class DatabaseConfig:
    """The provenance-database endpoint from the spec header."""

    name: str = "scicumulus"
    server: str = "localhost"
    port: int = 5432


def parse_workflow_xml(text: str) -> tuple[Workflow, DatabaseConfig]:
    """Parse SciCumulus XML into (workflow skeleton, database config)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecError(f"invalid XML: {exc}") from None
    if root.tag != "SciCumulus":
        raise SpecError(f"expected <SciCumulus> root, got <{root.tag}>")

    db_el = root.find("database")
    db = DatabaseConfig()
    if db_el is not None:
        db = DatabaseConfig(
            name=db_el.get("name", db.name),
            server=db_el.get("server", db.server),
            port=int(db_el.get("port", db.port)),
        )

    wf_el = root.find("SciCumulusWorkflow")
    if wf_el is None:
        raise SpecError("missing <SciCumulusWorkflow> element")
    tag = wf_el.get("tag")
    if not tag:
        raise SpecError("<SciCumulusWorkflow> needs a tag attribute")
    workflow = Workflow(
        tag=tag,
        description=wf_el.get("description", ""),
        exectag=wf_el.get("exectag", ""),
        expdir=wf_el.get("expdir", ""),
    )

    for act_el in wf_el.findall("SciCumulusActivity"):
        atag = act_el.get("tag")
        if not atag:
            raise SpecError("<SciCumulusActivity> needs a tag attribute")
        op_name = act_el.get("operator", "MAP").upper()
        try:
            operator = Operator(op_name)
        except ValueError:
            raise SpecError(
                f"unknown operator {op_name!r} on activity {atag!r}"
            ) from None
        input_rel = output_rel = None
        for rel_el in act_el.findall("Relation"):
            reltype = rel_el.get("reltype", "").lower()
            if reltype == "input":
                input_rel = rel_el.get("filename", "input.txt")
            elif reltype == "output":
                output_rel = rel_el.get("filename", "output.txt")
            else:
                raise SpecError(
                    f"Relation reltype must be Input/Output, got {reltype!r}"
                )
        command = ""
        for file_el in act_el.findall("File"):
            if file_el.get("instrumented", "false").lower() == "true":
                command = file_el.get("filename", "")
        template = ActivityTemplate(
            command=act_el.get("activation", command or "./experiment.cmd"),
            templatedir=act_el.get("templatedir", ""),
            input_relation=input_rel or "input.txt",
            output_relation=output_rel or "output.txt",
        )
        workflow.add(
            Activity(
                tag=atag,
                operator=operator,
                template=template,
                description=act_el.get("description", ""),
            )
        )
    return workflow, db


def workflow_to_xml(workflow: Workflow, db: DatabaseConfig | None = None) -> str:
    """Serialize a workflow skeleton back to SciCumulus XML."""
    root = ET.Element("SciCumulus")
    db = db or DatabaseConfig()
    ET.SubElement(
        root,
        "database",
        name=db.name,
        server=db.server,
        port=str(db.port),
    )
    wf_el = ET.SubElement(
        root,
        "SciCumulusWorkflow",
        tag=workflow.tag,
        description=workflow.description,
        exectag=workflow.exectag,
        expdir=workflow.expdir,
    )
    for act in workflow.activities:
        tpl = act.template or ActivityTemplate(command="./experiment.cmd")
        act_el = ET.SubElement(
            wf_el,
            "SciCumulusActivity",
            tag=act.tag,
            templatedir=tpl.templatedir,
            activation=tpl.command,
            operator=act.operator.value,
        )
        ET.SubElement(
            act_el,
            "Relation",
            reltype="Input",
            name=f"rel_in_{act.tag}",
            filename=tpl.input_relation,
        )
        ET.SubElement(
            act_el,
            "Relation",
            reltype="Output",
            name=f"rel_out_{act.tag}",
            filename=tpl.output_relation,
        )
        ET.SubElement(
            act_el, "File", instrumented="true", filename="experiment.cmd"
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"
