"""2D/3D molecular descriptors.

Classic interpretable descriptors computed directly from the
:class:`~repro.chem.molecule.Molecule` representation: size, flexibility,
hydrogen bonding capacity, lipophilicity (a Crippen-style atomic
contribution estimate), polar surface area (Ertl-style group
contributions, simplified) and simple 3D shape measures.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.chem.molecule import Molecule
from repro.chem.torsions import find_rotatable_bonds

#: Crippen-flavoured atomic logP contributions (coarse, by element/env).
_LOGP_CONTRIB = {
    "C_aromatic": 0.29,
    "C_aliphatic": 0.14,
    "N": -0.60,
    "O": -0.55,
    "S": 0.25,
    "P": -0.45,
    "F": 0.22,
    "CL": 0.65,
    "BR": 0.86,
    "I": 1.11,
    "H_polar": -0.35,
    "H_apolar": 0.12,
}

#: Ertl-style TPSA group contributions (A^2), simplified to element+H.
_TPSA_CONTRIB = {
    ("N", 0): 12.36,
    ("N", 1): 20.31,  # N-H
    ("O", 0): 17.07,
    ("O", 1): 20.23,  # O-H
    ("S", 0): 25.30,
}


@dataclass
class MolecularDescriptors:
    """One ligand's descriptor vector."""

    molecular_weight: float
    n_heavy_atoms: int
    n_rotatable_bonds: int
    h_bond_donors: int
    h_bond_acceptors: int
    n_aromatic_atoms: int
    n_rings: int
    clogp: float
    tpsa: float
    radius_of_gyration: float
    asphericity: float

    def vector(self) -> np.ndarray:
        return np.array([getattr(self, f.name) for f in fields(self)], dtype=float)


DESCRIPTOR_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(MolecularDescriptors)
)


def _count_rings(mol: Molecule) -> int:
    """Cycle-space dimension per connected component (|E| - |V| + C)."""
    comps = mol.connected_components()
    return max(0, len(mol.bonds) - len(mol.atoms) + len(comps))


def compute_descriptors(mol: Molecule) -> MolecularDescriptors:
    """Compute the full descriptor vector for one molecule."""
    if len(mol.atoms) == 0:
        raise ValueError("cannot compute descriptors of an empty molecule")
    if not mol.bonds:
        mol = mol.copy()
        mol.perceive_bonds()

    donors = 0
    acceptors = 0
    clogp = 0.0
    tpsa = 0.0
    n_aromatic = 0
    for i, a in enumerate(mol.atoms):
        h_neighbors = sum(1 for j in mol.neighbors(i) if mol.atoms[j].element == "H")
        if a.element in ("N", "O"):
            acceptors += 1
            if h_neighbors:
                donors += 1
            tpsa += _TPSA_CONTRIB.get((a.element, min(h_neighbors, 1)), 15.0)
        elif a.element == "S":
            tpsa += _TPSA_CONTRIB[("S", 0)]
        if a.aromatic:
            n_aromatic += 1
        # logP contribution.
        if a.element == "C":
            clogp += _LOGP_CONTRIB["C_aromatic" if a.aromatic else "C_aliphatic"]
        elif a.element == "H":
            heavy = [j for j in mol.neighbors(i) if mol.atoms[j].is_heavy]
            polar = any(mol.atoms[j].element in ("N", "O", "S") for j in heavy)
            clogp += _LOGP_CONTRIB["H_polar" if polar else "H_apolar"]
        else:
            clogp += _LOGP_CONTRIB.get(a.element, 0.0)

    coords = mol.coords
    center = coords.mean(axis=0)
    centered = coords - center
    gyration_tensor = centered.T @ centered / len(mol.atoms)
    eigvals = np.sort(np.linalg.eigvalsh(gyration_tensor))[::-1]
    rg = float(np.sqrt(eigvals.sum()))
    # Asphericity in [0, 1]: 0 = sphere, 1 = rod.
    denom = eigvals.sum() ** 2
    asphericity = float(
        ((eigvals[0] - eigvals[1]) ** 2
         + (eigvals[1] - eigvals[2]) ** 2
         + (eigvals[0] - eigvals[2]) ** 2) / (2 * denom)
    ) if denom > 0 else 0.0

    return MolecularDescriptors(
        molecular_weight=mol.molecular_weight,
        n_heavy_atoms=sum(1 for a in mol.atoms if a.is_heavy),
        n_rotatable_bonds=len(find_rotatable_bonds(mol)),
        h_bond_donors=donors,
        h_bond_acceptors=acceptors,
        n_aromatic_atoms=n_aromatic,
        n_rings=_count_rings(mol),
        clogp=clogp,
        tpsa=tpsa,
        radius_of_gyration=rg,
        asphericity=asphericity,
    )
