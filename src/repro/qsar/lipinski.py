"""Lipinski rule-of-five drug-likeness filtering."""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.molecule import Molecule
from repro.qsar.descriptors import MolecularDescriptors, compute_descriptors


@dataclass
class LipinskiReport:
    """Rule-by-rule pass/fail for one ligand."""

    molecular_weight_ok: bool  # <= 500 Da
    clogp_ok: bool  # <= 5
    donors_ok: bool  # <= 5
    acceptors_ok: bool  # <= 10
    violations: int

    @property
    def passes(self) -> bool:
        """Lipinski allows one violation."""
        return self.violations <= 1


def lipinski_report(
    mol_or_descriptors: Molecule | MolecularDescriptors,
) -> LipinskiReport:
    d = (
        mol_or_descriptors
        if isinstance(mol_or_descriptors, MolecularDescriptors)
        else compute_descriptors(mol_or_descriptors)
    )
    checks = {
        "molecular_weight_ok": d.molecular_weight <= 500.0,
        "clogp_ok": d.clogp <= 5.0,
        "donors_ok": d.h_bond_donors <= 5,
        "acceptors_ok": d.h_bond_acceptors <= 10,
    }
    return LipinskiReport(
        violations=sum(1 for ok in checks.values() if not ok), **checks
    )


def passes_rule_of_five(mol: Molecule) -> bool:
    """Convenience wrapper: does this ligand look drug-like?"""
    return lipinski_report(mol).passes
