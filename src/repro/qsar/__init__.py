"""QSAR substrate: descriptors, drug-likeness and activity models.

The paper's future work: "we plan to model other computing-intensive
CADD workflows (e.g. ... ligand-based and structure-based virtual
screening, 2D and 3D QSAR)". This package provides that layer:

* :mod:`repro.qsar.descriptors` — 2D/3D molecular descriptors computed
  from our own molecule representation;
* :mod:`repro.qsar.lipinski` — rule-of-five drug-likeness filtering;
* :mod:`repro.qsar.model` — ridge-regression QSAR with cross-validation;
* :mod:`repro.qsar.screen` — the SciQSAR mini-workflow: train on docked
  FEBs, predict the rest of the library, rank candidates.
"""

from repro.qsar.descriptors import DESCRIPTOR_NAMES, MolecularDescriptors, compute_descriptors
from repro.qsar.lipinski import LipinskiReport, lipinski_report, passes_rule_of_five
from repro.qsar.model import QSARModel, cross_validate
from repro.qsar.screen import ScreeningRanking, qsar_screen
from repro.qsar.library import LigandLibrary, enumerate_library

__all__ = [
    "LigandLibrary",
    "enumerate_library",
    "MolecularDescriptors",
    "DESCRIPTOR_NAMES",
    "compute_descriptors",
    "passes_rule_of_five",
    "lipinski_report",
    "LipinskiReport",
    "QSARModel",
    "cross_validate",
    "qsar_screen",
    "ScreeningRanking",
]
