"""SciQSAR: ligand-based virtual screening on top of SciDock results.

The pipeline the paper sketches as future work: dock a *subset* of the
library structure-based (expensive), train a QSAR model on the measured
FEBs, then rank the *whole* library by predicted affinity so the next
docking campaign spends its budget on the most promising ligands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.generate import generate_ligand
from repro.qsar.descriptors import DESCRIPTOR_NAMES, compute_descriptors
from repro.qsar.lipinski import lipinski_report
from repro.qsar.model import QSARError, QSARModel, cross_validate


@dataclass
class ScreeningRanking:
    """Output of :func:`qsar_screen`."""

    ranked_ligands: list[tuple[str, float]]  # (ligand_id, predicted FEB)
    model: QSARModel
    q2: float
    training_size: int
    druglike: dict[str, bool] = field(default_factory=dict)

    def top(self, n: int = 5, druglike_only: bool = False) -> list[tuple[str, float]]:
        out = []
        for lig, feb in self.ranked_ligands:
            if druglike_only and not self.druglike.get(lig, False):
                continue
            out.append((lig, feb))
            if len(out) >= n:
                break
        return out


def qsar_screen(
    training_febs: dict[str, float],
    library: list[str] | tuple[str, ...],
    *,
    alpha: float = 1.0,
    cv_folds: int = 4,
    seed: int = 0,
) -> ScreeningRanking:
    """Train on docked FEBs, rank the whole ligand library.

    ``training_febs`` maps ligand IDs to their (best) docking FEB; all
    ligands are featurized with :func:`compute_descriptors` over the
    deterministic generator, so training and library descriptors live in
    the same space.
    """
    if len(training_febs) < max(4, cv_folds):
        raise QSARError(
            f"need at least {max(4, cv_folds)} training ligands, "
            f"got {len(training_febs)}"
        )
    train_ids = sorted(training_febs)
    X_train = np.stack(
        [compute_descriptors(generate_ligand(l)).vector() for l in train_ids]
    )
    y_train = np.array([training_febs[l] for l in train_ids])

    cv = cross_validate(X_train, y_train, alpha=alpha, k=cv_folds, seed=seed)
    model = QSARModel(alpha=alpha).fit(X_train, y_train)

    ranked: list[tuple[str, float]] = []
    druglike: dict[str, bool] = {}
    for lig in dict.fromkeys(library):
        mol = generate_ligand(lig)
        d = compute_descriptors(mol)
        pred = float(model.predict(d.vector()[None, :])[0])
        ranked.append((lig, pred))
        druglike[lig] = lipinski_report(d).passes
    ranked.sort(key=lambda pair: pair[1])  # most negative FEB first
    return ScreeningRanking(
        ranked_ligands=ranked,
        model=model,
        q2=cv["q2"],
        training_size=len(train_ids),
        druglike=druglike,
    )


def describe_model(model: QSARModel) -> str:
    """Human-readable feature-importance table."""
    if not model.is_fitted:
        raise QSARError("model is not fitted")
    importance = model.feature_importance()
    order = np.argsort(importance)[::-1]
    lines = ["feature importance (|standardized coefficient|):"]
    for idx in order:
        lines.append(f"  {DESCRIPTOR_NAMES[idx]:<22} {importance[idx]:.3f}")
    return "\n".join(lines)
