"""Ligand library management: the ZINC-database stand-in.

"Thousands or millions of potential receptors and entire ligand
databases need to be screened" (§III). This module enumerates synthetic
libraries at any size, filters them for drug-likeness, and picks
*diverse* subsets — the paper's "uniformly cover the diverse space of
compounds" goal — by greedy max-min selection in standardized descriptor
space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.generate import generate_ligand
from repro.qsar.descriptors import compute_descriptors
from repro.qsar.lipinski import lipinski_report


def enumerate_library(n: int, prefix: str = "ZINC") -> list[str]:
    """Deterministic library IDs (ZINC-style accession numbers)."""
    if n < 1:
        raise ValueError("library size must be >= 1")
    return [f"{prefix}{i:08d}" for i in range(1, n + 1)]


@dataclass
class LibraryEntry:
    ligand_id: str
    descriptors: np.ndarray
    druglike: bool


@dataclass
class LigandLibrary:
    """A featurized ligand collection with filtering and selection."""

    entries: list[LibraryEntry] = field(default_factory=list)

    @classmethod
    def build(cls, ligand_ids: list[str] | tuple[str, ...]) -> "LigandLibrary":
        """Generate + featurize every ligand (deterministic per ID)."""
        if not ligand_ids:
            raise ValueError("need at least one ligand ID")
        entries = []
        for lid in dict.fromkeys(ligand_ids):
            mol = generate_ligand(lid)
            d = compute_descriptors(mol)
            entries.append(
                LibraryEntry(
                    ligand_id=lid,
                    descriptors=d.vector(),
                    druglike=lipinski_report(d).passes,
                )
            )
        return cls(entries=entries)

    def __len__(self) -> int:
        return len(self.entries)

    def ids(self) -> list[str]:
        return [e.ligand_id for e in self.entries]

    def druglike_subset(self) -> "LigandLibrary":
        """Rule-of-five pass-through filter."""
        return LigandLibrary([e for e in self.entries if e.druglike])

    def _standardized(self) -> np.ndarray:
        X = np.stack([e.descriptors for e in self.entries])
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return (X - mean) / std

    def select_diverse(self, k: int, seed_index: int = 0) -> list[str]:
        """Greedy max-min diversity pick of ``k`` ligands.

        Starts from ``seed_index`` and repeatedly adds the ligand whose
        minimum distance to the chosen set is largest — the classic
        sphere-exclusion-style coverage of compound space.
        """
        if not 1 <= k <= len(self.entries):
            raise ValueError(f"k must be in [1, {len(self.entries)}], got {k}")
        if not 0 <= seed_index < len(self.entries):
            raise ValueError("seed_index out of range")
        Z = self._standardized()
        chosen = [seed_index]
        # Distance from every entry to its nearest chosen entry.
        d_min = np.linalg.norm(Z - Z[seed_index], axis=1)
        while len(chosen) < k:
            nxt = int(np.argmax(d_min))
            chosen.append(nxt)
            d_min = np.minimum(d_min, np.linalg.norm(Z - Z[nxt], axis=1))
        return [self.entries[i].ligand_id for i in chosen]

    def nearest_neighbors(self, ligand_id: str, k: int = 5) -> list[tuple[str, float]]:
        """Most similar library members to one ligand (analog search)."""
        ids = self.ids()
        try:
            idx = ids.index(ligand_id)
        except ValueError:
            raise KeyError(f"{ligand_id!r} not in library") from None
        Z = self._standardized()
        dist = np.linalg.norm(Z - Z[idx], axis=1)
        order = np.argsort(dist)
        out = []
        for i in order.tolist():
            if i == idx:
                continue
            out.append((ids[i], float(dist[i])))
            if len(out) >= k:
                break
        return out

    def coverage_radius(self, selected_ids: list[str]) -> float:
        """Max distance from any library member to the selected set.

        Lower = the selection covers compound space better; the metric
        behind the paper's "uniformly cover the diverse space" argument.
        """
        if not selected_ids:
            raise ValueError("selection is empty")
        ids = self.ids()
        sel = [ids.index(s) for s in selected_ids]
        Z = self._standardized()
        d = np.linalg.norm(Z[:, None, :] - Z[sel][None, :, :], axis=2)
        return float(d.min(axis=1).max())
