"""Ridge-regression QSAR model with cross-validation.

Maps descriptor vectors to an activity (here: docking FEB). Features are
standardized internally; the closed-form ridge solution keeps the model
dependency-free and exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class QSARError(ValueError):
    """Raised for ill-posed fits/predictions."""


@dataclass
class QSARModel:
    """Standardized ridge regression y ~ X."""

    alpha: float = 1.0
    coefficients: np.ndarray | None = field(default=None, repr=False)
    intercept: float = 0.0
    _mean: np.ndarray | None = field(default=None, repr=False)
    _std: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise QSARError("alpha must be non-negative")

    # -- fitting -------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "QSARModel":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise QSARError(
                f"need X (n, d) and y (n,); got {X.shape} and {y.shape}"
            )
        if X.shape[0] < 2:
            raise QSARError("need at least two training samples")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std < 1e-12, 1.0, std)
        Z = (X - self._mean) / self._std
        y_mean = y.mean()
        yc = y - y_mean
        d = Z.shape[1]
        A = Z.T @ Z + self.alpha * np.eye(d)
        self.coefficients = np.linalg.solve(A, Z.T @ yc)
        self.intercept = float(y_mean)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.coefficients is not None

    # -- inference ------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise QSARError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = (X - self._mean) / self._std
        return Z @ self.coefficients + self.intercept

    def r_squared(self, X: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot < 1e-12:
            raise QSARError("target has no variance")
        return 1.0 - ss_res / ss_tot

    def feature_importance(self) -> np.ndarray:
        """|standardized coefficient| per feature."""
        if not self.is_fitted:
            raise QSARError("model is not fitted")
        return np.abs(self.coefficients)


def cross_validate(
    X: np.ndarray,
    y: np.ndarray,
    *,
    alpha: float = 1.0,
    k: int = 5,
    seed: int = 0,
) -> dict:
    """K-fold cross-validation; returns q2 (CV r^2) and fold RMSEs."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = X.shape[0]
    if k < 2 or k > n:
        raise QSARError(f"k must be in [2, n={n}], got {k}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    preds = np.empty(n)
    rmses = []
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = QSARModel(alpha=alpha).fit(X[mask], y[mask])
        p = model.predict(X[fold])
        preds[fold] = p
        rmses.append(float(np.sqrt(((y[fold] - p) ** 2).mean())))
    ss_res = float(((y - preds) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return {
        "q2": 1.0 - ss_res / ss_tot if ss_tot > 1e-12 else float("nan"),
        "fold_rmse": rmses,
        "rmse": float(np.sqrt(((y - preds) ** 2).mean())),
        "predictions": preds,
    }
