"""Unit tests for GridBox."""

import numpy as np
import pytest

from repro.docking.box import GridBox


class TestGridBox:
    def test_shape_is_npts_plus_one(self):
        box = GridBox(center=[0, 0, 0], npts=(10, 12, 14))
        assert box.shape == (11, 13, 15)

    def test_dimensions(self):
        box = GridBox(center=[0, 0, 0], npts=(10, 10, 10), spacing=0.5)
        assert np.allclose(box.dimensions, [5.0, 5.0, 5.0])

    def test_min_max_symmetric_about_center(self):
        box = GridBox(center=[1.0, 2.0, 3.0], npts=(8, 8, 8), spacing=0.5)
        assert np.allclose((box.minimum + box.maximum) / 2, [1, 2, 3])

    def test_invalid_center_raises(self):
        with pytest.raises(ValueError):
            GridBox(center=[0, 0])

    def test_invalid_npts_raises(self):
        with pytest.raises(ValueError):
            GridBox(center=[0, 0, 0], npts=(0, 4, 4))

    def test_invalid_spacing_raises(self):
        with pytest.raises(ValueError):
            GridBox(center=[0, 0, 0], spacing=-1.0)

    def test_points_count_and_ordering(self):
        box = GridBox(center=[0, 0, 0], npts=(2, 2, 2), spacing=1.0)
        pts = box.points()
        assert pts.shape == (27, 3)
        # x-fastest ordering under meshgrid 'ij' + ravel: z varies fastest.
        assert np.allclose(pts[0], box.minimum)
        assert np.allclose(pts[-1], box.maximum)

    def test_axes_span_box(self):
        box = GridBox(center=[0, 0, 0], npts=(4, 4, 4), spacing=0.5)
        ax, ay, az = box.axes()
        assert ax[0] == pytest.approx(box.minimum[0])
        assert ax[-1] == pytest.approx(box.maximum[0])
        assert len(ay) == box.shape[1]

    def test_contains(self):
        box = GridBox(center=[0, 0, 0], npts=(10, 10, 10), spacing=1.0)
        inside = box.contains([[0, 0, 0], [4.9, 0, 0], [5.1, 0, 0]])
        assert inside.tolist() == [True, True, False]

    def test_fractional_index(self):
        box = GridBox(center=[0, 0, 0], npts=(10, 10, 10), spacing=1.0)
        f = box.fractional_index([[0.0, 0.0, 0.0]])
        assert np.allclose(f, [[5, 5, 5]])

    def test_around_pocket_covers_sphere(self):
        box = GridBox.around_pocket([1, 1, 1], pocket_radius=5.0, padding=2.0)
        assert np.all(box.dimensions >= 13.9)
        assert np.allclose(box.center, [1, 1, 1])

    def test_around_pocket_invalid_radius(self):
        with pytest.raises(ValueError):
            GridBox.around_pocket([0, 0, 0], pocket_radius=0.0)

    def test_around_pocket_even_npts(self):
        box = GridBox.around_pocket([0, 0, 0], pocket_radius=5.0)
        assert all(n % 2 == 0 for n in box.npts)

    def test_around_ligand_contains_ligand(self):
        rng = np.random.default_rng(0)
        coords = rng.normal(scale=3, size=(20, 3))
        box = GridBox.around_ligand(coords, padding=2.0)
        assert box.contains(coords).all()
