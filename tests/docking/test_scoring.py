"""Unit tests for AD4 and Vina scoring functions."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.scoring_ad4 import AD4Scorer, ScoringError
from repro.docking.scoring_vina import (
    STANDARD_CLASSES,
    VinaScorer,
    VinaScoringError,
    atom_class_for,
    build_vina_maps,
    pairwise_terms,
    xs_radius,
)


class TestAD4Scorer:
    def test_untyped_ligand_raises(self, grid_maps):
        m = Molecule("L")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        with pytest.raises(ScoringError, match="AutoDock type"):
            AD4Scorer(grid_maps, m)

    def test_missing_map_raises(self, grid_maps):
        m = Molecule("L")
        a = Atom(1, "I1", "I", [0, 0, 0])
        a.autodock_type = "I"
        m.add_atom(a)
        if "I" not in grid_maps.affinity:
            with pytest.raises(ScoringError, match="lack type"):
                AD4Scorer(grid_maps, m)

    def test_score_shape_check(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        with pytest.raises(ScoringError, match="shape"):
            scorer.score(np.zeros((2, 3)))

    def test_total_is_inter_plus_torsional(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        coords = prepared_ligand.molecule.coords
        terms = scorer.score(coords)
        assert terms.total == pytest.approx(terms.intermolecular + terms.torsional)

    def test_docking_energy_adds_intra(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        coords = prepared_ligand.molecule.coords
        terms = scorer.score(coords)
        assert terms.docking_energy == pytest.approx(
            terms.total + terms.intramolecular
        )
        assert scorer.docking_energy(coords) == pytest.approx(terms.docking_energy)

    def test_intra_reference_is_zero_delta(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        assert scorer.intramolecular(prepared_ligand.molecule.coords) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_torsional_penalty_scales_with_torsdof(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        from repro.docking.forcefield import FE_COEFF_TORS

        assert scorer.torsional() == pytest.approx(
            FE_COEFF_TORS * prepared_ligand.torsdof
        )

    def test_outside_box_penalized(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        coords = prepared_ligand.molecule.coords
        far = coords + (grid_maps.box.maximum - coords.mean(axis=0)) + 30.0
        inter_far, _ = scorer.intermolecular(far)
        # Far outside the box the wall dominates and is large positive.
        assert inter_far > 100


class TestVinaTerms:
    def test_xs_radius_known_types(self):
        assert xs_radius("C") == pytest.approx(1.9)
        assert xs_radius("OA") == pytest.approx(1.7)
        assert xs_radius("HD") == 0.0

    def test_xs_radius_unknown_raises(self):
        with pytest.raises(VinaScoringError):
            xs_radius("QQ")

    def test_gauss1_peak_at_contact(self):
        e0 = pairwise_terms(np.array([0.0]), np.array([False]), np.array([False]))[0]
        e1 = pairwise_terms(np.array([2.0]), np.array([False]), np.array([False]))[0]
        assert e0 < e1  # contact is most favorable for plain gauss terms

    def test_repulsion_only_when_overlapping(self):
        e_neg = pairwise_terms(np.array([-0.5]), np.array([False]), np.array([False]))[0]
        e_pos = pairwise_terms(np.array([0.5]), np.array([False]), np.array([False]))[0]
        assert e_neg > e_pos  # repulsion kicks in for d < 0

    def test_hydrophobic_bonus(self):
        d = np.array([0.3])
        base = pairwise_terms(d, np.array([False]), np.array([False]))[0]
        hydro = pairwise_terms(d, np.array([True]), np.array([False]))[0]
        assert hydro < base

    def test_hbond_bonus(self):
        d = np.array([-0.3])
        base = pairwise_terms(d, np.array([False]), np.array([False]))[0]
        hb = pairwise_terms(d, np.array([False]), np.array([True]))[0]
        assert hb < base


class TestVinaScorer:
    def test_entropy_normalization(self, prepared_receptor, prepared_ligand, pocket_box):
        scorer = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        from repro.docking.scoring_vina import W_ROT

        assert scorer._entropy_norm == pytest.approx(
            1.0 + W_ROT * prepared_ligand.torsdof
        )

    def test_shape_check(self, prepared_receptor, prepared_ligand, pocket_box):
        scorer = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        with pytest.raises(VinaScoringError):
            scorer.total(np.zeros((1, 3)))

    def test_search_energy_adds_intra(self, prepared_receptor, prepared_ligand, pocket_box):
        scorer = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        coords = prepared_ligand.molecule.coords
        assert scorer.search_energy(coords) == pytest.approx(
            scorer.total(coords) + scorer.intramolecular(coords)
        )

    def test_grid_matches_exact_within_tolerance(
        self, prepared_receptor, prepared_ligand, pocket_box
    ):
        # Use a fine grid for the accuracy check: interpolation error on
        # the steep repulsion term shrinks with spacing.
        fine_box = GridBox(
            center=pocket_box.center, npts=(44, 44, 44), spacing=0.45
        )
        maps = build_vina_maps(prepared_receptor.molecule, fine_box)
        exact = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, fine_box
        )
        gridded = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, fine_box, maps=maps
        )
        rng = np.random.default_rng(11)
        base = prepared_ligand.molecule.coords
        compared = 0
        for _ in range(8):
            coords = base - base.mean(axis=0) + fine_box.center
            coords = coords + rng.normal(scale=0.5, size=3)
            if not fine_box.contains(coords).all():
                continue  # boundary clamping is only valid inside the box
            e_exact = exact.intermolecular(coords)
            e_grid = gridded.intermolecular(coords)
            # Repulsion curvature near the receptor wall bounds trilinear
            # accuracy to ~1 kcal/mol at this spacing (matches real Vina's
            # grid-cache error scale).
            assert abs(e_grid - e_exact) < max(1.0, 0.2 * abs(e_exact))
            compared += 1
        assert compared >= 3

    def test_mismatched_maps_box_raises(
        self, prepared_receptor, prepared_ligand, pocket_box
    ):
        other_box = GridBox(center=pocket_box.center + 5.0, npts=pocket_box.npts)
        maps = build_vina_maps(prepared_receptor.molecule, other_box)
        with pytest.raises(VinaScoringError, match="box"):
            VinaScorer(
                prepared_receptor.molecule,
                prepared_ligand.molecule,
                pocket_box,
                maps=maps,
            )

    def test_standard_classes_cover_ligand(self, prepared_ligand):
        classes = {atom_class_for(a.autodock_type) for a in prepared_ligand.molecule.atoms}
        assert classes <= set(STANDARD_CLASSES)

    def test_empty_neighborhood_scores_zero(self, prepared_ligand):
        rec = Molecule("R")
        a = Atom(1, "C1", "C", [500.0, 500.0, 500.0])
        a.autodock_type = "C"
        rec.add_atom(a)
        box = GridBox(center=[0, 0, 0], npts=(8, 8, 8), spacing=0.5)
        scorer = VinaScorer(rec, prepared_ligand.molecule, box)
        coords = prepared_ligand.molecule.coords
        coords = coords - coords.mean(axis=0)  # inside the box
        assert scorer.intermolecular(coords) == 0.0
