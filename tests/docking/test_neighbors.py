"""Cell-list correctness: exact pair-set equality with brute force.

The cell list is a pruning structure, not an approximation — on any
input it must return exactly the ``(point, atom)`` pairs a dense
``r <= cutoff`` scan finds.
"""

import numpy as np
import pytest

from repro.docking.autogrid import AutoGrid
from repro.docking.box import GridBox
from repro.docking.etables import shared_etables
from repro.docking.neighbors import CellList, brute_force_query
from repro.docking.scoring_vina import build_vina_maps


def _pair_set(pi, ai):
    return set(zip(pi.tolist(), ai.tolist()))


class TestCellListEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_clouds_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n_atoms = int(rng.integers(1, 400))
        n_points = int(rng.integers(1, 300))
        scale = float(rng.uniform(5.0, 40.0))
        coords = rng.uniform(-scale, scale, size=(n_atoms, 3))
        points = rng.uniform(-scale * 1.2, scale * 1.2, size=(n_points, 3))
        cutoff = float(rng.uniform(2.0, 10.0))
        cell_size = float(rng.uniform(1.0, cutoff * 1.5))
        cells = CellList(coords, cell_size=cell_size)
        pi, ai, r = cells.query(points, cutoff)
        bpi, bai, br = brute_force_query(points, coords, cutoff)
        assert _pair_set(pi, ai) == _pair_set(bpi, bai)
        order = np.lexsort((ai, pi))
        border = np.lexsort((bai, bpi))
        assert np.allclose(r[order], br[border])

    def test_degenerate_all_atoms_one_cell(self):
        coords = np.zeros((5, 3))
        cells = CellList(coords, cell_size=8.0)
        pi, ai, r = cells.query(np.zeros((2, 3)), 1.0)
        assert len(pi) == 10
        assert np.allclose(r, 0.0)

    def test_empty_inputs(self):
        cells = CellList(np.empty((0, 3)), cell_size=8.0)
        pi, ai, r = cells.query(np.zeros((3, 3)), 5.0)
        assert pi.size == ai.size == r.size == 0
        cells = CellList(np.zeros((4, 3)), cell_size=8.0)
        pi, ai, r = cells.query(np.empty((0, 3)), 5.0)
        assert pi.size == 0

    def test_boundary_inclusive(self):
        coords = np.array([[5.0, 0.0, 0.0]])
        cells = CellList(coords, cell_size=2.0)
        pi, ai, r = cells.query(np.zeros((1, 3)), 5.0)
        assert len(pi) == 1 and r[0] == pytest.approx(5.0)

    def test_chunked_iteration_is_global(self):
        rng = np.random.default_rng(3)
        coords = rng.uniform(-20, 20, size=(200, 3))
        points = rng.uniform(-20, 20, size=(500, 3))
        cells = CellList(coords, cell_size=8.0)
        chunked = [
            b for b in cells.iter_query(points, 8.0, chunk_points=64)
        ]
        pi = np.concatenate([b[0] for b in chunked])
        bpi, bai, _ = brute_force_query(points, coords, 8.0)
        assert _pair_set(pi, np.concatenate([b[1] for b in chunked])) == (
            _pair_set(bpi, bai)
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CellList(np.zeros((1, 3)), cell_size=0.0)
        cells = CellList(np.zeros((1, 3)), cell_size=1.0)
        with pytest.raises(ValueError):
            list(cells.iter_query(np.zeros((1, 3)), 0.0))


class TestPrunedMapBuilds:
    """The cell-list map paths reproduce the full-sweep map numbers."""

    def test_autogrid_tables_close_to_analytic(self, prepared_receptor):
        box = GridBox(
            center=prepared_receptor.molecule.coords.mean(axis=0),
            npts=(14, 14, 14),
            spacing=0.9,
        )
        et = shared_etables()
        analytic = AutoGrid().run(
            prepared_receptor.molecule, box, ("C", "OA", "HD")
        )
        tables = AutoGrid(etables=et).run(
            prepared_receptor.molecule, box, ("C", "OA", "HD")
        )
        assert "kernel: tables" in tables.log
        for t in analytic.affinity:
            a, b = analytic.affinity[t], tables.affinity[t]
            assert (np.abs(a - b) <= 2e-2 + 2e-2 * np.abs(a)).all(), t
        e_err = np.abs(analytic.electrostatic - tables.electrostatic)
        assert (
            e_err <= 2e-2 + 2e-2 * np.abs(analytic.electrostatic)
        ).all()
        assert np.abs(analytic.desolvation - tables.desolvation).max() < 1e-4

    def test_vina_maps_tables_close_to_analytic(self, prepared_receptor, pocket_box):
        et = shared_etables()
        analytic = build_vina_maps(prepared_receptor.molecule, pocket_box)
        tables = build_vina_maps(
            prepared_receptor.molecule, pocket_box, etables=et
        )
        assert set(analytic.grids) == set(tables.grids)
        for cls, grid in analytic.grids.items():
            assert np.abs(grid - tables.grids[cls]).max() < 2e-3, cls
