"""Integration-level tests of the AD4 and Vina engines plus clustering/DLG."""

import numpy as np
import pytest

from repro.docking.autodock import AD4Parameters, AutoDock4
from repro.docking.clustering import cluster_poses
from repro.docking.conformation import Conformation, Pose
from repro.docking.dlg import parse_dlg, parse_vina_log, write_dlg, write_vina_log
from repro.docking.ga import GAConfig
from repro.docking.mc import ILSConfig
from repro.docking.vina import Vina, VinaParameters

FAST_AD4 = AD4Parameters(
    ga_runs=2,
    ga=GAConfig(population_size=14, generations=4, local_search_steps=10),
    final_refine_steps=20,
)
FAST_VINA = VinaParameters(
    exhaustiveness=1,
    ils=ILSConfig(restarts=2, steps_per_restart=2, bfgs_iterations=6),
)


@pytest.fixture(scope="module")
def ad4_result(grid_maps, prepared_ligand):
    return AutoDock4(grid_maps, FAST_AD4).dock(prepared_ligand, seed=3)


@pytest.fixture(scope="module")
def vina_result(prepared_receptor, pocket_box, prepared_ligand):
    engine = Vina(prepared_receptor, pocket_box, FAST_VINA)
    return engine.dock(prepared_ligand, seed=3)


class TestAutoDock4:
    def test_produces_one_pose_per_run(self, ad4_result):
        assert len(ad4_result.poses) == FAST_AD4.ga_runs

    def test_poses_sorted_by_energy(self, ad4_result):
        energies = [p.energy for p in ad4_result.poses]
        assert energies == sorted(energies)

    def test_deterministic(self, grid_maps, prepared_ligand):
        a = AutoDock4(grid_maps, FAST_AD4).dock(prepared_ligand, seed=3)
        b = AutoDock4(grid_maps, FAST_AD4).dock(prepared_ligand, seed=3)
        assert a.best_energy == b.best_energy

    def test_different_seed_differs(self, grid_maps, prepared_ligand, ad4_result):
        other = AutoDock4(grid_maps, FAST_AD4).dock(prepared_ligand, seed=99)
        assert other.best_energy != ad4_result.best_energy

    def test_names_recorded(self, ad4_result, prepared_ligand, grid_maps):
        assert ad4_result.ligand_name == prepared_ligand.molecule.name
        assert ad4_result.receptor_name == grid_maps.receptor_name
        assert ad4_result.engine == "autodock4"

    def test_evaluations_counted(self, ad4_result):
        assert ad4_result.evaluations > 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AD4Parameters(ga_runs=0)

    def test_rmsd_reflects_crystal_frame_offset(self, ad4_result):
        # The receptor pocket lives in its crystal frame, ~40-70 A from the
        # ligand's input frame; docked poses inherit that offset.
        assert ad4_result.best_rmsd > 20


class TestVina:
    def test_respects_num_modes(self, vina_result):
        assert 1 <= len(vina_result.poses) <= FAST_VINA.num_modes

    def test_modes_sorted_and_within_energy_range(self, vina_result):
        energies = [p.energy for p in vina_result.poses]
        assert energies == sorted(energies)
        assert energies[-1] - energies[0] <= FAST_VINA.energy_range + 1e-9

    def test_modes_rmsd_separated(self, vina_result):
        from repro.chem.geometry import rmsd

        for i, a in enumerate(vina_result.poses):
            for b in vina_result.poses[i + 1 :]:
                assert rmsd(a.coords, b.coords) >= FAST_VINA.rmsd_filter - 1e-9

    def test_deterministic(self, prepared_receptor, pocket_box, prepared_ligand):
        e = Vina(prepared_receptor, pocket_box, FAST_VINA)
        a = e.dock(prepared_ligand, seed=3)
        b = e.dock(prepared_ligand, seed=3)
        assert a.best_energy == b.best_energy

    def test_finds_negative_affinity(self, vina_result):
        # The synthetic pocket accommodates this ligand; Vina should find
        # at least a weakly favorable pose even with a tiny budget.
        assert vina_result.best_energy < 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VinaParameters(exhaustiveness=0)
        with pytest.raises(ValueError):
            VinaParameters(num_modes=0)
        with pytest.raises(ValueError):
            VinaParameters(energy_range=-1)

    def test_exact_mode_close_to_grid_mode(
        self, prepared_receptor, pocket_box, prepared_ligand
    ):
        gridded = Vina(prepared_receptor, pocket_box, FAST_VINA).dock(
            prepared_ligand, seed=3
        )
        exact = Vina(
            prepared_receptor, pocket_box, FAST_VINA, use_grid=False
        ).dock(prepared_ligand, seed=3)
        assert exact.best_energy == pytest.approx(gridded.best_energy, abs=2.5)


class TestClustering:
    def _pose(self, energy, offset):
        return Pose(
            conformation=Conformation.identity(0),
            coords=np.zeros((3, 3)) + offset,
            energy=energy,
        )

    def test_empty(self):
        assert cluster_poses([]) == []

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            cluster_poses([self._pose(0, 0)], tolerance=0)

    def test_groups_nearby_poses(self):
        poses = [self._pose(-5, 0.0), self._pose(-4, 0.5), self._pose(-1, 10.0)]
        clusters = cluster_poses(poses, tolerance=2.0)
        assert len(clusters) == 2
        assert clusters[0].size == 2
        assert clusters[0].best_energy == -5

    def test_clusters_sorted_by_energy(self):
        poses = [self._pose(-1, 0.0), self._pose(-9, 10.0)]
        clusters = cluster_poses(poses, tolerance=2.0)
        assert clusters[0].best_energy == -9
        assert clusters[0].rank == 0

    def test_pose_cluster_annotation(self):
        poses = [self._pose(-1, 0.0), self._pose(-9, 10.0), self._pose(-8.5, 10.2)]
        cluster_poses(poses, tolerance=2.0)
        assert poses[1].cluster == 0 and poses[2].cluster == 0
        assert poses[0].cluster == 1

    def test_mean_energy(self):
        poses = [self._pose(-4, 0.0), self._pose(-2, 0.1)]
        clusters = cluster_poses(poses, tolerance=2.0)
        assert clusters[0].mean_energy == pytest.approx(-3.0)


class TestDockingLogs:
    def test_dlg_roundtrip(self, ad4_result):
        text = write_dlg(ad4_result)
        parsed = parse_dlg(text)
        assert parsed["best_feb"] == pytest.approx(ad4_result.best_energy, abs=0.01)
        assert parsed["success"]
        assert parsed["evaluations"] == ad4_result.evaluations
        assert len(parsed["all_feb"]) == len(ad4_result.poses)

    def test_dlg_contains_histogram(self, ad4_result):
        text = write_dlg(ad4_result)
        assert "CLUSTERING HISTOGRAM" in text

    def test_vina_log_roundtrip(self, vina_result):
        text = write_vina_log(vina_result)
        parsed = parse_vina_log(text)
        assert parsed["best_feb"] == pytest.approx(vina_result.best_energy, abs=0.1)
        assert len(parsed["modes"]) == len(vina_result.poses)
        assert parsed["success"]

    def test_parse_dlg_empty_raises(self):
        with pytest.raises(ValueError):
            parse_dlg("no conformations here")

    def test_parse_vina_log_empty_raises(self):
        with pytest.raises(ValueError):
            parse_vina_log("nothing")
