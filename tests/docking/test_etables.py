"""Kernel parity: table-driven potentials vs the analytic reference.

The property the whole etables layer hangs on: for every atom-type pair
and the full distance range, the interpolated row energies match the
analytic expressions within a documented tolerance — tight in absolute
terms on the physically meaningful range, scaled on the steep repulsive
wall where the 12-x potentials span orders of magnitude.
"""

import numpy as np
import pytest

from repro.chem.elements import AUTODOCK_TYPES
from repro.docking import forcefield as ff
from repro.docking.etables import (
    AD4Etables,
    EtableConfig,
    VinaEtables,
    build_stats,
    shared_etables,
)
from repro.docking.scoring_ad4 import AD4Scorer
from repro.docking.scoring_vina import (
    CUTOFF,
    STANDARD_CLASSES,
    VinaScorer,
    pairwise_terms,
    xs_radius,
)

#: Documented table-vs-analytic tolerance: |dE| <= ATOL + RTOL * |E|.
#: The RTOL component covers linear interpolation on the r^-12 wall.
ATOL = 2e-3
RTOL = 2e-2

ALL_TYPES = sorted(AUTODOCK_TYPES)

#: Distances from inside the smoothing window out past the cutoff.
R_SWEEP = np.concatenate(
    [np.linspace(0.02, 1.0, 197), np.linspace(1.0, 8.0, 701), [8.5, 9.0, 12.0]]
)


@pytest.fixture(scope="module")
def etables():
    return shared_etables()


class TestAD4RowParity:
    def test_vdw_rows_match_analytic_for_every_pair(self, etables):
        ad4t = etables.ad4
        within = R_SWEEP <= ad4t.config.r_max
        for i, ti in enumerate(ALL_TYPES):
            for tj in ALL_TYPES[i:]:
                row = ad4t.vdw_row(ti, tj)
                got = ad4t.eval_rows(np.full(R_SWEEP.shape, row), R_SWEEP)
                p = ff.pair_params(ti, tj)
                w = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
                want = np.where(within, ff.vdw_energy(R_SWEEP, p) * w, 0.0)
                err = np.abs(got - want)
                assert (err <= ATOL + RTOL * np.abs(want)).all(), (ti, tj)

    def test_estat_matches_clamped_coulomb(self, etables):
        ad4t = etables.ad4
        within = R_SWEEP <= ad4t.config.r_max
        for qq in (-0.9, -0.05, 0.3, 1.2):
            got = ad4t.eval_estat(qq, R_SWEEP)
            want = np.where(within, ff.coulomb_energy(R_SWEEP, qq, 1.0), 0.0)
            assert np.abs(got - want).max() <= ATOL + RTOL * np.abs(want).max()

    def test_envelope_matches_gaussian(self, etables):
        r = np.linspace(0.0, 8.0, 500)
        want = np.exp(-(r**2) / (2.0 * ff.DESOLV_SIGMA**2))
        assert np.abs(etables.ad4.eval_envelope(r) - want).max() < 1e-6

    def test_grid_rows_cover_charge_independent_desolvation(self, etables):
        ad4t = etables.ad4
        r = np.linspace(0.5, 7.5, 300)
        for lt, rt in (("C", "OA"), ("HD", "N"), ("OA", "SA")):
            row = ad4t.grid_row(lt, rt)
            got = ad4t.eval_rows(np.full(r.shape, row), r)
            p = ff.pair_params(lt, rt)
            w = ff.FE_COEFF_HBOND if p.is_hbond else ff.FE_COEFF_VDW
            want = ff.vdw_energy(r, p) * w + ff.FE_COEFF_DESOLV * (
                ff.desolvation_energy(r, lt, rt, 0.0, 0.0)
            )
            err = np.abs(got - want)
            assert (err <= ATOL + RTOL * np.abs(want)).all(), (lt, rt)


class TestVinaRowParity:
    def test_every_standard_pair_bucket_matches_analytic(self, etables):
        vt = etables.vina
        radii = sorted({xs_radius(t) for t in AUTODOCK_TYPES})
        within = R_SWEEP <= vt.config.r_max
        for ri in radii:
            for rj in radii:
                rsum = ri + rj
                rows = np.full(R_SWEEP.shape, vt.row_for(rsum))
                d = R_SWEEP - round(rsum, 3)
                for hyd, hb in ((False, False), (True, False), (False, True)):
                    got = vt.eval(rows, R_SWEEP, hyd, hb)
                    want = np.where(
                        within,
                        pairwise_terms(
                            d, np.asarray(hyd), np.asarray(hb)
                        ),
                        0.0,
                    )
                    assert np.abs(got - want).max() <= ATOL, (rsum, hyd, hb)

    def test_rows_for_vectorizes_row_for(self, etables):
        vt = etables.vina
        rsums = np.array([[3.8, 3.6], [1.9, 0.0]])
        rows = vt.rows_for(rsums)
        for idx in np.ndindex(rsums.shape):
            assert rows[idx] == vt.row_for(rsums[idx])


class TestScorerParity:
    @pytest.fixture(scope="class")
    def pose_batch(self, prepared_ligand, pocket_box):
        lig = prepared_ligand.molecule
        rng = np.random.default_rng(7)
        base = lig.coords - lig.coords.mean(axis=0) + pocket_box.center
        return base[None] + rng.normal(0.0, 1.5, size=(12, len(lig.atoms), 3))

    def test_ad4_intra_within_tolerance(
        self, grid_maps, prepared_ligand, pose_batch, etables
    ):
        analytic = AD4Scorer(grid_maps, prepared_ligand.molecule)
        tables = AD4Scorer(
            grid_maps, prepared_ligand.molecule, etables=etables
        )
        assert analytic.kernel == "analytic" and tables.kernel == "tables"
        ea = analytic._intra_raw_batch(pose_batch)
        et_ = tables._intra_raw_batch(pose_batch)
        assert (np.abs(ea - et_) <= ATOL + RTOL * np.abs(ea)).all()

    def test_vina_scorer_within_tolerance(
        self, prepared_receptor, prepared_ligand, pocket_box, pose_batch, etables
    ):
        analytic = VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        tables = VinaScorer(
            prepared_receptor.molecule,
            prepared_ligand.molecule,
            pocket_box,
            etables=etables,
        )
        ia = analytic.intermolecular_batch(pose_batch)
        it = tables.intermolecular_batch(pose_batch)
        assert np.abs(ia).max() > 0.1  # poses actually touch the receptor
        assert (np.abs(ia - it) <= ATOL + RTOL * np.abs(ia)).all()
        ra = analytic.intramolecular_batch(pose_batch)
        rt = tables.intramolecular_batch(pose_batch)
        assert (np.abs(ra - rt) <= ATOL + RTOL * np.abs(ra)).all()

    def test_analytic_default_is_untouched(self, grid_maps, prepared_ligand):
        """No etables argument -> the scorer has no table state at all."""
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        assert scorer._etables is None
        assert not hasattr(scorer, "_pair_rows")


class TestRegistry:
    def test_shared_per_config(self):
        a = shared_etables()
        b = shared_etables(EtableConfig())
        assert a is b
        c = shared_etables(EtableConfig(dr=0.01))
        assert c is not a

    def test_fingerprint_encodes_geometry(self):
        base = "ff-x"
        fp1 = EtableConfig().fingerprint(base)
        fp2 = EtableConfig(dr=0.01).fingerprint(base)
        fp3 = EtableConfig(r_max=6.0).fingerprint(base)
        assert base in fp1
        assert len({fp1, fp2, fp3}) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EtableConfig(dr=0.0)
        with pytest.raises(ValueError):
            EtableConfig(dr=1.0, r_max=0.5)

    def test_build_accounting_moves(self):
        before = build_stats()
        cfg = EtableConfig(dr=0.02, r_max=7.5)
        tab = AD4Etables(cfg)
        tab.vdw_row("C", "C")
        vt = VinaEtables(cfg)
        vt.row_for(3.8)
        after = build_stats()
        assert after["rows"] > before["rows"]
        assert after["seconds"] >= before["seconds"]
