"""Unit tests for the MGLTools-equivalent preparation scripts."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.generate import generate_ligand, generate_receptor
from repro.chem.molecule import Molecule
from repro.docking.box import GridBox
from repro.docking.prepare import (
    PreparationError,
    parse_vina_config,
    prepare_dpf,
    prepare_gpf,
    prepare_ligand,
    prepare_receptor,
    prepare_vina_config,
)


class TestPrepareLigand:
    def test_assigns_types_and_charges(self, prepared_ligand):
        for a in prepared_ligand.molecule.atoms:
            assert a.autodock_type is not None
        assert any(a.charge != 0 for a in prepared_ligand.molecule.atoms)

    def test_merges_nonpolar_hydrogens(self):
        m = Molecule("M")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "H1", "H", [1.1, 0, 0]))
        m.add_atom(Atom(3, "O1", "O", [-1.4, 0, 0]))
        m.add_atom(Atom(4, "H2", "H", [-2.0, 0.8, 0]))
        m.add_bond(0, 1)
        m.add_bond(0, 2)
        m.add_bond(2, 3)
        prep = prepare_ligand(m)
        elements = [a.element for a in prep.molecule.atoms]
        assert elements.count("H") == 1  # polar H kept, C-H merged
        # Merged hydrogen's charge folded into carbon: totals conserved.
        assert sum(a.charge for a in prep.molecule.atoms) == pytest.approx(0.0, abs=1e-6)

    def test_polar_hydrogen_typed_hd(self):
        lig = generate_ligand("074")
        prep = prepare_ligand(lig)
        h_types = {a.autodock_type for a in prep.molecule.atoms if a.element == "H"}
        assert h_types <= {"HD"}

    def test_pdbqt_contains_torsion_tree(self, prepared_ligand):
        assert "ROOT" in prepared_ligand.pdbqt
        assert f"TORSDOF {prepared_ligand.torsdof}" in prepared_ligand.pdbqt

    def test_empty_raises(self):
        with pytest.raises(PreparationError):
            prepare_ligand(Molecule())

    def test_disconnected_raises(self):
        m = Molecule("X")
        m.add_atom(Atom(1, "C1", "C", [0, 0, 0]))
        m.add_atom(Atom(2, "C2", "C", [30, 0, 0]))
        with pytest.raises(PreparationError, match="disconnected"):
            prepare_ligand(m)

    def test_does_not_mutate_input(self):
        lig = generate_ligand("042")
        before = lig.coords
        n_before = len(lig)
        prepare_ligand(lig)
        assert len(lig) == n_before
        assert np.allclose(lig.coords, before)


class TestPrepareReceptor:
    def test_assigns_types(self, prepared_receptor):
        for a in prepared_receptor.molecule.atoms:
            assert a.autodock_type is not None

    def test_strips_water(self):
        rec = generate_receptor("1AEC")
        rec.add_atom(Atom(9999, "O", "O", [99, 99, 99], residue_name="HOH"))
        prep = prepare_receptor(rec)
        assert all(a.residue_name != "HOH" for a in prep.molecule.atoms)

    def test_rigid_pdbqt_has_no_tree(self, prepared_receptor):
        assert "ROOT" not in prepared_receptor.pdbqt
        assert "BRANCH" not in prepared_receptor.pdbqt

    def test_unparameterized_metal_raises(self):
        m = Molecule("X")
        m.add_atom(Atom(1, "K", "K", [0, 0, 0]))
        m.add_atom(Atom(2, "C1", "C", [2, 0, 0]))
        with pytest.raises(PreparationError, match="K"):
            prepare_receptor(m)

    def test_mercury_is_parameterized(self):
        m = Molecule("X")
        m.add_atom(Atom(1, "HG", "HG", [0, 0, 0]))
        m.add_atom(Atom(2, "C1", "C", [2.5, 0, 0]))
        prep = prepare_receptor(m)
        assert any(a.autodock_type == "Hg" for a in prep.molecule.atoms)

    def test_empty_raises(self):
        with pytest.raises(PreparationError):
            prepare_receptor(Molecule())

    def test_only_water_raises(self):
        m = Molecule("W")
        m.add_atom(Atom(1, "O", "O", [0, 0, 0], residue_name="HOH"))
        with pytest.raises(PreparationError, match="water"):
            prepare_receptor(m)


class TestParameterFiles:
    def test_gpf_mentions_all_maps(self, prepared_receptor, prepared_ligand, pocket_box):
        gpf = prepare_gpf(prepared_receptor, prepared_ligand, pocket_box)
        for t in prepared_ligand.atom_types:
            assert f".{t}.map" in gpf
        assert "gridcenter" in gpf
        assert f"npts {pocket_box.npts[0]}" in gpf

    def test_dpf_contains_ga_settings(self, prepared_receptor, prepared_ligand):
        dpf = prepare_dpf(prepared_receptor, prepared_ligand, ga_runs=7, seed=42)
        assert "ga_run 7" in dpf
        assert "seed 42" in dpf
        assert "ga_pop_size" in dpf

    def test_vina_config_roundtrip(self, prepared_receptor, prepared_ligand, pocket_box):
        text = prepare_vina_config(
            prepared_receptor, prepared_ligand, pocket_box, exhaustiveness=5, seed=9
        )
        conf = parse_vina_config(text)
        assert conf["exhaustiveness"] == 5
        assert conf["seed"] == 9
        assert conf["center_x"] == pytest.approx(pocket_box.center[0], abs=1e-3)
        assert conf["size_x"] == pytest.approx(pocket_box.dimensions[0], abs=1e-3)

    def test_vina_config_bad_line_raises(self):
        with pytest.raises(PreparationError):
            parse_vina_config("this is not a key value line")
