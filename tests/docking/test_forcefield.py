"""Unit + property tests for the AD4 force-field tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.elements import AUTODOCK_TYPES
from repro.docking import forcefield as ff

ALL_TYPES = sorted(AUTODOCK_TYPES)


class TestPairParams:
    def test_symmetric(self):
        a = ff.pair_params("C", "OA")
        b = ff.pair_params("OA", "C")
        assert a == b

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            ff.pair_params("C", "XX")

    def test_hbond_pair_uses_12_10(self):
        p = ff.pair_params("HD", "OA")
        assert p.is_hbond and p.m == 12 and p.n == 10

    def test_dispersion_pair_uses_12_6(self):
        p = ff.pair_params("C", "C")
        assert not p.is_hbond and p.n == 6

    def test_equilibrium_distance_cc(self):
        p = ff.pair_params("C", "C")
        # rii for C is 4.0 => homopair equilibrium at 4.0 A.
        assert p.req == pytest.approx(4.0, abs=1e-6)

    def test_equilibrium_distance_hbond(self):
        p = ff.pair_params("HD", "OA")
        assert p.req == pytest.approx(1.9, abs=1e-6)

    @given(st.sampled_from(ALL_TYPES), st.sampled_from(ALL_TYPES))
    @settings(max_examples=40, deadline=None)
    def test_property_minimum_at_req(self, ta, tb):
        p = ff.pair_params(ta, tb)
        e_req = ff.vdw_energy(np.array([p.req]), p, smooth_radius=0.0)[0]
        for dr in (-0.2, 0.2):
            e = ff.vdw_energy(np.array([p.req + dr]), p, smooth_radius=0.0)[0]
            assert e >= e_req - 1e-9


class TestVdwEnergy:
    def test_repulsive_at_short_range(self):
        p = ff.pair_params("C", "C")
        assert ff.vdw_energy(np.array([1.0]), p)[0] > 0

    def test_attractive_at_equilibrium(self):
        p = ff.pair_params("C", "C")
        assert ff.vdw_energy(np.array([p.req]), p)[0] < 0

    def test_clamped(self):
        p = ff.pair_params("C", "C")
        assert ff.vdw_energy(np.array([0.01]), p)[0] <= ff.EINTCLAMP

    def test_smoothing_widens_well(self):
        p = ff.pair_params("C", "C")
        r = np.array([p.req + 0.2])
        smoothed = ff.vdw_energy(r, p)[0]
        raw = ff.vdw_energy(r, p, smooth_radius=0.0)[0]
        assert smoothed <= raw  # min-over-window can only lower energy

    def test_smoothing_flat_inside_window(self):
        p = ff.pair_params("C", "C")
        e1 = ff.vdw_energy(np.array([p.req - 0.1]), p)[0]
        e2 = ff.vdw_energy(np.array([p.req + 0.1]), p)[0]
        assert e1 == pytest.approx(e2)

    def test_vanishes_at_long_range(self):
        p = ff.pair_params("C", "C")
        assert abs(ff.vdw_energy(np.array([20.0]), p)[0]) < 1e-3


class TestDielectric:
    def test_large_r_approaches_water(self):
        eps = ff.mehler_solmajer_dielectric(np.array([100.0]))[0]
        assert 75 < eps < 80

    def test_small_r_approaches_vacuum(self):
        eps = ff.mehler_solmajer_dielectric(np.array([0.01]))[0]
        assert 1.0 < eps < 2.0

    def test_monotone_increasing(self):
        r = np.linspace(0.1, 50, 100)
        eps = ff.mehler_solmajer_dielectric(r)
        assert np.all(np.diff(eps) > 0)


class TestCoulomb:
    def test_opposite_charges_attract(self):
        e = ff.coulomb_energy(np.array([3.0]), 0.5, -0.5)[0]
        assert e < 0

    def test_like_charges_repel(self):
        e = ff.coulomb_energy(np.array([3.0]), 0.5, 0.5)[0]
        assert e > 0

    def test_clamped_at_contact(self):
        e = ff.coulomb_energy(np.array([0.001]), 1.0, -1.0)[0]
        assert e == pytest.approx(-ff.ESTAT_CLAMP)

    def test_decays_with_distance(self):
        e1 = abs(ff.coulomb_energy(np.array([2.0]), 0.3, -0.3)[0])
        e2 = abs(ff.coulomb_energy(np.array([6.0]), 0.3, -0.3)[0])
        assert e1 > e2


class TestDesolvation:
    def test_positive_for_carbon_near_carbon(self):
        # Carbon has negative solpar; pair term can be negative, but the
        # envelope must decay with distance.
        e1 = abs(ff.desolvation_energy(np.array([1.0]), "C", "C")[0])
        e2 = abs(ff.desolvation_energy(np.array([7.0]), "C", "C")[0])
        assert e1 > e2

    def test_charge_increases_magnitude(self):
        e0 = ff.desolvation_energy(np.array([2.0]), "C", "C", 0.0, 0.0)[0]
        e1 = ff.desolvation_energy(np.array([2.0]), "C", "C", 1.0, 1.0)[0]
        assert e1 > e0  # qsolpar adds a positive contribution


class TestCoefficientMatrices:
    def test_shapes_consistent(self):
        cA, cB, n_exp, hb, m_exp = ff.coefficient_matrices()
        T = len(ff.type_index())
        assert cA.shape == (T, T) == cB.shape == hb.shape

    def test_matrix_matches_pairwise(self):
        idx = ff.type_index()
        cA, cB, n_exp, hb, _ = ff.coefficient_matrices()
        p = ff.pair_params("C", "OA")
        i, j = idx["C"], idx["OA"]
        assert cA[i, j] == pytest.approx(p.cA)
        assert n_exp[i, j] == p.n
