"""Unit tests for conformations, local search, GA and ILS optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docking.conformation import Conformation, DockingResult, Pose
from repro.docking.ga import GAConfig, LamarckianGA
from repro.docking.local_search import bfgs_minimize, solis_wets
from repro.docking.mc import ILSConfig, IteratedLocalSearch


def sphere(x: np.ndarray) -> float:
    """Convex test objective with minimum 0 at the origin."""
    return float((x * x).sum())


class TestConformation:
    def test_vector_too_short_raises(self):
        with pytest.raises(ValueError):
            Conformation(np.zeros(5))

    def test_accessors(self):
        v = np.arange(10.0)
        c = Conformation(v)
        assert np.allclose(c.translation, [0, 1, 2])
        assert np.allclose(c.quaternion, [3, 4, 5, 6])
        assert np.allclose(c.torsions, [7, 8, 9])
        assert c.n_torsions == 3

    def test_normalized_unit_quaternion(self):
        c = Conformation(np.array([0, 0, 0, 3.0, 0, 4.0, 0, 9.0]))
        n = c.normalized()
        assert np.linalg.norm(n.quaternion) == pytest.approx(1.0)
        # torsion wrapped into (-pi, pi]
        assert -np.pi < n.torsions[0] <= np.pi

    def test_normalized_zero_quaternion_becomes_identity(self):
        c = Conformation(np.array([0, 0, 0, 0.0, 0, 0, 0]))
        assert np.allclose(c.normalized().quaternion, [1, 0, 0, 0])

    def test_identity(self):
        c = Conformation.identity(2)
        assert c.vector.size == 9
        assert np.allclose(c.quaternion, [1, 0, 0, 0])

    def test_random_within_extent(self):
        rng = np.random.default_rng(0)
        c = Conformation.random(3, rng, translation_extent=2.0, center=[5, 5, 5])
        assert np.all(np.abs(c.translation - 5) <= 2.0)
        assert np.linalg.norm(c.quaternion) == pytest.approx(1.0)


class TestSolisWets:
    def test_improves_on_sphere(self):
        rng = np.random.default_rng(1)
        x0 = np.ones(8) * 3.0
        res = solis_wets(sphere, x0, rng, max_steps=200)
        assert res.energy < sphere(x0)
        assert res.evaluations > 1

    def test_deterministic_given_rng_state(self):
        r1 = solis_wets(sphere, np.ones(5), np.random.default_rng(7), max_steps=50)
        r2 = solis_wets(sphere, np.ones(5), np.random.default_rng(7), max_steps=50)
        assert r1.energy == r2.energy
        assert np.allclose(r1.vector, r2.vector)

    def test_never_worse_than_start(self):
        rng = np.random.default_rng(2)
        x0 = np.array([0.1, -0.2, 0.05])
        res = solis_wets(sphere, x0, rng, max_steps=30)
        assert res.energy <= sphere(x0)

    def test_respects_step_budget(self):
        rng = np.random.default_rng(3)
        res = solis_wets(sphere, np.ones(4), rng, max_steps=5)
        # Each step costs at most 2 evaluations plus the initial one.
        assert res.evaluations <= 11


class TestBFGS:
    def test_finds_sphere_minimum(self):
        res = bfgs_minimize(sphere, np.ones(6) * 2.0)
        assert res.energy < 1e-6
        assert np.allclose(res.vector, 0.0, atol=1e-3)

    def test_counts_evaluations(self):
        res = bfgs_minimize(sphere, np.ones(3))
        assert res.evaluations > 0

    def test_respects_iteration_cap(self):
        res_few = bfgs_minimize(sphere, np.ones(10) * 5, max_iterations=1)
        res_many = bfgs_minimize(sphere, np.ones(10) * 5, max_iterations=50)
        assert res_many.energy <= res_few.energy


class TestGAConfig:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)

    def test_rejects_bad_elitism(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=10, elitism=10)

    @pytest.mark.parametrize("field", ["crossover_rate", "mutation_rate", "local_search_rate"])
    def test_rejects_out_of_range_rates(self, field):
        with pytest.raises(ValueError, match=field):
            GAConfig(**{field: 1.5})


class TestLamarckianGA:
    def _run(self, seed=0, **kw):
        cfg = GAConfig(population_size=20, generations=8, **kw)
        ga = LamarckianGA(lambda v: sphere(v), n_torsions=2, config=cfg)
        return ga.run(np.random.default_rng(seed))

    def test_minimizes_sphere(self):
        res = self._run()
        assert res.best_energy < 1.0

    def test_history_monotone_nonincreasing(self):
        res = self._run()
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_deterministic(self):
        a, b = self._run(seed=5), self._run(seed=5)
        assert a.best_energy == b.best_energy

    def test_different_seeds_differ(self):
        a, b = self._run(seed=1), self._run(seed=2)
        assert a.best_energy != b.best_energy

    def test_final_population_size(self):
        res = self._run()
        assert len(res.final_population) == 20

    def test_max_evaluations_respected(self):
        cfg = GAConfig(population_size=10, generations=100, max_evaluations=50)
        ga = LamarckianGA(lambda v: sphere(v), n_torsions=0, config=cfg)
        res = ga.run(np.random.default_rng(0))
        # The cap stops new generations; a small overshoot from the
        # in-flight generation is allowed.
        assert res.evaluations < 200


class TestILS:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ILSConfig(restarts=0)
        with pytest.raises(ValueError):
            ILSConfig(temperature=-1.0)
        with pytest.raises(ValueError):
            ILSConfig(steps_per_restart=0)

    def test_minimizes_sphere(self):
        cfg = ILSConfig(restarts=2, steps_per_restart=4, bfgs_iterations=20)
        ils = IteratedLocalSearch(lambda v: sphere(v), n_torsions=2, config=cfg)
        res = ils.run(np.random.default_rng(0))
        assert res.best_energy < 0.1

    def test_deterministic(self):
        cfg = ILSConfig(restarts=2, steps_per_restart=3)
        ils = IteratedLocalSearch(lambda v: sphere(v), n_torsions=1, config=cfg)
        a = ils.run(np.random.default_rng(3))
        b = ils.run(np.random.default_rng(3))
        assert a.best_energy == b.best_energy

    def test_minima_sorted_by_energy(self):
        cfg = ILSConfig(restarts=3, steps_per_restart=3)
        ils = IteratedLocalSearch(lambda v: sphere(v), n_torsions=0, config=cfg)
        res = ils.run(np.random.default_rng(1))
        energies = [e for _, e in res.minima]
        assert energies == sorted(energies)

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_property_best_is_min_of_minima(self, seed):
        cfg = ILSConfig(restarts=2, steps_per_restart=2, bfgs_iterations=5)
        ils = IteratedLocalSearch(lambda v: sphere(v), n_torsions=1, config=cfg)
        res = ils.run(np.random.default_rng(seed))
        assert res.best_energy == pytest.approx(min(e for _, e in res.minima))


class TestDockingResult:
    def _pose(self, energy):
        return Pose(
            conformation=Conformation.identity(0),
            coords=np.zeros((2, 3)),
            energy=energy,
        )

    def test_best_pose(self):
        r = DockingResult("R", "L", "vina", poses=[self._pose(-3), self._pose(-7)])
        assert r.best_energy == -7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DockingResult("R", "L", "vina").best_pose

    def test_favorable_flag(self):
        assert DockingResult("R", "L", "vina", poses=[self._pose(-1)]).favorable
        assert not DockingResult("R", "L", "vina", poses=[self._pose(2)]).favorable

    def test_summary_fields(self):
        r = DockingResult("R", "L", "autodock4", poses=[self._pose(-2.5)])
        s = r.summary()
        assert s["engine"] == "autodock4"
        assert s["feb"] == -2.5
        assert s["n_poses"] == 1


class TestInhibitionConstant:
    def test_favorable_feb_gives_ki(self):
        from repro.docking.conformation import inhibition_constant

        ki = inhibition_constant(-6.0)
        # -6 kcal/mol at 298 K is ~40 uM.
        assert 1e-6 < ki < 1e-4

    def test_stronger_binding_smaller_ki(self):
        from repro.docking.conformation import inhibition_constant

        assert inhibition_constant(-9.0) < inhibition_constant(-5.0)

    def test_unfavorable_feb_gives_none(self):
        from repro.docking.conformation import inhibition_constant

        assert inhibition_constant(0.0) is None
        assert inhibition_constant(3.0) is None

    def test_temperature_validation(self):
        from repro.docking.conformation import inhibition_constant

        with pytest.raises(ValueError):
            inhibition_constant(-5.0, temperature=0)

    def test_format_units(self):
        from repro.docking.conformation import format_ki

        assert format_ki(None) == "n/a"
        assert format_ki(4e-5).endswith("uM")
        assert format_ki(2e-9).endswith("nM")
        assert format_ki(0.5).endswith("M")

    def test_pose_ki_property(self):
        p = Pose(conformation=Conformation.identity(0), coords=np.zeros((2, 3)), energy=-7.0)
        assert p.ki is not None
        assert Pose(conformation=Conformation.identity(0), coords=np.zeros((2, 3)), energy=1.0).ki is None
