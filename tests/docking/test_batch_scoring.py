"""Golden-parity tests for the batched scoring path.

The batched entry points are not allowed to drift from per-pose scoring
by even one ulp: the scalar methods are implemented as batches of one,
and these tests pin the stronger property that a pose scored inside a
large batch equals the same pose scored alone, bit for bit. The GA test
pins the other half of the contract — swapping a scalar objective for
its vectorized twin must not change the search trajectory.
"""

import numpy as np
import pytest

from repro.docking.conformation import Conformation
from repro.docking.ga import GAConfig, LamarckianGA
from repro.docking.objective import (
    PoseEnergyObjective,
    ScalarBatchAdapter,
    as_batch_objective,
    supports_batch,
)
from repro.docking.scoring_ad4 import AD4Scorer
from repro.docking.scoring_vina import VinaScorer, build_vina_maps


def _pose_batch(coords: np.ndarray, rng: np.random.Generator, p: int = 16) -> np.ndarray:
    """P poses around the reference: jittered atoms plus rigid shifts.

    Mixes small and large displacements so the batch exercises both the
    in-box grid gather and the out-of-box wall penalty.
    """
    base = np.repeat(coords[None], p, axis=0)
    jitter = rng.normal(scale=0.3, size=base.shape)
    shift = rng.normal(scale=2.5, size=(p, 1, 3))
    return base + jitter + shift


class TestAD4BatchParity:
    def test_score_batch_bit_for_bit(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        batch = _pose_batch(
            prepared_ligand.molecule.coords, np.random.default_rng(11), p=24
        )
        terms = scorer.score_batch(batch)
        assert len(terms) == 24
        for pose, t in zip(batch, terms):
            ref = scorer.score(pose)
            assert t.vdw_hb_desolv == ref.vdw_hb_desolv
            assert t.electrostatic == ref.electrostatic
            assert t.torsional == ref.torsional
            assert t.intramolecular == ref.intramolecular
            assert t.total == ref.total
            assert t.docking_energy == ref.docking_energy

    def test_docking_energy_batch_bit_for_bit(self, grid_maps, prepared_ligand):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        batch = _pose_batch(
            prepared_ligand.molecule.coords, np.random.default_rng(12), p=32
        )
        energies = scorer.docking_energy_batch(batch)
        scalar = np.array([scorer.docking_energy(p) for p in batch])
        assert np.array_equal(energies, scalar)

    def test_batch_size_invariance(self, grid_maps, prepared_ligand):
        # A pose's energy must not depend on which batch it rides in.
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        batch = _pose_batch(
            prepared_ligand.molecule.coords, np.random.default_rng(13), p=8
        )
        whole = scorer.docking_energy_batch(batch)
        ones = np.array(
            [scorer.docking_energy_batch(p[None])[0] for p in batch]
        )
        assert np.array_equal(whole, ones)


class TestVinaBatchParity:
    @pytest.fixture(scope="class")
    def exact_scorer(self, prepared_receptor, prepared_ligand, pocket_box):
        return VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )

    @pytest.fixture(scope="class")
    def maps_scorer(self, prepared_receptor, prepared_ligand, pocket_box):
        maps = build_vina_maps(prepared_receptor.molecule, pocket_box)
        return VinaScorer(
            prepared_receptor.molecule,
            prepared_ligand.molecule,
            pocket_box,
            maps=maps,
        )

    def _batch(self, prepared_ligand, seed: int, p: int = 20) -> np.ndarray:
        return _pose_batch(
            prepared_ligand.molecule.coords, np.random.default_rng(seed), p=p
        )

    def test_exact_path_bit_for_bit(self, exact_scorer, prepared_ligand):
        batch = self._batch(prepared_ligand, 21)
        totals = exact_scorer.total_batch(batch)
        search = exact_scorer.search_energy_batch(batch)
        for i, pose in enumerate(batch):
            assert totals[i] == exact_scorer.total(pose)
            assert search[i] == exact_scorer.search_energy(pose)

    def test_maps_path_bit_for_bit(self, maps_scorer, prepared_ligand):
        batch = self._batch(prepared_ligand, 22)
        totals = maps_scorer.total_batch(batch)
        search = maps_scorer.search_energy_batch(batch)
        for i, pose in enumerate(batch):
            assert totals[i] == maps_scorer.total(pose)
            assert search[i] == maps_scorer.search_energy(pose)

    def test_score_batch_alias(self, exact_scorer, prepared_ligand):
        batch = self._batch(prepared_ligand, 23, p=6)
        assert np.array_equal(
            exact_scorer.score_batch(batch), exact_scorer.total_batch(batch)
        )

    def test_batch_size_invariance(self, maps_scorer, prepared_ligand):
        batch = self._batch(prepared_ligand, 24, p=10)
        whole = maps_scorer.search_energy_batch(batch)
        ones = np.array(
            [maps_scorer.search_energy_batch(p[None])[0] for p in batch]
        )
        assert np.array_equal(whole, ones)


class TestObjectiveProtocol:
    def test_supports_batch_detection(self):
        assert not supports_batch(lambda v: 0.0)
        assert supports_batch(ScalarBatchAdapter(lambda v: 0.0))

    def test_adapter_matches_scalar_calls(self):
        calls = []

        def fn(v):
            calls.append(v.copy())
            return float((v * v).sum())

        adapter = as_batch_objective(fn)
        vecs = np.arange(12.0).reshape(3, 4)
        out = adapter.evaluate_batch(vecs)
        assert out.shape == (3,)
        assert [float((v * v).sum()) for v in vecs] == list(out)
        assert len(calls) == 3  # exact per-vector calls, in order

    def test_pose_objective_scalar_is_batch_of_one(
        self, grid_maps, prepared_ligand
    ):
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        obj = PoseEnergyObjective(
            prepared_ligand.tree, scorer.docking_energy_batch
        )
        rng = np.random.default_rng(31)
        vecs = np.stack([
            Conformation.random(prepared_ligand.tree.n_torsions, rng).vector
            for _ in range(8)
        ])
        batch = obj.evaluate_batch(vecs)
        for v, e in zip(vecs, batch):
            assert obj(v) == e


class TestGATrajectoryParity:
    def test_vectorized_matches_scalar_trajectory(
        self, grid_maps, prepared_ligand
    ):
        """Same seed, scalar vs vectorized objective: identical search."""
        scorer = AD4Scorer(grid_maps, prepared_ligand.molecule)
        tree = prepared_ligand.tree
        vec_obj = PoseEnergyObjective(tree, scorer.docking_energy_batch)

        def scalar_obj(v: np.ndarray) -> float:
            return scorer.docking_energy(Conformation(v).coords(tree))

        cfg = GAConfig(population_size=16, generations=5, local_search_steps=5)
        results = []
        for objective in (scalar_obj, vec_obj):
            ga = LamarckianGA(objective, tree.n_torsions, cfg)
            results.append(ga.run(np.random.default_rng(42)))
        scalar_res, vec_res = results
        assert scalar_res.best_energy == vec_res.best_energy
        assert np.array_equal(scalar_res.best.vector, vec_res.best.vector)
        assert scalar_res.history == vec_res.history
        assert scalar_res.evaluations == vec_res.evaluations
