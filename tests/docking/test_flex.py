"""Unit tests for flexible receptor side-chain docking."""

import numpy as np
import pytest

from repro.docking.box import GridBox
from repro.docking.flex import (
    FlexError,
    FlexibleReceptor,
    FlexibleVina,
    select_flexible_residues,
)
from repro.docking.mc import ILSConfig


@pytest.fixture(scope="module")
def pocket_center(receptor):
    return np.array(receptor.metadata["pocket_center"])


@pytest.fixture(scope="module")
def flex_residues(prepared_receptor, receptor, pocket_center):
    return select_flexible_residues(
        prepared_receptor.molecule,
        pocket_center,
        receptor.metadata["pocket_radius"] + 3.0,
        max_residues=3,
    )


class TestSelection:
    def test_finds_lining_residues(self, flex_residues):
        assert 1 <= len(flex_residues) <= 3

    def test_residues_have_valid_axes(self, flex_residues, prepared_receptor):
        mol = prepared_receptor.molecule
        for fr in flex_residues:
            assert mol.atoms[fr.axis_from].name == "CA"
            assert mol.atoms[fr.axis_to].name == "CB"
            assert fr.moved.size >= 1
            assert fr.axis_from not in fr.moved
            assert fr.axis_to not in fr.moved

    def test_max_residues_respected(self, prepared_receptor, receptor, pocket_center):
        sel = select_flexible_residues(
            prepared_receptor.molecule, pocket_center,
            receptor.metadata["pocket_radius"] + 5.0, max_residues=2,
        )
        assert len(sel) <= 2

    def test_far_center_finds_nothing(self, prepared_receptor):
        sel = select_flexible_residues(
            prepared_receptor.molecule, np.array([999.0, 999.0, 999.0]), 5.0
        )
        assert sel == []

    def test_invalid_max_raises(self, prepared_receptor, pocket_center):
        with pytest.raises(FlexError):
            select_flexible_residues(
                prepared_receptor.molecule, pocket_center, 5.0, max_residues=0
            )


class TestFlexibleReceptor:
    def test_requires_flex(self, prepared_receptor):
        with pytest.raises(FlexError):
            FlexibleReceptor(prepared_receptor.molecule, [])

    def test_zero_chi_is_identity(self, prepared_receptor, flex_residues):
        fr = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        coords = fr.pose(np.zeros(fr.n_torsions))
        assert np.allclose(coords, fr.reference)

    def test_rotation_moves_only_sidechain(self, prepared_receptor, flex_residues):
        frec = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        chi = np.zeros(frec.n_torsions)
        chi[0] = np.pi / 2
        coords = frec.pose(chi)
        moved = flex_residues[0].moved
        fixed = sorted(set(range(len(frec.reference))) - set(moved.tolist()))
        assert np.allclose(coords[fixed], frec.reference[fixed])
        assert not np.allclose(coords[moved], frec.reference[moved])

    def test_full_turn_is_identity(self, prepared_receptor, flex_residues):
        frec = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        chi = np.full(frec.n_torsions, 2 * np.pi)
        assert np.allclose(frec.pose(chi), frec.reference, atol=1e-8)

    def test_bond_to_axis_preserved(self, prepared_receptor, flex_residues):
        """Rotation preserves distances from moved atoms to the axis atoms."""
        frec = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        chi = np.zeros(frec.n_torsions)
        chi[0] = 1.0
        coords = frec.pose(chi)
        fr = flex_residues[0]
        for i in fr.moved.tolist():
            before = np.linalg.norm(frec.reference[i] - frec.reference[fr.axis_to])
            after = np.linalg.norm(coords[i] - coords[fr.axis_to])
            assert after == pytest.approx(before, abs=1e-9)

    def test_strain_zero_at_rotamer(self, prepared_receptor, flex_residues):
        frec = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        assert frec.strain(np.zeros(frec.n_torsions)) == 0.0
        assert frec.strain(np.ones(frec.n_torsions)) > 0

    def test_wrong_chi_shape_raises(self, prepared_receptor, flex_residues):
        frec = FlexibleReceptor(prepared_receptor.molecule, flex_residues)
        with pytest.raises(FlexError):
            frec.pose(np.zeros(frec.n_torsions + 1))


class TestFlexibleVina:
    FAST = ILSConfig(restarts=1, steps_per_restart=2, bfgs_iterations=6)

    def test_docks_with_flexibility(
        self, prepared_receptor, prepared_ligand, pocket_box, flex_residues
    ):
        engine = FlexibleVina(
            prepared_receptor, pocket_box, flex_residues, ils=self.FAST
        )
        result = engine.dock(prepared_ligand, seed=2)
        assert result.engine == "vina-flex"
        assert result.poses
        assert result.evaluations > 50

    def test_deterministic(
        self, prepared_receptor, prepared_ligand, pocket_box, flex_residues
    ):
        engine = FlexibleVina(
            prepared_receptor, pocket_box, flex_residues, ils=self.FAST
        )
        a = engine.dock(prepared_ligand, seed=2)
        b = engine.dock(prepared_ligand, seed=2)
        assert a.best_energy == b.best_energy

    def test_auto_selection(self, prepared_receptor, prepared_ligand, pocket_box):
        engine = FlexibleVina(
            prepared_receptor, pocket_box, flex_radius=12.0, ils=self.FAST
        )
        assert engine.flexible.n_torsions >= 1

    def test_no_residues_raises(self, prepared_receptor, prepared_ligand):
        far_box = GridBox(center=[900.0, 900.0, 900.0], npts=(10, 10, 10))
        with pytest.raises(FlexError, match="no flexible residues"):
            FlexibleVina(prepared_receptor, far_box, flex_radius=2.0)
