"""Memoized BFS pair tables: identical topology walks run once."""

import numpy as np
import pytest

from repro.docking.neighbors import (
    bond_separation_pairs,
    pair_memo_stats,
    reset_pair_memo,
)
from repro.docking.scoring_ad4 import AD4Scorer
from repro.docking.scoring_vina import VinaScorer


@pytest.fixture(autouse=True)
def fresh_memo():
    reset_pair_memo()
    yield
    reset_pair_memo()


class TestPairMemo:
    def test_second_walk_is_a_hit(self, prepared_ligand):
        mol = prepared_ligand.molecule
        first = bond_separation_pairs(mol, 4)
        stats = pair_memo_stats()
        assert stats == {"hits": 0, "misses": 1, "entries": 1}
        second = bond_separation_pairs(mol, 4)
        assert second is first
        assert pair_memo_stats()["hits"] == 1

    def test_min_separation_distinguishes_entries(self, prepared_ligand):
        mol = prepared_ligand.molecule
        p3 = bond_separation_pairs(mol, 3)
        p4 = bond_separation_pairs(mol, 4)
        assert pair_memo_stats()["misses"] == 2
        # 1-4 pairs are a strict subset of 1-3+ pairs for this ligand.
        assert len(p4) <= len(p3)

    def test_memoized_pairs_match_seed_algorithm(self, prepared_ligand):
        """The memo returns exactly what the per-scorer BFS produced."""
        mol = prepared_ligand.molecule
        n = len(mol.atoms)
        INF = 99
        dist = np.full((n, n), INF, dtype=np.int16)
        np.fill_diagonal(dist, 0)
        adj = mol.adjacency
        for src in range(n):
            frontier, seen, d = [src], {src}, 0
            while frontier and d < 4:
                d += 1
                nxt = []
                for v in frontier:
                    for w in adj[v]:
                        if w not in seen:
                            seen.add(w)
                            dist[src, w] = min(dist[src, w], d)
                            nxt.append(w)
                frontier = nxt
        ii, jj = np.triu_indices(n, k=1)
        mask = dist[ii, jj] >= 4
        want = np.stack([ii[mask], jj[mask]], axis=1)
        got = bond_separation_pairs(mol, 4)
        assert np.array_equal(got, want)

    def test_returned_array_is_read_only(self, prepared_ligand):
        pairs = bond_separation_pairs(prepared_ligand.molecule, 3)
        assert not pairs.flags.writeable

    def test_scorers_share_one_walk(
        self, grid_maps, prepared_receptor, prepared_ligand, pocket_box
    ):
        AD4Scorer(grid_maps, prepared_ligand.molecule)
        AD4Scorer(grid_maps, prepared_ligand.molecule)
        stats = pair_memo_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        VinaScorer(
            prepared_receptor.molecule, prepared_ligand.molecule, pocket_box
        )
        stats = pair_memo_stats()
        assert stats["misses"] == 2 and stats["hits"] == 2
