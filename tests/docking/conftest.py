"""Shared docking fixtures: a small prepared receptor-ligand pair.

Session-scoped because receptor preparation and map generation dominate
test runtime; every consumer treats these as read-only.
"""

import numpy as np
import pytest

from repro.chem.generate import generate_ligand, generate_receptor
from repro.docking.autogrid import AutoGrid
from repro.docking.box import GridBox
from repro.docking.prepare import prepare_ligand, prepare_receptor


@pytest.fixture(scope="session")
def receptor():
    return generate_receptor("2HHN")


@pytest.fixture(scope="session")
def ligand():
    return generate_ligand("0E6")


@pytest.fixture(scope="session")
def prepared_receptor(receptor):
    return prepare_receptor(receptor)


@pytest.fixture(scope="session")
def prepared_ligand(ligand):
    return prepare_ligand(ligand)


@pytest.fixture(scope="session")
def pocket_box(receptor):
    return GridBox.around_pocket(
        np.array(receptor.metadata["pocket_center"]),
        receptor.metadata["pocket_radius"],
        spacing=0.8,
    )


@pytest.fixture(scope="session")
def grid_maps(prepared_receptor, prepared_ligand, pocket_box):
    return AutoGrid().run(
        prepared_receptor.molecule, pocket_box, prepared_ligand.atom_types
    )
