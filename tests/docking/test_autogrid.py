"""Unit tests for AutoGrid map generation and interpolation."""

import numpy as np
import pytest

from repro.chem.atom import Atom
from repro.chem.molecule import Molecule
from repro.docking.autogrid import (
    AutoGrid,
    GridError,
    trilinear,
    write_fld_file,
    write_map_file,
)
from repro.docking.box import GridBox


def single_atom_receptor(adtype="OA", charge=-0.5):
    m = Molecule("R")
    a = Atom(1, "O", "O", [0.0, 0.0, 0.0], charge=charge)
    a.autodock_type = adtype
    m.add_atom(a)
    return m


class TestAutoGridRun:
    def test_map_shapes(self, grid_maps, pocket_box):
        for g in grid_maps.affinity.values():
            assert g.shape == pocket_box.shape
        assert grid_maps.electrostatic.shape == pocket_box.shape
        assert grid_maps.desolvation.shape == pocket_box.shape

    def test_requested_types_present(self, grid_maps, prepared_ligand):
        assert set(prepared_ligand.atom_types) <= set(grid_maps.atom_types)

    def test_log_reports_completion(self, grid_maps):
        assert "successful completion" in grid_maps.log

    def test_no_types_raises(self, prepared_receptor, pocket_box):
        with pytest.raises(GridError):
            AutoGrid().run(prepared_receptor.molecule, pocket_box, ())

    def test_untyped_receptor_raises(self, pocket_box):
        m = Molecule("R")
        m.add_atom(Atom(1, "C1", "C", pocket_box.center))
        with pytest.raises(GridError, match="AutoDock type"):
            AutoGrid().run(m, pocket_box, ("C",))

    def test_bad_chunk_raises(self):
        with pytest.raises(GridError):
            AutoGrid(chunk_atoms=0)

    def test_affinity_well_near_single_atom(self):
        rec = single_atom_receptor(adtype="C", charge=0.0)
        box = GridBox(center=[0, 0, 0], npts=(20, 20, 20), spacing=0.5)
        maps = AutoGrid().run(rec, box, ("C",))
        # Sample along +x: energy is repulsive at contact, minimal near
        # req (4.0 A for C-C), near zero at the cutoff.
        pts = np.array([[1.0, 0, 0], [4.0, 0, 0], [7.9, 0, 0]])
        vals = maps.interpolate("C", pts)
        assert vals[0] > 0
        assert vals[1] < 0
        assert abs(vals[2]) < 0.2

    def test_electrostatic_sign_follows_charge(self):
        rec = single_atom_receptor(adtype="OA", charge=-0.5)
        box = GridBox(center=[0, 0, 0], npts=(16, 16, 16), spacing=0.5)
        maps = AutoGrid().run(rec, box, ("C",))
        v = maps.interpolate("e", np.array([[2.0, 0, 0]]))[0]
        assert v < 0  # negative potential near a negative charge

    def test_atoms_outside_cutoff_ignored(self):
        rec = single_atom_receptor(adtype="C")
        rec.atoms[0].coords = np.array([100.0, 100.0, 100.0])
        box = GridBox(center=[0, 0, 0], npts=(8, 8, 8), spacing=0.5)
        maps = AutoGrid().run(rec, box, ("C",))
        assert np.allclose(maps.affinity["C"], 0.0)

    def test_deterministic(self, prepared_receptor, pocket_box, prepared_ligand):
        m1 = AutoGrid().run(prepared_receptor.molecule, pocket_box, ("C",))
        m2 = AutoGrid().run(prepared_receptor.molecule, pocket_box, ("C",))
        assert np.allclose(m1.affinity["C"], m2.affinity["C"])

    def test_chunking_invariant(self):
        rec = Molecule("R")
        rng = np.random.default_rng(3)
        for i in range(40):
            a = Atom(i + 1, "C", "C", rng.normal(scale=3, size=3), charge=0.1)
            a.autodock_type = "C"
            rec.add_atom(a)
        box = GridBox(center=[0, 0, 0], npts=(8, 8, 8), spacing=0.8)
        m_small = AutoGrid(chunk_atoms=7).run(rec, box, ("C",))
        m_big = AutoGrid(chunk_atoms=1000).run(rec, box, ("C",))
        assert np.allclose(m_small.affinity["C"], m_big.affinity["C"])
        assert np.allclose(m_small.electrostatic, m_big.electrostatic)


class TestInterpolation:
    def test_exact_at_grid_points(self):
        box = GridBox(center=[0, 0, 0], npts=(4, 4, 4), spacing=1.0)
        grid = np.arange(np.prod(box.shape), dtype=float).reshape(box.shape)
        pts = box.points()
        vals = trilinear(grid, box, pts)
        assert np.allclose(vals, grid.ravel())

    def test_linear_in_between(self):
        box = GridBox(center=[0.5, 0.5, 0.5], npts=(1, 1, 1), spacing=1.0)
        grid = np.zeros((2, 2, 2))
        grid[1, :, :] = 1.0  # value = x
        v = trilinear(grid, box, np.array([[0.25, 0.5, 0.5]]))[0]
        assert v == pytest.approx(0.25)

    def test_clamps_outside(self):
        box = GridBox(center=[0, 0, 0], npts=(2, 2, 2), spacing=1.0)
        grid = np.ones((3, 3, 3))
        v = trilinear(grid, box, np.array([[50.0, 50.0, 50.0]]))[0]
        assert v == pytest.approx(1.0)

    def test_unknown_map_raises(self, grid_maps):
        with pytest.raises(GridError, match="no affinity map"):
            grid_maps.interpolate("Zz", np.zeros((1, 3)))

    def test_outside_penalty_zero_inside(self, grid_maps, pocket_box):
        assert grid_maps.outside_penalty(pocket_box.center[None, :])[0] == 0.0

    def test_outside_penalty_grows_quadratically(self, grid_maps, pocket_box):
        p1 = pocket_box.maximum + [1.0, 0, 0]
        p2 = pocket_box.maximum + [2.0, 0, 0]
        pen = grid_maps.outside_penalty(np.stack([p1, p2]))
        assert pen[1] == pytest.approx(4 * pen[0])


class TestMapFiles:
    def test_map_file_header(self, grid_maps):
        text = write_map_file(grid_maps, "e")
        assert "SPACING" in text and "NELEMENTS" in text and "CENTER" in text
        n_values = np.prod(grid_maps.box.shape)
        assert len(text.splitlines()) == 6 + n_values

    def test_fld_file_lists_all_maps(self, grid_maps):
        text = write_fld_file(grid_maps)
        for t in grid_maps.atom_types:
            assert f".{t}.map" in text
        assert ".e.map" in text and ".d.map" in text


class TestMapRoundTrip:
    def test_map_file_roundtrip(self, grid_maps):
        from repro.docking.autogrid import parse_map_file

        text = write_map_file(grid_maps, "e")
        box, grid = parse_map_file(text)
        assert box.npts == grid_maps.box.npts
        assert box.spacing == pytest.approx(grid_maps.box.spacing, abs=1e-3)
        assert np.allclose(box.center, grid_maps.box.center, atol=1e-3)
        # Values survive the 3-decimal text format.
        assert np.allclose(grid, grid_maps.electrostatic, atol=2e-3)

    def test_parse_missing_header_raises(self):
        from repro.docking.autogrid import parse_map_file

        with pytest.raises(GridError, match="header"):
            parse_map_file("1.0\n2.0\n")

    def test_parse_wrong_count_raises(self):
        from repro.docking.autogrid import parse_map_file

        text = "SPACING 0.5\nNELEMENTS 2 2 2\nCENTER 0 0 0\n1.0\n2.0\n"
        with pytest.raises(GridError, match="values"):
            parse_map_file(text)
