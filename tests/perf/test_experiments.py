"""Integration tests for the performance experiment harness (Figs 5-9)."""

import numpy as np
import pytest

from repro.perf.cost_model import ActivityCostModel
from repro.perf.experiments import CoreSweepResult, run_core_sweep, run_single_scale
from repro.provenance.queries import activation_durations, query1_activity_statistics
from repro.workflow.scheduler import RoundRobinScheduler

SMALL = dict(n_pairs=60, failure_rate=0.05)


@pytest.fixture(scope="module")
def sweep():
    return run_core_sweep(scenario="ad4", core_counts=(2, 8, 32), **SMALL)


class TestSingleScale:
    def test_returns_result(self):
        res = run_single_scale(4, scenario="ad4", **SMALL)
        assert res.cores == 4
        assert res.tet_seconds > 0
        assert res.report.total_activations >= 60 * 8 - 60  # minus blocked tail

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            run_single_scale(0)

    def test_deterministic(self):
        a = run_single_scale(4, scenario="ad4", **SMALL)
        b = run_single_scale(4, scenario="ad4", **SMALL)
        assert a.tet_seconds == b.tet_seconds

    def test_failures_recorded(self):
        res = run_single_scale(8, scenario="ad4", n_pairs=60, failure_rate=0.15)
        assert res.report.retried > 0
        assert res.report.counts.get("FAILED", 0) > 0

    def test_mercury_receptors_blocked(self):
        # The 238-receptor sweep includes Hg receptors; their pipelines
        # stop at receptor preparation.
        res = run_single_scale(8, scenario="ad4", n_pairs=238, failure_rate=0.0)
        assert res.report.blocked > 0

    def test_provenance_activity_stats(self):
        res = run_single_scale(8, scenario="ad4", **SMALL)
        stats = {s.tag: s for s in query1_activity_statistics(res.store, res.report.wkfid)}
        assert "docking" in stats
        # Docking dominates (paper Fig. 6).
        assert stats["docking"].avg > stats["babel"].avg

    def test_durations_histogram_heterogeneous(self):
        """Fig. 5: activation durations form a heterogeneous distribution."""
        res = run_single_scale(8, scenario="ad4", **SMALL)
        durations = activation_durations(res.store, res.report.wkfid)
        assert len(durations) > 300
        assert np.std(durations) > 0.5 * np.mean(durations) * 0.1  # non-degenerate


class TestCoreSweep:
    def test_tet_monotone_decreasing(self, sweep):
        tets = sweep.tets
        assert all(b < a for a, b in zip(tets, tets[1:]))

    def test_speedup_near_linear_to_8(self, sweep):
        sp = dict(zip(sweep.core_counts, sweep.speedups()))
        assert sp[2] == pytest.approx(2.0)
        assert sp[8] > 6.0

    def test_speedup_near_linear_to_32_with_enough_load(self):
        # 32 cores only stay saturated with a big enough backlog; the
        # 60-pair fixture drains too fast (a real small-scale effect).
        sweep = run_core_sweep(
            scenario="ad4", core_counts=(2, 32), n_pairs=300, failure_rate=0.05
        )
        assert sweep.speedups()[-1] > 24.0

    def test_efficiency_declines_at_scale(self):
        sweep = run_core_sweep(scenario="ad4", core_counts=(2, 32, 128), **SMALL)
        eff = dict(zip(sweep.core_counts, sweep.efficiencies()))
        assert eff[128] < eff[32]

    def test_improvement_at_32_cores_matches_paper_band(self):
        """Paper: 95.4% (AD4) improvement at 32 cores vs the 2-core run."""
        sweep = run_core_sweep(scenario="ad4", core_counts=(2, 32), n_pairs=200, failure_rate=0.1)
        imp = sweep.improvements()[-1]
        assert 88.0 < imp < 98.0

    def test_vina_faster_than_ad4(self):
        ad4 = run_core_sweep(scenario="ad4", core_counts=(8,), **SMALL)
        vina = run_core_sweep(scenario="vina", core_counts=(8,), **SMALL)
        assert vina.tets[0] < ad4.tets[0]

    def test_baseline_is_smallest_core_count(self, sweep):
        assert sweep.baseline().cores == 2

    def test_round_robin_scheduler_usable(self):
        sweep = run_core_sweep(
            scenario="ad4", core_counts=(8,), scheduler=RoundRobinScheduler(), **SMALL
        )
        assert sweep.tets[0] > 0

    def test_result_container(self, sweep):
        assert isinstance(sweep, CoreSweepResult)
        assert sweep.scenario == "ad4"
        assert len(sweep.points) == 3
